"""Exception hierarchy for the superimposed-information reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the narrower types:

- TRIM / triple store        -> :class:`TripleError` and children
- metamodel / conformance    -> :class:`ModelError` and children
- DMI runtime and generator  -> :class:`DmiError` and children
- Mark Manager and modules   -> :class:`MarkError` and children
- base applications          -> :class:`BaseLayerError` and children
- SLIMPad application        -> :class:`SlimPadError`
- replay harness             -> :class:`ReplayError` and children
- TRIM service (network)     -> :class:`ServiceError` and children
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


# ---------------------------------------------------------------------------
# Triple store (TRIM)
# ---------------------------------------------------------------------------

class TripleError(ReproError):
    """Base class for triple-store failures."""


class InvalidTripleError(TripleError):
    """A triple was constructed from components of the wrong kind."""


class TripleNotFoundError(TripleError, KeyError):
    """A removal or lookup referenced a triple absent from the store."""


class NamespaceError(TripleError):
    """A qualified name used an unregistered or conflicting prefix."""


class PersistenceError(TripleError):
    """Saving or loading a triple store (or marks file) failed."""


class TransactionError(TripleError):
    """Batch/undo machinery was used out of order (e.g. nested commit)."""


class QueryError(TripleError):
    """A selection or conjunctive query was malformed."""


# ---------------------------------------------------------------------------
# Metamodel / models / schemas
# ---------------------------------------------------------------------------

class ModelError(ReproError):
    """Base class for metamodel-level failures."""


class UnknownConstructError(ModelError, KeyError):
    """A schema or instance referenced a construct the model never defined."""


class ConformanceError(ModelError):
    """Conformance checking was requested and the data violates the model."""


class MappingError(ModelError):
    """A model/schema mapping was incomplete or applied to the wrong source."""


# ---------------------------------------------------------------------------
# DMI
# ---------------------------------------------------------------------------

class DmiError(ReproError):
    """Base class for Data Manipulation Interface failures."""


class SpecError(DmiError):
    """A DMI model specification was inconsistent (dangling reference, dup)."""


class UnknownEntityError(DmiError, KeyError):
    """An operation referenced an entity id absent from the DMI store."""


class StaleObjectError(DmiError):
    """An application-data proxy was used after its entity was deleted."""


# ---------------------------------------------------------------------------
# Marks
# ---------------------------------------------------------------------------

class MarkError(ReproError):
    """Base class for mark-management failures."""


class UnknownMarkTypeError(MarkError, KeyError):
    """No mark type/module registered for the requested kind."""


class MarkNotFoundError(MarkError, KeyError):
    """A mark id was not present in the Mark Manager."""


class MarkResolutionError(MarkError):
    """A mark could not be resolved against its base application."""


class NoSelectionError(MarkError):
    """Mark creation was requested while the base app had no selection."""


# ---------------------------------------------------------------------------
# Base layer
# ---------------------------------------------------------------------------

class BaseLayerError(ReproError):
    """Base class for simulated base-application failures."""


class DocumentNotFoundError(BaseLayerError, KeyError):
    """The document library has no document under the requested name."""


class AddressError(BaseLayerError):
    """An address could not be parsed or does not exist in the document."""


class ParseError(BaseLayerError):
    """A base document (XML/HTML) could not be parsed."""


# ---------------------------------------------------------------------------
# SLIMPad
# ---------------------------------------------------------------------------

class SlimPadError(ReproError):
    """Base class for SLIMPad application failures."""


# ---------------------------------------------------------------------------
# Replay harness
# ---------------------------------------------------------------------------

class ReplayError(ReproError):
    """Base class for deterministic-replay harness failures."""


class BundleError(ReplayError):
    """A replay bundle is malformed, oversized, or the wrong version."""


class ReplayDivergenceError(ReplayError):
    """A replayed run did not reproduce the bundle's recorded state."""


# ---------------------------------------------------------------------------
# TRIM service (network front end)
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for TRIM-service (network front end) failures."""


class ProtocolError(ServiceError):
    """A wire frame was malformed, oversized, or the wrong version."""


class BackpressureError(ServiceError):
    """The tenant's inflight queue is past its high-water mark.

    Carries ``retry_after_ms``, the server's suggested client backoff.
    """

    def __init__(self, message: str, retry_after_ms: int = 50) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ServiceUnavailableError(ServiceError):
    """The server (or one tenant) is draining for shutdown or closed."""


class RemoteOpError(ServiceError):
    """A server-side operation failed; ``code`` names the error frame.

    Raised by the client library when a response envelope carries
    ``ok: false``; the remote exception type and message are preserved
    in ``code`` and the error string.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code

"""A small command-line front end: ``python -m repro <command>``.

Commands:

- ``demo [--durable DIR] [--shards N] [--cache-stats]`` — the quickstart
  round trip, printed; with ``--durable`` the pad's triples are logged
  crash-safely under DIR; with ``--shards`` the pool is hash-partitioned
  across N stores (each with its own WAL under DIR); ``--cache-stats``
  reports read-cache hit rates at exit.
- ``worksheet [--patients N] [--seed S] [--svg PATH] [--cache-stats]`` —
  build a rounds worksheet over a synthetic census; print the outline;
  optionally write the SVG rendering and/or the read-cache report.
- ``handoff [--patients N] [--seed S]`` — build a worksheet and print the
  weekend hand-off report.
- ``concordance TERM [TERM ...]`` — concordance + KWIC over the built-in
  corpus.
- ``models`` — define the built-in superimposed models and list them.
- ``recover DIR [--out PATH]`` — rebuild the durable store under DIR
  (snapshot + WAL tail; sharded layouts are detected and every shard
  recovered, finishing any in-doubt two-phase commit) and print recovery
  statistics; optionally export the recovered triples to a plain XML file.
- ``replay record|run|verify`` — the deterministic replay harness:
  ``record`` captures a built-in crash scenario (a WAL byte-offset kill
  or a 2PC coordinator death) as a schema-validated bundle; ``run``
  re-executes a bundle N times against fresh stores and asserts every
  run recovers byte-identical state (and matches the bundle's recorded
  outcome); ``verify`` schema-checks a bundle without executing it.
- ``shards info DIR`` — shard-map version, per-shard triple counts, and
  the max/mean balance skew of a sharded durable root; ``shards split
  DIR --shards N [--out DIR]`` — offline rewrite to N shards (the only
  path that shrinks; live growth is ``TrimManager.reshard``).
- ``serve ROOT [--host H] [--port P] [--shards N] [--high-water N]
  [--idle-ttl SECONDS]`` — run the multi-tenant TRIM service
  (:mod:`repro.service`): an asyncio TCP front end where each tenant
  name maps to its own durable shard-set + WAL directory under ROOT.
  SIGTERM/SIGINT drain gracefully (flush every tenant, close WALs).

Every command runs through interrupt-safe dispatch: a Ctrl-C anywhere
exits with the conventional code 130 instead of a traceback, after the
command's cleanup (``finally`` blocks, context managers) has run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _print_cache_stats(stats: dict) -> None:
    """Render TrimManager.cache_stats() as a compact report."""
    select = stats.get("select_cache")
    print("\ncache stats:")
    if select is None:
        print("  select/query cache: disabled")
    else:
        print(f"  select/query cache: {select['hits']} hit(s), "
              f"{select['misses']} miss(es), "
              f"{select['invalidations']} invalidation(s), "
              f"{select['evictions']} eviction(s) "
              f"({select['hit_rate']:.1%} hit rate, "
              f"{select['entries']} entries, "
              f"avg fill {select['avg_fill_us']:.1f}us)")
    views = stats.get("views") or {}
    if views.get("live") or views.get("reads"):
        print(f"  views: {views['live']} live, {views['reads']} read(s), "
              f"{views['recomputes']} recompute(s), "
              f"{views['events_applied']} incremental event(s) applied")


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import (DocumentLibrary, SlimPadApplication,
                       standard_mark_manager)
    from repro.base.spreadsheet import Workbook
    from repro.slimpad.render import render_text
    from repro.util.coordinates import Coordinate

    library = DocumentLibrary()
    meds = library.add(Workbook("meds.xls"))
    sheet = meds.add_sheet("Current")
    sheet.set_row(1, ["Drug", "Dose", "Route", "Schedule"])
    sheet.set_row(2, ["Lasix", "40mg", "IV", "BID"])
    manager = standard_mark_manager(library)
    pad = SlimPadApplication(manager, shards=getattr(args, "shards", 1))
    durable = getattr(args, "durable", None)
    if durable:
        pad.enable_durability(durable)
    pad.new_pad("Demo")
    pad.commit()
    excel = manager.application("spreadsheet")
    excel.open_workbook("meds.xls")
    excel.select_range("A2:D2")
    scrap = pad.create_scrap_from_selection(excel, label="Lasix 40mg",
                                            pos=Coordinate(10, 10))
    pad.commit()
    print(render_text(pad.pad))
    resolution = pad.double_click(scrap)
    print(f"\nde-referenced -> {resolution.address}")
    print(f"content: {resolution.content}")
    if durable:
        trim = pad.dmi.runtime.trim
        sharded = f" across {trim.shards} shards" if trim.shards > 1 else ""
        print(f"\ndurable state in {durable}: "
              f"{len(trim.store)} triples{sharded}, "
              f"group {trim.durability.group} committed "
              f"(recover with: python -m repro recover {durable})")
    if getattr(args, "cache_stats", False):
        _print_cache_stats(pad.cache_stats())
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.triples import persistence
    from repro.triples.sharded import is_sharded_directory, recover_sharded
    from repro.triples.wal import recover

    def _stage_line(stage_seconds, indent="  "):
        if not stage_seconds:
            return
        parts = ", ".join(f"{stage.rsplit('_', 1)[0]} {seconds * 1000:.1f}ms"
                          for stage, seconds in stage_seconds.items())
        print(f"{indent}stages: {parts}")

    if is_sharded_directory(args.directory):
        sharded = recover_sharded(args.directory)
        store, namespaces = sharded.store, sharded.namespaces
        print(f"recovered {len(store)} triple(s) from {args.directory} "
              f"({store.shard_count} shards, epoch {sharded.epoch})")
        _stage_line(sharded.stage_seconds)
        if sharded.repaired:
            print(f"  finished the fence of {sharded.repaired} "
                  f"prepared group(s) whose commit was decided")
        for i, result in enumerate(sharded.shards):
            print(f"  shard {i}: {len(result.store)} triple(s) "
                  f"({result.snapshot_triples} snapshot, "
                  f"{result.delta_segments} delta segment(s), "
                  f"{result.groups_replayed} WAL group(s) replayed)")
            _stage_line(result.stage_seconds, indent="    ")
    else:
        result = recover(args.directory)
        store, namespaces = result.store, result.namespaces
        print(f"recovered {len(store)} triple(s) from {args.directory}")
        print(f"  snapshot: {result.snapshot_triples} triple(s) "
              f"(through group {result.snapshot_group})")
        print(f"  deltas: {result.delta_segments} segment(s), "
              f"{result.delta_changes} change(s) "
              f"(through group {result.covered_group})")
        print(f"  WAL tail: {result.groups_replayed} group(s), "
              f"{result.changes_replayed} change(s) replayed")
        _stage_line(result.stage_seconds)
        if result.discarded_bytes:
            print(f"  discarded {result.discarded_bytes} corrupt/torn "
                  f"byte(s) past the last complete group")
    if args.out:
        persistence.save(store, args.out, namespaces)
        print(f"recovered store written to {args.out}")
    return 0


def _cmd_shards(args: argparse.Namespace) -> int:
    from repro.triples.sharded import (is_sharded_directory, recover_sharded,
                                       split_offline)

    if not is_sharded_directory(args.directory):
        print(f"{args.directory} is not a sharded durable root",
              file=sys.stderr)
        return 1
    if args.action == "split":
        shard_map = split_offline(args.directory, args.shards, out=args.out)
        where = args.out or args.directory
        print(f"rewrote {args.directory} -> {where}: "
              f"{shard_map.shard_count} shard(s), map version "
              f"{shard_map.version}")
        return 0
    result = recover_sharded(args.directory)
    try:
        store = result.store
        counts = [len(shard) for shard in store.shards]
        total = sum(counts)
        mean = total / len(counts) if counts else 0.0
        skew = (max(counts) / mean) if mean else 1.0
        print(f"{args.directory}: {total} triple(s) across "
              f"{store.shard_count} shard(s)")
        print(f"  shard map: version {result.map_version}, "
              f"{len(store.shard_map.slots)} slot(s)"
              + (", MIGRATION IN PROGRESS (reopen to resume)"
                 if result.migration_open else ""))
        for i, n in enumerate(counts):
            print(f"  shard {i}: {n} triple(s)")
        print(f"  balance: max/mean skew {skew:.3f} "
              f"(1.0 = perfectly level)")
    finally:
        result.store.close()
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import tempfile

    from repro.errors import BundleError, ReplayDivergenceError
    from repro.replay import bundle as bundle_format
    from repro.replay import replay_check
    from repro.replay.scenarios import capture_2pc_crash, capture_wal_kill

    if args.action == "record":
        directory = args.dir or tempfile.mkdtemp(prefix="repro-capture-")
        if args.scenario == "wal-kill":
            bundle = capture_wal_kill(directory, seed=args.seed)
        else:
            bundle = capture_2pc_crash(directory, seed=args.seed,
                                       stage=args.stage, shards=args.shards)
        bundle_format.save(bundle, args.out)
        outcome = bundle["outcome"]
        print(f"captured {args.scenario} scenario -> {args.out}")
        print(f"  {len(bundle['ops'])} op(s), outcome: "
              f"{outcome['triples']} triple(s), "
              f"digest {outcome['digest'][:16]}…")
        print(f"  session directory: {directory}")
        print(f"  re-run with: python -m repro replay run {args.out}")
        return 0

    try:
        bundle = bundle_format.load(args.bundle)
    except BundleError as exc:
        print(f"invalid bundle: {exc}", file=sys.stderr)
        return 1
    if args.action == "verify":
        print(f"{args.bundle}: valid version-{bundle['version']} bundle "
              f"({len(bundle['ops'])} op(s), "
              f"{bundle['config'].get('shards', 1)} shard(s))")
        return 0

    directory = args.dir or tempfile.mkdtemp(prefix="repro-replay-")
    try:
        results = replay_check(bundle, directory, runs=args.runs)
    except ReplayDivergenceError as exc:
        print(f"REPLAY DIVERGED: {exc}", file=sys.stderr)
        return 1
    first = results[0]
    print(f"{args.runs} replay(s) of {args.bundle}: all identical")
    print(f"  recovered {first.triples} triple(s), "
          f"digest {first.digest}")
    if first.op_latency_us:
        lat = first.op_latency_us
        print(f"  op latency: p50 {lat['p50_us']}us, "
              f"p95 {lat['p95_us']}us, p99 {lat['p99_us']}us")
    if first.crashed:
        print("  injected: 2PC coordinator kill (recovered via repair)")
    if first.killed_at is not None:
        print(f"  injected: WAL truncation at byte {first.killed_at}")
    outcome = bundle.get("outcome")
    if outcome is not None:
        print(f"  matches the captured outcome "
              f"({outcome['digest'][:16]}…)")
    return 0


def _cmd_worksheet(args: argparse.Namespace) -> int:
    from repro.slimpad.render import describe_structure, render_svg, render_text
    from repro.workloads.icu import generate_icu
    from repro.workloads.rounds import build_rounds_worksheet

    dataset = generate_icu(num_patients=args.patients, seed=args.seed)
    slimpad, _rows = build_rounds_worksheet(dataset)
    print(render_text(slimpad.pad))
    print("\nstructure:", describe_structure(slimpad.pad))
    if args.svg:
        svg = render_svg(slimpad.pad, width=1360,
                         height=80 + args.patients * 190)
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(svg)
        print(f"SVG written to {args.svg}")
    if getattr(args, "cache_stats", False):
        _print_cache_stats(slimpad.cache_stats())
    return 0


def _cmd_handoff(args: argparse.Namespace) -> int:
    from repro.slimpad.handoff import build_handoff
    from repro.workloads.icu import generate_icu
    from repro.workloads.rounds import build_rounds_worksheet

    dataset = generate_icu(num_patients=args.patients, seed=args.seed)
    slimpad, _rows = build_rounds_worksheet(dataset)
    print(build_handoff(slimpad).render())
    return 0


def _cmd_concordance(args: argparse.Namespace) -> int:
    from repro.workloads.concordance import build_concordance, kwic

    _slimpad, citations = build_concordance(args.terms)
    for term in sorted(citations):
        print(f"{term}: {len(citations[term])} use(s)")
        for line in kwic(term):
            print(f"  {line}")
    return 0


def _cmd_models(_args: argparse.Namespace) -> int:
    from repro.metamodel.builtin_models import define_all
    from repro.triples.trim import TrimManager

    trim = TrimManager()
    for model in define_all(trim):
        constructs = ", ".join(c.name for c in model.constructs())
        print(f"{model.name}: {constructs}")
        for connector in model.connectors():
            card = (f"{connector.min_card}.."
                    f"{'*' if connector.max_card is None else connector.max_card}")
            print(f"  {connector.name} [{card}]")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import TrimService

    service = TrimService(args.root, host=args.host, port=args.port,
                          shards=args.shards, high_water=args.high_water,
                          idle_ttl=args.idle_ttl)
    def announce(line: str) -> None:
        print(line, flush=True)
    return service.run(announce=announce)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bundles in Captivity (ICDE 2001) reproduction")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="the quickstart round trip")
    demo.add_argument("--durable", default=None, metavar="DIR",
                      help="log the pad crash-safely under this directory")
    demo.add_argument("--cache-stats", action="store_true",
                      help="print read-cache hit/miss counters at exit")
    demo.add_argument("--shards", type=int, default=1, metavar="N",
                      help="hash-partition the triple pool across N stores")
    demo.set_defaults(handler=_cmd_demo)

    worksheet = commands.add_parser("worksheet",
                                    help="build a rounds worksheet")
    worksheet.add_argument("--patients", type=int, default=3)
    worksheet.add_argument("--seed", type=int, default=2001)
    worksheet.add_argument("--cache-stats", action="store_true",
                           help="print read-cache hit/miss counters at exit")
    worksheet.add_argument("--svg", default=None,
                           help="write an SVG rendering to this path")
    worksheet.set_defaults(handler=_cmd_worksheet)

    handoff = commands.add_parser("handoff",
                                  help="print a weekend hand-off report")
    handoff.add_argument("--patients", type=int, default=3)
    handoff.add_argument("--seed", type=int, default=2001)
    handoff.set_defaults(handler=_cmd_handoff)

    concordance = commands.add_parser("concordance",
                                      help="concordance + KWIC")
    concordance.add_argument("terms", nargs="+")
    concordance.set_defaults(handler=_cmd_concordance)

    commands.add_parser("models", help="list the built-in models") \
        .set_defaults(handler=_cmd_models)

    recover = commands.add_parser(
        "recover", help="rebuild a durable store (snapshot + WAL tail)")
    recover.add_argument("directory",
                         help="durable directory (snapshot.slim + wal.log)")
    recover.add_argument("--out", default=None,
                         help="also export the recovered store to this XML file")
    recover.set_defaults(handler=_cmd_recover)

    replay = commands.add_parser(
        "replay", help="capture / re-run deterministic replay bundles")
    actions = replay.add_subparsers(dest="action", required=True)
    record = actions.add_parser(
        "record", help="capture a built-in crash scenario as a bundle")
    record.add_argument("--scenario", choices=["wal-kill", "2pc-crash"],
                        default="2pc-crash",
                        help="which crash family to capture")
    record.add_argument("--out", default="replay-bundle.json",
                        help="bundle file to write")
    record.add_argument("--seed", type=int, default=2001,
                        help="workload + kill-point seed")
    record.add_argument("--stage", choices=["prepare", "decide", "decided",
                                            "fence", "finish"],
                        default="decided",
                        help="2PC stage to kill the coordinator at")
    record.add_argument("--shards", type=int, default=4,
                        help="shard count for the 2pc-crash scenario")
    record.add_argument("--dir", default=None,
                        help="capture session directory (default: temp)")
    record.set_defaults(handler=_cmd_replay)
    run = actions.add_parser(
        "run", help="re-execute a bundle; assert identical recovered state")
    run.add_argument("bundle", help="bundle file to replay")
    run.add_argument("--runs", type=int, default=2,
                     help="independent replays that must agree (default 2)")
    run.add_argument("--dir", default=None,
                     help="parent directory for replay stores (default: temp)")
    run.set_defaults(handler=_cmd_replay)
    verify = actions.add_parser(
        "verify", help="schema-validate a bundle without executing it")
    verify.add_argument("bundle", help="bundle file to check")
    verify.set_defaults(handler=_cmd_replay)

    shards = commands.add_parser(
        "shards", help="inspect / rewrite a sharded durable directory")
    shard_actions = shards.add_subparsers(dest="action", required=True)
    info = shard_actions.add_parser(
        "info", help="shard-map version, per-shard counts, balance skew")
    info.add_argument("directory", help="sharded durable root")
    info.set_defaults(handler=_cmd_shards)
    split = shard_actions.add_parser(
        "split", help="offline rewrite to a different shard count "
                      "(grow or shrink)")
    split.add_argument("directory", help="sharded durable root")
    split.add_argument("--shards", type=int, required=True, metavar="N",
                       help="target shard count")
    split.add_argument("--out", default=None, metavar="DIR",
                       help="write the rebuilt tree here instead of "
                            "swapping in place")
    split.set_defaults(handler=_cmd_shards)

    serve = commands.add_parser(
        "serve", help="run the multi-tenant TRIM service (asyncio TCP)")
    serve.add_argument("root",
                       help="registry root (one durable subdir per tenant)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7421,
                       help="TCP port; 0 picks an ephemeral port "
                            "(default 7421)")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="shards per tenant store (default 1)")
    serve.add_argument("--high-water", type=int, default=64, metavar="N",
                       help="per-tenant inflight writes before RETRY_AFTER "
                            "(default 64)")
    serve.add_argument("--idle-ttl", type=float, default=300.0,
                       metavar="SECONDS",
                       help="close tenants idle this long (default 300)")
    serve.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Dispatch is interrupt-safe: a :class:`KeyboardInterrupt` escaping any
    command (including ``serve``, whose signal handlers normally catch
    SIGINT first and drain before returning 130) is caught here so the
    process exits with the conventional ``128 + SIGINT`` code instead of
    dumping a traceback.  Cleanup registered by the command — ``finally``
    blocks, ``with TrimManager(...)`` exits — has already run by the time
    the interrupt reaches this frame.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Output piped into a pager that quit; conventional silent exit.
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Typed queries over DMI application data.

Section 6: *"We are also considering augmenting such interfaces with
query capabilities, in addition to the current navigational access."*

:class:`DmiQuery` is that augmentation: a small typed query surface over
a :class:`~repro.dmi.runtime.DmiRuntime` that compiles to the conjunctive
triple-query engine, returning application-data proxies rather than raw
triples.  Navigational access (follow references) stays available on the
proxies; queries add the declarative entry points.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.dmi.runtime import DmiRuntime, EntityObject
from repro.dmi.spec import ATTR_TYPES
from repro.triples.query import Pattern, Query, Var
from repro.triples.triple import Literal, Resource


class DmiQuery:
    """Query entry points over one runtime's application data."""

    def __init__(self, runtime: DmiRuntime) -> None:
        self._runtime = runtime

    # -- attribute queries ----------------------------------------------------------

    def find(self, entity_name: str, attr_name: str, value) -> List[EntityObject]:
        """Instances of *entity_name* whose *attr_name* equals *value*.

        The value is encoded through the attribute's codec, so e.g.
        coordinates compare correctly.
        """
        entity = self._runtime.spec.entity(entity_name)
        attr = entity.attribute(attr_name)
        encoded = ATTR_TYPES[attr.type].encode(value)
        prop = self._runtime.property_resource(entity_name, attr_name)
        hits = self._runtime.trim.select(prop=prop, value=Literal(encoded))
        return [self._runtime.get(entity_name, t.subject.uri) for t in hits]

    def find_where(self, entity_name: str,
                   predicate: Callable[[EntityObject], bool]
                   ) -> List[EntityObject]:
        """Instances satisfying an arbitrary Python predicate (filter)."""
        return [obj for obj in self._runtime.all(entity_name)
                if predicate(obj)]

    def first(self, entity_name: str, attr_name: str,
              value) -> Optional[EntityObject]:
        """The first :meth:`find` hit, or ``None``."""
        hits = self.find(entity_name, attr_name, value)
        return hits[0] if hits else None

    # -- path queries (compiled to the conjunctive engine) -----------------------------

    def contained_in(self, container_entity: str, ref_name: str,
                     member_entity: str, member_attr: str,
                     member_value) -> List[EntityObject]:
        """Containers whose *ref_name* reaches a member with the given
        attribute value — e.g. bundles containing a scrap named 'K 3.9'.

        Compiles to a two-pattern conjunctive query joined on the member.
        """
        container = self._runtime.spec.entity(container_entity)
        container.reference(ref_name)
        member = self._runtime.spec.entity(member_entity)
        attr = member.attribute(member_attr)
        encoded = ATTR_TYPES[attr.type].encode(member_value)
        query = Query([
            Pattern(Var("c"),
                    self._runtime.property_resource(container_entity, ref_name),
                    Var("m")),
            Pattern(Var("m"),
                    self._runtime.property_resource(member_entity, member_attr),
                    Literal(encoded)),
        ])
        results = []
        for binding in query.run(self._runtime.trim.store):
            container_node = binding["c"]
            if isinstance(container_node, Resource):
                try:
                    results.append(self._runtime.get(container_entity,
                                                     container_node.uri))
                except KeyError:
                    continue
        return results

    def count(self, entity_name: str) -> int:
        """How many instances of *entity_name* exist."""
        return len(self._runtime.all(entity_name))

"""DMI model specifications.

A :class:`ModelSpec` is the high-level description of an application data
model — entities, typed attributes, references — from which a Data
Manipulation Interface is generated (Section 4.4 and the Section 6 current
work: *"automatic generation of customized data manipulation interfaces
from high-level specification"*).

Specs can be written directly (the "UML" path: Fig. 3 transcribed in
code), converted **to** a metamodel model definition, or derived **from**
one (the "triples" path) — the paper's two specification sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import SpecError
from repro.metamodel.model import ModelDefinition
from repro.triples.trim import TrimManager
from repro.util.coordinates import Coordinate

# -- attribute type codecs -------------------------------------------------------
#
# Each attribute type maps a Python value to/from a literal stored in one
# triple.  'coordinate' packs a Coordinate as "x,y" so Fig. 3's
# bundlePos/scrapPos attributes stay single triples.


def _encode_coordinate(value: Coordinate) -> str:
    if not isinstance(value, Coordinate):
        raise TypeError(f"expected Coordinate, got {type(value).__name__}")
    return f"{value.x},{value.y}"


def _decode_coordinate(raw: object) -> Coordinate:
    x_text, _, y_text = str(raw).partition(",")
    return Coordinate(float(x_text), float(y_text))


def _check_plain(python_type: type) -> Callable[[object], object]:
    def encode(value: object) -> object:
        # bool is an int subclass; require exact type identity.
        if type(value) is not python_type:
            raise TypeError(
                f"expected {python_type.__name__}, got {type(value).__name__}")
        return value
    return encode


@dataclass(frozen=True)
class AttrType:
    """A named attribute type with its encode/decode pair."""

    name: str
    encode: Callable[[object], object]
    decode: Callable[[object], object]


ATTR_TYPES: Dict[str, AttrType] = {
    "string": AttrType("string", _check_plain(str), str),
    "integer": AttrType("integer", _check_plain(int), int),
    "float": AttrType("float", _check_plain(float), float),
    "boolean": AttrType("boolean", _check_plain(bool), bool),
    "coordinate": AttrType("coordinate", _encode_coordinate, _decode_coordinate),
}

#: How each attribute type is declared when bridged to the metamodel
#: (coordinates travel as their packed string form).
_METAMODEL_LITERAL_TYPE = {
    "string": "string",
    "integer": "integer",
    "float": "float",
    "boolean": "boolean",
    "coordinate": "string",
}


@dataclass(frozen=True)
class AttrSpec:
    """One typed attribute of an entity (e.g. ``bundleName : string``)."""

    name: str
    type: str = "string"
    required: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"attribute name must be an identifier: {self.name!r}")
        if self.type not in ATTR_TYPES:
            raise SpecError(f"unknown attribute type {self.type!r}; "
                            f"expected one of {sorted(ATTR_TYPES)}")


@dataclass(frozen=True)
class RefSpec:
    """One reference from an entity to another entity.

    ``many`` distinguishes collections (``bundleContent 0..*``) from
    single-valued references (``rootBundle 0..1``).  ``containment``
    references cascade on delete — removing a Bundle removes its nested
    Bundles and Scraps, as SLIMPad's Delete_Bundle must.
    """

    name: str
    target: str
    many: bool = True
    required: bool = False
    containment: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"reference name must be an identifier: {self.name!r}")


@dataclass(frozen=True)
class EntitySpec:
    """One entity: a named bag of attributes and references."""

    name: str
    attributes: Tuple[AttrSpec, ...] = ()
    references: Tuple[RefSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SpecError(f"entity name must be an identifier: {self.name!r}")
        names = [a.name for a in self.attributes] + [r.name for r in self.references]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SpecError(
                f"entity {self.name!r} has duplicate member names: {sorted(duplicates)}")

    def attribute(self, name: str) -> AttrSpec:
        """Look up an attribute by name; raises SpecError when absent."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SpecError(f"entity {self.name!r} has no attribute {name!r}")

    def reference(self, name: str) -> RefSpec:
        """Look up a reference by name; raises SpecError when absent."""
        for ref in self.references:
            if ref.name == name:
                return ref
        raise SpecError(f"entity {self.name!r} has no reference {name!r}")


class ModelSpec:
    """A complete application data model: named entities, checked for sanity."""

    def __init__(self, name: str, entities: List[EntitySpec]) -> None:
        if not name.isidentifier():
            raise SpecError(f"model name must be an identifier: {name!r}")
        self.name = name
        self.entities: Dict[str, EntitySpec] = {}
        for entity in entities:
            if entity.name in self.entities:
                raise SpecError(f"duplicate entity {entity.name!r}")
            self.entities[entity.name] = entity
        self._validate_targets()

    def _validate_targets(self) -> None:
        for entity in self.entities.values():
            for ref in entity.references:
                if ref.target not in self.entities:
                    raise SpecError(
                        f"{entity.name}.{ref.name} references unknown "
                        f"entity {ref.target!r}")

    def entity(self, name: str) -> EntitySpec:
        """Look up an entity by name; raises SpecError when absent."""
        try:
            return self.entities[name]
        except KeyError:
            raise SpecError(f"model {self.name!r} has no entity {name!r}") from None

    # -- bridges to the metamodel (Section 6: "UML or as triples") ----------------

    def to_metamodel(self, trim: TrimManager) -> ModelDefinition:
        """Write this spec into a TRIM store as a model definition.

        Entities become constructs; attributes become literal constructs
        (named ``Entity.attr``) linked by connectors; references become
        connectors with the spec's cardinalities.
        """
        model = ModelDefinition.define(trim, self.name)
        constructs = {name: model.add_construct(name) for name in self.entities}
        for entity in self.entities.values():
            for attr in entity.attributes:
                literal = model.add_literal_construct(
                    f"{entity.name}.{attr.name}",
                    _METAMODEL_LITERAL_TYPE[attr.type])
                model.add_connector(f"{entity.name}.{attr.name}.of",
                                    constructs[entity.name], literal,
                                    min_card=1 if attr.required else 0,
                                    max_card=1)
            for ref in entity.references:
                model.add_connector(
                    f"{entity.name}.{ref.name}",
                    constructs[entity.name], constructs[ref.target],
                    min_card=1 if ref.required else 0,
                    max_card=None if ref.many else 1)
        return model

    @classmethod
    def from_metamodel(cls, model: ModelDefinition) -> "ModelSpec":
        """Derive a spec from a model definition written by :meth:`to_metamodel`."""
        entity_names = [c.name for c in model.constructs()
                        if not c.is_literal and not c.is_mark]
        attributes: Dict[str, List[AttrSpec]] = {n: [] for n in entity_names}
        references: Dict[str, List[RefSpec]] = {n: [] for n in entity_names}
        literal_types = {c.name: model.literal_type_of(c)
                         for c in model.constructs() if c.is_literal}
        construct_names = {c.resource: c.name for c in model.constructs()}

        for connector in model.connectors():
            source = construct_names.get(connector.source)
            target = construct_names.get(connector.target)
            if source not in attributes or target is None:
                continue
            if target in literal_types:
                # An attribute connector: 'Entity.attr.of' -> literal construct.
                attr_name = target.split(".", 1)[1] if "." in target else target
                attributes[source].append(AttrSpec(
                    attr_name, literal_types[target] or "string",
                    required=connector.min_card >= 1))
            elif target in entity_names:
                ref_name = connector.name.split(".", 1)[1] \
                    if connector.name.startswith(f"{source}.") else connector.name
                references[source].append(RefSpec(
                    ref_name, target,
                    many=connector.max_card is None,
                    required=connector.min_card >= 1))
        entities = [EntitySpec(name, tuple(attributes[name]),
                               tuple(references[name]))
                    for name in entity_names]
        return cls(model.name, entities)

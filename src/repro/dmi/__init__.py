"""Data Manipulation Interfaces (paper Section 4.4, Figs. 9 & 10).

- :class:`ModelSpec` / :class:`EntitySpec` / :class:`AttrSpec` /
  :class:`RefSpec` — the high-level specification language
- :class:`DmiRuntime` / :class:`EntityObject` — the engine that maps
  entity operations onto triples and hands out read-only proxies
- :func:`generate_dmi_class` / :func:`render_source` — automatic DMI
  generation from a spec (the paper's SLIM-ML direction)
"""

from repro.dmi.generator import generate_dmi_class, render_source
from repro.dmi.query import DmiQuery
from repro.dmi.runtime import DmiRuntime, EntityObject
from repro.dmi.spec import (ATTR_TYPES, AttrSpec, EntitySpec, ModelSpec,
                            RefSpec)

__all__ = [
    "ATTR_TYPES",
    "AttrSpec",
    "EntitySpec",
    "ModelSpec",
    "RefSpec",
    "DmiQuery",
    "DmiRuntime",
    "EntityObject",
    "generate_dmi_class",
    "render_source",
]

"""The DMI runtime: typed operations over the triple representation.

Fig. 9: *"The superimposed application interacts with application data …
plus an application-specific Data Manipulation Interface (DMI) … By
restricting manipulation of data through the DMI, we store the triples
without intervention from the superimposed application."*

:class:`DmiRuntime` is the engine under every DMI: it turns entity-level
operations (create/update/link/delete) into triples in a TRIM store and
hands the application read-only :class:`EntityObject` proxies — the
"application data interfaces" of Fig. 10.  Proxies read from the store on
every access, so application data and triples cannot diverge.

Concurrency: a DMI running inside its own ``bulk_session`` still reads
its uncommitted creates (store reads flush pending inserts for the thread
that owns the bulk scope), while *other* threads' proxy reads and queries
see the last-flushed snapshot — the DMI's consistency guarantee holds
per-thread without readers blocking the ingest.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import DmiError, StaleObjectError, UnknownEntityError
from repro.dmi.spec import ATTR_TYPES, EntitySpec, ModelSpec, RefSpec
from repro.triples.namespaces import SLIM
from repro.triples.triple import Literal, Resource
from repro.triples.trim import TrimManager

#: rdf:type is reused for entity typing.
_TYPE = Resource("rdf:type")


class EntityObject:
    """A read-only proxy for one entity instance.

    Attribute access is live: ``scrap.scrapName`` reads the store at call
    time.  References come back as further proxies (lists for ``many``
    references).  Assignment is rejected — all writes go through the DMI,
    which is how the DMI "guarantees consistency between the triple
    representation and the application data".
    """

    __slots__ = ("_runtime", "_resource", "_entity")

    def __init__(self, runtime: "DmiRuntime", resource: Resource,
                 entity: EntitySpec) -> None:
        object.__setattr__(self, "_runtime", runtime)
        object.__setattr__(self, "_resource", resource)
        object.__setattr__(self, "_entity", entity)

    @property
    def id(self) -> str:
        """The stable identifier of this instance."""
        return self._resource.uri

    @property
    def entity_name(self) -> str:
        """Which entity this instance belongs to."""
        return self._entity.name

    def __getattr__(self, name: str):
        runtime: DmiRuntime = self._runtime
        entity: EntitySpec = self._entity
        if any(a.name == name for a in entity.attributes):
            return runtime.value(self, name)
        for ref in entity.references:
            if ref.name == name:
                targets = runtime.refs(self, name)
                return targets if ref.many else (targets[0] if targets else None)
        raise AttributeError(
            f"{entity.name} has no attribute or reference {name!r}")

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(
            "application data is read-only; mutate through the DMI")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, EntityObject)
                and other._resource == self._resource)

    def __hash__(self) -> int:
        return hash(self._resource)

    def __repr__(self) -> str:
        return f"<{self._entity.name} {self._resource.uri}>"


class DmiRuntime:
    """Create/update/delete entity instances stored as triples."""

    def __init__(self, spec: ModelSpec,
                 trim: Optional[TrimManager] = None,
                 shards: int = 1) -> None:
        self.spec = spec
        # shards > 1 partitions the backing pool by subject hash (see
        # repro.triples.sharded); ignored when a TrimManager is supplied.
        self.trim = trim or TrimManager(shards=shards)

    def reshard(self, new_count: int, batch_subjects: int = 256,
                wait: bool = True):
        """Grow the underlying TRIM's shard count live (see
        :meth:`TrimManager.reshard <repro.triples.trim.TrimManager.reshard>`)."""
        return self.trim.reshard(new_count, batch_subjects=batch_subjects,
                                 wait=wait)

    # -- naming ---------------------------------------------------------------

    def type_resource(self, entity_name: str) -> Resource:
        """The rdf:type value for instances of *entity_name*."""
        return SLIM[f"{self.spec.name}.{entity_name}"]

    def property_resource(self, entity_name: str, member: str) -> Resource:
        """The property naming attribute/reference *member* of an entity."""
        return SLIM[f"{self.spec.name}.{entity_name}.{member}"]

    # -- creation ---------------------------------------------------------------

    def create(self, entity_name: str, **attrs) -> EntityObject:
        """Create an instance, setting any named attributes.

        Required attributes must be supplied; unknown names are rejected.
        All triples for the create are written in one rollback batch
        (or under the enclosing batch/bulk session, when one is active).
        """
        entity = self.spec.entity(entity_name)
        self._check_attrs(entity_name, entity, attrs)
        with self._op_batch():
            return self._create_one(entity_name, entity, attrs)

    def batch_create(self, entity_name: str,
                     items: Iterable[Mapping[str, object]]
                     ) -> List[EntityObject]:
        """Create many instances of one entity as a single batch session.

        Every item is validated up front; the triples for all of them
        are then written through the store's bulk path inside one
        rollback batch and committed as *one* WAL group under durable
        mode — N creates cost one index-maintenance pass and one fsync
        instead of N.  An error anywhere (validation or write) creates
        nothing.  Returns the proxies in item order.
        """
        entity = self.spec.entity(entity_name)
        specs: List[Dict[str, object]] = [dict(item) for item in items]
        for attrs in specs:
            self._check_attrs(entity_name, entity, attrs)
        with self._op_batch():
            created = [self._create_one(entity_name, entity, attrs)
                       for attrs in specs]
        if not self.trim.store.in_bulk:
            self.trim.commit()
        return created

    def _check_attrs(self, entity_name: str, entity: EntitySpec,
                     attrs: Mapping[str, object]) -> None:
        known = {a.name for a in entity.attributes}
        unknown = set(attrs) - known
        if unknown:
            raise DmiError(
                f"unknown attribute(s) for {entity_name}: {sorted(unknown)}")
        missing = [a.name for a in entity.attributes
                   if a.required and a.name not in attrs]
        if missing:
            raise DmiError(
                f"missing required attribute(s) for {entity_name}: {missing}")

    def _create_one(self, entity_name: str, entity: EntitySpec,
                    attrs: Mapping[str, object]) -> EntityObject:
        resource = self.trim.new_resource(entity_name.lower())
        self.trim.create(resource, _TYPE, self.type_resource(entity_name))
        for name, value in attrs.items():
            self._write_attr(resource, entity, name, value)
        return EntityObject(self, resource, entity)

    def _op_batch(self):
        """The rollback unit for one DMI operation.

        Normally a fresh :meth:`TrimManager.batch`; when an enclosing
        bulk/batch session is already active on the store, that session
        owns rollback (batches do not nest), so this degrades to a
        no-op context.
        """
        if self.trim.store.in_bulk:
            return contextlib.nullcontext()
        return self.trim.batch()

    def cache_stats(self) -> dict:
        """Read-path cache metrics for this DMI's TRIM (hit rates for
        attribute/reference reads, view maintenance counters) — see
        :meth:`repro.triples.trim.TrimManager.cache_stats`."""
        return self.trim.cache_stats()

    # -- attributes ----------------------------------------------------------------

    def update(self, obj: EntityObject, attr_name: str, value) -> None:
        """Replace the value of one attribute."""
        self._require_live(obj)
        self._write_attr(obj._resource, obj._entity, attr_name, value,
                         replace=True)

    def value(self, obj: EntityObject, attr_name: str):
        """Read one attribute (``None`` when unset)."""
        self._require_live(obj)
        attr = obj._entity.attribute(attr_name)
        prop = self.property_resource(obj._entity.name, attr_name)
        raw = self.trim.literal_of(obj._resource, prop)
        if raw is None:
            return None
        return ATTR_TYPES[attr.type].decode(raw)

    def _write_attr(self, resource: Resource, entity: EntitySpec,
                    attr_name: str, value, replace: bool = False) -> None:
        attr = entity.attribute(attr_name)
        codec = ATTR_TYPES[attr.type]
        try:
            encoded = codec.encode(value)
        except TypeError as exc:
            raise DmiError(f"{entity.name}.{attr_name}: {exc}") from exc
        prop = self.property_resource(entity.name, attr_name)
        if replace:
            self.trim.store.remove_matching(subject=resource, property=prop)
        self.trim.create(resource, prop, Literal(encoded))

    # -- references -------------------------------------------------------------------

    def add_ref(self, obj: EntityObject, ref_name: str,
                target: EntityObject) -> None:
        """Append *target* to a reference (or set it, for single refs).

        Single-valued references reject a second target; use
        :meth:`set_ref` to replace.
        """
        self._require_live(obj)
        self._require_live(target)
        ref = obj._entity.reference(ref_name)
        self._check_target(ref, target)
        prop = self.property_resource(obj._entity.name, ref_name)
        if not ref.many and \
                self.trim.count(subject=obj._resource, prop=prop) > 0:
            raise DmiError(
                f"{obj._entity.name}.{ref_name} is single-valued; "
                f"use set_ref to replace")
        self.trim.create(obj._resource, prop, target._resource)

    def set_ref(self, obj: EntityObject, ref_name: str,
                target: Optional[EntityObject]) -> None:
        """Replace a reference's target(s) with *target* (or clear, if None)."""
        self._require_live(obj)
        ref = obj._entity.reference(ref_name)
        prop = self.property_resource(obj._entity.name, ref_name)
        self.trim.store.remove_matching(subject=obj._resource, property=prop)
        if target is not None:
            self._require_live(target)
            self._check_target(ref, target)
            self.trim.create(obj._resource, prop, target._resource)

    def remove_ref(self, obj: EntityObject, ref_name: str,
                   target: EntityObject) -> bool:
        """Remove one link; returns whether it existed."""
        self._require_live(obj)
        obj._entity.reference(ref_name)
        prop = self.property_resource(obj._entity.name, ref_name)
        return self.trim.store.remove_matching(
            subject=obj._resource, property=prop,
            value=target._resource) > 0

    def refs(self, obj: EntityObject, ref_name: str) -> List[EntityObject]:
        """The targets of a reference, in link order."""
        self._require_live(obj)
        ref = obj._entity.reference(ref_name)
        prop = self.property_resource(obj._entity.name, ref_name)
        target_entity = self.spec.entity(ref.target)
        result = []
        for node in self.trim.values_of(obj._resource, prop):
            if isinstance(node, Resource):
                result.append(EntityObject(self, node, target_entity))
        return result

    def referrers(self, obj: EntityObject, entity_name: str,
                  ref_name: str) -> List[EntityObject]:
        """Instances of *entity_name* whose *ref_name* points at *obj*."""
        self._require_live(obj)
        entity = self.spec.entity(entity_name)
        entity.reference(ref_name)
        prop = self.property_resource(entity_name, ref_name)
        return [EntityObject(self, t.subject, entity)
                for t in self.trim.select(prop=prop, value=obj._resource)]

    def _check_target(self, ref: RefSpec, target: EntityObject) -> None:
        if target._entity.name != ref.target:
            raise DmiError(
                f"reference {ref.name!r} expects {ref.target}, "
                f"got {target._entity.name}")

    # -- retrieval ------------------------------------------------------------------------

    def get(self, entity_name: str, instance_id: str) -> EntityObject:
        """Fetch one instance by id; raises when absent or wrong entity."""
        entity = self.spec.entity(entity_name)
        resource = Resource(instance_id)
        # Exact-membership probe on the (s, p, v) fast path — no triple
        # materialization just to compare the type value.
        if self.trim.count(subject=resource, prop=_TYPE,
                           value=self.type_resource(entity_name)) == 0:
            raise UnknownEntityError(
                f"no {entity_name} with id {instance_id!r}")
        return EntityObject(self, resource, entity)

    def all(self, entity_name: str) -> List[EntityObject]:
        """Every instance of an entity, in creation order."""
        entity = self.spec.entity(entity_name)
        return [EntityObject(self, t.subject, entity)
                for t in self.trim.select(prop=_TYPE,
                                          value=self.type_resource(entity_name))]

    def exists(self, obj: EntityObject) -> bool:
        """Whether the instance behind *obj* is still stored.

        A bucket-size read on the ``(subject, property)`` compound index —
        this runs inside every DMI operation (via liveness checks), so it
        must not materialize triples.
        """
        return self.trim.count(subject=obj._resource, prop=_TYPE) > 0

    # -- deletion --------------------------------------------------------------------------

    def delete(self, obj: EntityObject) -> int:
        """Delete an instance; containment references cascade.

        Incoming references from surviving instances are removed, so the
        store never holds dangling links.  Returns the number of instances
        deleted (including cascaded ones).
        """
        self._require_live(obj)
        with self._op_batch():
            return self._delete_recursive(obj, seen=set())

    def _delete_recursive(self, obj: EntityObject, seen: set) -> int:
        if obj._resource in seen:
            return 0
        seen.add(obj._resource)
        count = 1
        for ref in obj._entity.references:
            if ref.containment:
                for child in self.refs(obj, ref.name):
                    count += self._delete_recursive(child, seen)
        self.trim.remove_about(obj._resource)
        self.trim.store.remove_matching(value=obj._resource)
        return count

    # -- persistence ------------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist all application data (delegates to TRIM)."""
        self.trim.save(path)

    def load(self, path: str) -> None:
        """Replace all application data from a file (delegates to TRIM)."""
        self.trim.load(path)

    # -- internals ----------------------------------------------------------------------------

    def _require_live(self, obj: EntityObject) -> None:
        if not self.exists(obj):
            raise StaleObjectError(
                f"{obj._entity.name} {obj._resource.uri} was deleted")

"""Model-level definitions: superimposed data models as triples.

A :class:`ModelDefinition` is a handle over triples describing one
superimposed model — its constructs, literal constructs, mark constructs,
connectors, and generalizations.  Everything is stored in the TRIM store;
the handle classes are thin readers/writers, so a model can equally be
*loaded* from triples that arrived from another application (the
interoperability benefit of Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ModelError, UnknownConstructError
from repro.metamodel import vocabulary as v
from repro.triples.triple import Resource
from repro.triples.trim import TrimManager


@dataclass(frozen=True)
class ConstructHandle:
    """A construct (or literal/mark construct) within a model."""

    resource: Resource
    model: Resource
    kind: Resource   # CONSTRUCT | LITERAL_CONSTRUCT | MARK_CONSTRUCT
    name: str

    @property
    def is_literal(self) -> bool:
        """Whether this is a literal construct."""
        return self.kind == v.LITERAL_CONSTRUCT

    @property
    def is_mark(self) -> bool:
        """Whether this is a mark construct."""
        return self.kind == v.MARK_CONSTRUCT


@dataclass(frozen=True)
class ConnectorHandle:
    """A connector between two constructs, with optional cardinalities.

    ``max_card is None`` means unbounded (the UML ``*``).
    """

    resource: Resource
    model: Resource
    name: str
    source: Resource
    target: Resource
    min_card: int
    max_card: Optional[int]


class ModelDefinition:
    """Create and inspect one superimposed model inside a TRIM store."""

    def __init__(self, trim: TrimManager, resource: Resource, name: str) -> None:
        self._trim = trim
        self.resource = resource
        self.name = name

    # -- definition ------------------------------------------------------------

    @classmethod
    def define(cls, trim: TrimManager, name: str) -> "ModelDefinition":
        """Create a fresh model named *name* in *trim*'s store."""
        resource = trim.new_resource("model")
        trim.create(resource, v.TYPE, v.MODEL)
        trim.create(resource, v.NAME, name)
        return cls(trim, resource, name)

    @classmethod
    def attach(cls, trim: TrimManager, resource: Resource) -> "ModelDefinition":
        """Wrap an existing model resource (e.g. after loading a store)."""
        name = trim.store.literal_of(resource, v.NAME)
        if name is None or trim.store.value_of(resource, v.TYPE) != v.MODEL:
            raise ModelError(f"{resource} is not a slim:Model")
        return cls(trim, resource, str(name))

    def _add_construct_of_kind(self, name: str, kind: Resource) -> ConstructHandle:
        if self.find_construct(name) is not None:
            raise ModelError(f"model {self.name!r} already defines construct {name!r}")
        resource = self._trim.new_resource("construct")
        self._trim.create(resource, v.TYPE, kind)
        self._trim.create(resource, v.NAME, name)
        self._trim.create(resource, v.IN_MODEL, self.resource)
        return ConstructHandle(resource, self.resource, kind, name)

    def add_construct(self, name: str) -> ConstructHandle:
        """Define a plain construct (a unit of structure)."""
        return self._add_construct_of_kind(name, v.CONSTRUCT)

    def add_literal_construct(self, name: str,
                              literal_type: str = "string") -> ConstructHandle:
        """Define a literal construct carrying a primitive type."""
        if literal_type not in v.LITERAL_TYPES:
            raise ModelError(f"unknown literal type {literal_type!r}; "
                             f"expected one of {v.LITERAL_TYPES}")
        handle = self._add_construct_of_kind(name, v.LITERAL_CONSTRUCT)
        self._trim.create(handle.resource, v.LITERAL_TYPE, literal_type)
        return handle

    def add_mark_construct(self, name: str) -> ConstructHandle:
        """Define a mark construct (instances delineate marks)."""
        return self._add_construct_of_kind(name, v.MARK_CONSTRUCT)

    def add_connector(self, name: str, source: ConstructHandle,
                      target: ConstructHandle, min_card: int = 0,
                      max_card: Optional[int] = None) -> ConnectorHandle:
        """Define a connector from *source* to *target* constructs.

        Cardinalities bound how many *target*-side values one source
        instance may have; ``max_card=None`` is unbounded.
        """
        self._require_mine(source)
        self._require_mine(target)
        if min_card < 0:
            raise ModelError("min_card must be >= 0")
        if max_card is not None and max_card < min_card:
            raise ModelError(f"max_card {max_card} < min_card {min_card}")
        resource = self._trim.new_resource("connector")
        self._trim.create(resource, v.TYPE, v.CONNECTOR)
        self._trim.create(resource, v.NAME, name)
        self._trim.create(resource, v.IN_MODEL, self.resource)
        self._trim.create(resource, v.SOURCE, source.resource)
        self._trim.create(resource, v.TARGET, target.resource)
        self._trim.create(resource, v.MIN_CARD, min_card)
        if max_card is not None:
            self._trim.create(resource, v.MAX_CARD, max_card)
        return ConnectorHandle(resource, self.resource, name,
                               source.resource, target.resource,
                               min_card, max_card)

    def add_generalization(self, sub: ConstructHandle,
                           super_: ConstructHandle) -> None:
        """Declare that *sub* specializes *super_* (generalization connector)."""
        self._require_mine(sub)
        self._require_mine(super_)
        if sub.resource == super_.resource:
            raise ModelError("a construct cannot specialize itself")
        if sub.resource in self._ancestors(super_.resource):
            raise ModelError(
                f"generalization cycle: {super_.name} already specializes {sub.name}")
        self._trim.create(sub.resource, v.SPECIALIZES, super_.resource)

    # -- inspection --------------------------------------------------------------

    def constructs(self) -> List[ConstructHandle]:
        """Every construct of any kind defined in this model."""
        handles = []
        for t in self._trim.select(prop=v.IN_MODEL, value=self.resource):
            kind = self._trim.store.value_of(t.subject, v.TYPE)
            if kind in (v.CONSTRUCT, v.LITERAL_CONSTRUCT, v.MARK_CONSTRUCT):
                name = str(self._trim.store.literal_of(t.subject, v.NAME))
                handles.append(ConstructHandle(t.subject, self.resource, kind, name))
        return handles

    def connectors(self) -> List[ConnectorHandle]:
        """Every connector defined in this model."""
        handles = []
        for t in self._trim.select(prop=v.IN_MODEL, value=self.resource):
            if self._trim.store.value_of(t.subject, v.TYPE) != v.CONNECTOR:
                continue
            handles.append(self._connector_from(t.subject))
        return handles

    def find_construct(self, name: str) -> Optional[ConstructHandle]:
        """Look up a construct by name; ``None`` when absent."""
        for handle in self.constructs():
            if handle.name == name:
                return handle
        return None

    def construct(self, name: str) -> ConstructHandle:
        """Look up a construct by name; raise when absent."""
        handle = self.find_construct(name)
        if handle is None:
            raise UnknownConstructError(
                f"model {self.name!r} has no construct {name!r}")
        return handle

    def find_connector(self, name: str) -> Optional[ConnectorHandle]:
        """Look up a connector by name; ``None`` when absent."""
        for handle in self.connectors():
            if handle.name == name:
                return handle
        return None

    def connector(self, name: str) -> ConnectorHandle:
        """Look up a connector by name; raise when absent."""
        handle = self.find_connector(name)
        if handle is None:
            raise UnknownConstructError(
                f"model {self.name!r} has no connector {name!r}")
        return handle

    def literal_type_of(self, construct: ConstructHandle) -> Optional[str]:
        """The declared primitive type of a literal construct."""
        value = self._trim.store.literal_of(construct.resource, v.LITERAL_TYPE)
        return None if value is None else str(value)

    def supers_of(self, construct: ConstructHandle) -> List[ConstructHandle]:
        """Direct generalizations of *construct*."""
        result = []
        for node in self._trim.store.values_of(construct.resource, v.SPECIALIZES):
            if isinstance(node, Resource):
                result.append(self._construct_from(node))
        return result

    def all_supers_of(self, construct: ConstructHandle) -> List[ConstructHandle]:
        """Transitive generalizations, nearest first."""
        return [self._construct_from(r)
                for r in self._ancestors(construct.resource)]

    def is_kind_of(self, sub: ConstructHandle, super_: ConstructHandle) -> bool:
        """True when *sub* is *super_* or (transitively) specializes it."""
        if sub.resource == super_.resource:
            return True
        return super_.resource in self._ancestors(sub.resource)

    # -- internals ----------------------------------------------------------------

    def _require_mine(self, handle) -> None:
        if handle.model != self.resource:
            raise ModelError(
                f"{handle.name!r} belongs to a different model")

    def _ancestors(self, resource: Resource) -> List[Resource]:
        seen: List[Resource] = []
        frontier = [resource]
        while frontier:
            current = frontier.pop(0)
            for node in self._trim.store.values_of(current, v.SPECIALIZES):
                if isinstance(node, Resource) and node not in seen:
                    seen.append(node)
                    frontier.append(node)
        return seen

    def _construct_from(self, resource: Resource) -> ConstructHandle:
        kind = self._trim.store.value_of(resource, v.TYPE)
        name = self._trim.store.literal_of(resource, v.NAME)
        if kind is None or name is None:
            raise UnknownConstructError(f"{resource} is not a construct")
        return ConstructHandle(resource, self.resource, kind, str(name))

    def _connector_from(self, resource: Resource) -> ConnectorHandle:
        store = self._trim.store
        name = store.literal_of(resource, v.NAME)
        source = store.value_of(resource, v.SOURCE)
        target = store.value_of(resource, v.TARGET)
        min_card = store.literal_of(resource, v.MIN_CARD)
        max_card = store.literal_of(resource, v.MAX_CARD)
        if name is None or source is None or target is None:
            raise ModelError(f"{resource} is not a well-formed connector")
        return ConnectorHandle(resource, self.resource, str(name),
                               source, target,
                               int(min_card or 0),
                               None if max_card is None else int(max_card))


def list_models(trim: TrimManager) -> List[ModelDefinition]:
    """Every model defined in *trim*'s store."""
    result = []
    for t in trim.select(prop=v.TYPE, value=v.MODEL):
        result.append(ModelDefinition.attach(trim, t.subject))
    return result

"""Mappings between superimposed models and schemas.

Section 4.3: *"We can leverage the generic representation directly, by
defining mappings between superimposed models, including model-to-model,
schema-to-schema and even schema-to-model mappings."*  (Bowers &
Delcambre [4].)

A mapping is a set of rules pairing source resources (constructs,
connectors, or schema elements) with target resources.  Applying a mapping
rewrites instance data — every ``rdf:type``/``slim:conformsTo`` target and
every property key covered by a rule — into the target vocabulary,
producing new triples (the source data is left untouched).

Three concrete mapping kinds share the machinery:

- :class:`ModelMapping` — constructs/connectors of model A to model B.
- :class:`SchemaMapping` — elements of schema A to elements of schema B
  (plus the property rules inherited from a model mapping, when given).
- :class:`SchemaToModelMapping` — elements of schema A directly to
  *constructs* of model B: the schema is "promoted", e.g. treating every
  ``PatientBundle`` simply as a ``Bundle``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MappingError
from repro.metamodel import vocabulary as v
from repro.metamodel.model import ModelDefinition
from repro.metamodel.schema import SchemaDefinition
from repro.triples.store import TripleStore
from repro.triples.triple import Resource, Triple
from repro.triples.trim import TrimManager


@dataclass
class MappingReport:
    """What a mapping application did."""

    rewritten: int                   # triples written to the target store
    unmapped: List[Resource] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every touched element/property had a rule."""
        return not self.unmapped


class _RuleMapping:
    """Shared rule table + application engine."""

    def __init__(self, trim: TrimManager) -> None:
        self._trim = trim
        self._rules: Dict[Resource, Resource] = {}

    def add_rule(self, source: Resource, target: Resource) -> None:
        """Map *source* to *target*; re-adding a source must agree."""
        existing = self._rules.get(source)
        if existing is not None and existing != target:
            raise MappingError(
                f"conflicting rules for {source}: {existing} vs {target}")
        self._rules[source] = target

    @property
    def rules(self) -> Dict[Resource, Resource]:
        return dict(self._rules)

    def translate(self, resource: Resource) -> Optional[Resource]:
        """The target for *resource*, or ``None`` when unmapped."""
        return self._rules.get(resource)

    def apply_to_instances(self, instances: List[Resource],
                           target_store: Optional[TripleStore] = None,
                           strict: bool = False) -> MappingReport:
        """Rewrite the given instances' triples under the rule table.

        - conformance values (``slim:conformsTo``) are translated;
        - property keys with a rule are translated;
        - all other triples are copied through unchanged;
        - instance ids are preserved (the mapping changes vocabulary,
          not identity).

        Unmapped conformance targets and property keys are reported; with
        ``strict=True`` they raise :class:`MappingError` instead.
        Results go to *target_store* (default: the source store itself).
        """
        store = self._trim.store
        destination = target_store if target_store is not None else store
        rewritten = 0
        unmapped: List[Resource] = []

        for instance in instances:
            for triple_ in store.select(subject=instance):
                new_property = self._rules.get(triple_.property, triple_.property)
                new_value = triple_.value
                if triple_.property == v.CONFORMS_TO and isinstance(new_value, Resource):
                    translated = self._rules.get(new_value)
                    if translated is None:
                        unmapped.append(new_value)
                        if strict:
                            raise MappingError(
                                f"no rule for conformance target {new_value}")
                    else:
                        new_value = translated
                elif triple_.property not in self._rules and \
                        triple_.property not in (v.TYPE, v.CONFORMS_TO,
                                                 v.NAME, v.MARK_ID):
                    # A data property without a rule: report once per key.
                    if triple_.property not in unmapped:
                        unmapped.append(triple_.property)
                    if strict:
                        raise MappingError(
                            f"no rule for property {triple_.property}")
                if destination.add(Triple(triple_.subject, new_property, new_value)):
                    rewritten += 1
        return MappingReport(rewritten, unmapped)


class ModelMapping(_RuleMapping):
    """Constructs and connectors of one model mapped onto another."""

    def __init__(self, trim: TrimManager, source: ModelDefinition,
                 target: ModelDefinition) -> None:
        super().__init__(trim)
        self.source = source
        self.target = target

    def map_construct(self, source_name: str, target_name: str) -> None:
        """Rule: source model's construct -> target model's construct."""
        self.add_rule(self.source.construct(source_name).resource,
                      self.target.construct(target_name).resource)

    def map_connector(self, source_name: str, target_name: str) -> None:
        """Rule: source model's connector -> target model's connector."""
        self.add_rule(self.source.connector(source_name).resource,
                      self.target.connector(target_name).resource)

    def missing_constructs(self) -> List[str]:
        """Names of source constructs without a rule (coverage check)."""
        return [c.name for c in self.source.constructs()
                if c.resource not in self._rules]


class SchemaMapping(_RuleMapping):
    """Elements of one schema mapped onto another schema's elements.

    When a *model_mapping* is supplied its property rules (connectors,
    literal constructs) are inherited, so instance data moves both its
    conformance and its vocabulary in one application.
    """

    def __init__(self, trim: TrimManager, source: SchemaDefinition,
                 target: SchemaDefinition,
                 model_mapping: Optional[ModelMapping] = None) -> None:
        super().__init__(trim)
        self.source = source
        self.target = target
        if model_mapping is not None:
            for src, dst in model_mapping.rules.items():
                self.add_rule(src, dst)

    def map_element(self, source_name: str, target_name: str) -> None:
        """Rule: source schema element -> target schema element."""
        self.add_rule(self.source.element(source_name).resource,
                      self.target.element(target_name).resource)

    def apply(self, target_store: Optional[TripleStore] = None,
              strict: bool = False) -> MappingReport:
        """Rewrite every instance of the source schema's elements."""
        from repro.metamodel.instance import InstanceSpace
        space = InstanceSpace(self._trim)
        instances: List[Resource] = []
        for element in self.source.elements():
            instances.extend(h.resource for h in space.instances_of(element))
        return self.apply_to_instances(instances, target_store, strict)


class SchemaToModelMapping(_RuleMapping):
    """Schema elements mapped directly onto a (different) model's constructs."""

    def __init__(self, trim: TrimManager, source: SchemaDefinition,
                 target: ModelDefinition) -> None:
        super().__init__(trim)
        self.source = source
        self.target = target

    def map_element_to_construct(self, element_name: str,
                                 construct_name: str) -> None:
        """Rule: schema element -> model construct."""
        self.add_rule(self.source.element(element_name).resource,
                      self.target.construct(construct_name).resource)

    def apply(self, target_store: Optional[TripleStore] = None,
              strict: bool = False) -> MappingReport:
        """Rewrite every instance of the source schema's elements."""
        from repro.metamodel.instance import InstanceSpace
        space = InstanceSpace(self._trim)
        instances: List[Resource] = []
        for element in self.source.elements():
            instances.extend(h.resource for h in space.instances_of(element))
        return self.apply_to_instances(instances, target_store, strict)

"""Instance-level data: objects conforming (eventually) to schema elements.

The paper stresses "schema-later" entry: *"we permit users to add
information elements without prior definition of their meaning or their
grouping"*.  An :class:`InstanceSpace` therefore lets you create instances
with no declared schema element and attach conformance afterwards.

Instances carry:

- literal values keyed by a literal-construct (or ad-hoc property) resource,
- links to other instances keyed by a connector (or ad-hoc property)
  resource,
- optionally a ``slim:markId`` literal when the instance stands for a mark
  (instances of a mark construct).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ModelError
from repro.metamodel import vocabulary as v
from repro.metamodel.schema import SchemaElement
from repro.triples.triple import Literal, LiteralValue, Resource
from repro.triples.trim import TrimManager

#: A property key: a defined construct/connector handle's resource, or any
#: ad-hoc resource (schema-later data has no definitions yet).
PropertyKey = Resource


@dataclass(frozen=True)
class InstanceHandle:
    """A data-level object stored as triples."""

    resource: Resource

    @property
    def id(self) -> str:
        """The instance's stable identifier (its resource uri)."""
        return self.resource.uri


class InstanceSpace:
    """Create, link, and read instances inside a TRIM store."""

    def __init__(self, trim: TrimManager) -> None:
        self._trim = trim

    # -- creation / conformance --------------------------------------------------

    def create(self, conforms_to: Optional[SchemaElement] = None) -> InstanceHandle:
        """Create an instance, optionally conforming to a schema element."""
        resource = self._trim.new_resource("instance")
        self._trim.create(resource, v.TYPE, v.INSTANCE)
        if conforms_to is not None:
            self._trim.create(resource, v.CONFORMS_TO, conforms_to.resource)
        return InstanceHandle(resource)

    def declare_conformance(self, instance: InstanceHandle,
                            element: SchemaElement) -> None:
        """Attach (schema-later) or re-point an instance's schema element."""
        self._trim.store.remove_matching(subject=instance.resource,
                                         property=v.CONFORMS_TO)
        self._trim.create(instance.resource, v.CONFORMS_TO, element.resource)

    def conformance_of(self, instance: InstanceHandle) -> Optional[Resource]:
        """The schema element this instance conforms to, if declared."""
        node = self._trim.store.value_of(instance.resource, v.CONFORMS_TO)
        return node if isinstance(node, Resource) else None

    def delete(self, instance: InstanceHandle) -> int:
        """Remove the instance: its own triples and links pointing at it."""
        removed = self._trim.remove_about(instance.resource)
        removed += self._trim.store.remove_matching(value=instance.resource)
        return removed

    # -- literal values -----------------------------------------------------------

    def set_value(self, instance: InstanceHandle, key: PropertyKey,
                  value: LiteralValue) -> None:
        """Set (replacing) a single-valued literal property."""
        self._trim.store.remove_matching(subject=instance.resource, property=key)
        self._trim.create(instance.resource, key, Literal(value))

    def add_value(self, instance: InstanceHandle, key: PropertyKey,
                  value: LiteralValue) -> None:
        """Add one value of a multi-valued literal property."""
        self._trim.create(instance.resource, key, Literal(value))

    def value(self, instance: InstanceHandle,
              key: PropertyKey) -> Optional[LiteralValue]:
        """Read a single-valued literal property (``None`` when unset)."""
        return self._trim.store.literal_of(instance.resource, key)

    def values(self, instance: InstanceHandle,
               key: PropertyKey) -> List[LiteralValue]:
        """Read every literal value of a property."""
        return [node.value for node in
                self._trim.store.values_of(instance.resource, key)
                if isinstance(node, Literal)]

    # -- links ---------------------------------------------------------------------

    def link(self, source: InstanceHandle, key: PropertyKey,
             target: InstanceHandle) -> None:
        """Connect two instances via *key* (a connector resource)."""
        self._trim.create(source.resource, key, target.resource)

    def unlink(self, source: InstanceHandle, key: PropertyKey,
               target: InstanceHandle) -> bool:
        """Remove one link; returns whether it existed."""
        return self._trim.store.remove_matching(
            subject=source.resource, property=key,
            value=target.resource) > 0

    def linked(self, source: InstanceHandle,
               key: PropertyKey) -> List[InstanceHandle]:
        """Instances reachable from *source* via *key*, in link order."""
        return [InstanceHandle(node) for node in
                self._trim.store.values_of(source.resource, key)
                if isinstance(node, Resource)]

    def linking(self, target: InstanceHandle,
                key: PropertyKey) -> List[InstanceHandle]:
        """Instances that link *to* target via *key* (reverse navigation)."""
        return [InstanceHandle(t.subject) for t in
                self._trim.select(prop=key, value=target.resource)]

    # -- marks ----------------------------------------------------------------------

    def set_mark_id(self, instance: InstanceHandle, mark_id: str) -> None:
        """Record the mark id carried by a mark-construct instance."""
        if not mark_id:
            raise ModelError("mark id must be non-empty")
        self._trim.store.remove_matching(subject=instance.resource,
                                         property=v.MARK_ID)
        self._trim.create(instance.resource, v.MARK_ID, mark_id)

    def mark_id(self, instance: InstanceHandle) -> Optional[str]:
        """The mark id carried by this instance, if any."""
        value = self._trim.store.literal_of(instance.resource, v.MARK_ID)
        return None if value is None else str(value)

    # -- enumeration ------------------------------------------------------------------

    def all_instances(self) -> List[InstanceHandle]:
        """Every instance in the store, in creation order."""
        return [InstanceHandle(t.subject)
                for t in self._trim.select(prop=v.TYPE, value=v.INSTANCE)]

    def instances_of(self, element: SchemaElement) -> List[InstanceHandle]:
        """Instances conforming to *element*."""
        return [InstanceHandle(t.subject)
                for t in self._trim.select(prop=v.CONFORMS_TO,
                                           value=element.resource)]

"""Conformance checking of instances against schemas and models.

The paper's systems check structure only when structure was declared —
"schema-later" means absence of declarations is never an error.  The
checker therefore validates exactly what *is* declared:

- an instance's schema element must exist and belong to a schema;
- literal values keyed by a literal construct must match its declared type;
- links keyed by a connector must respect the connector's endpoints
  (including generalization) and its cardinalities;
- instances of a mark construct must carry a ``slim:markId``.

``strict=True`` additionally flags ad-hoc properties (keys that are not
defined in the governing model) — useful when an application wants
schema-first discipline from the same store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConformanceError
from repro.metamodel import vocabulary as v
from repro.metamodel.instance import InstanceHandle, InstanceSpace
from repro.metamodel.model import ConnectorHandle, ConstructHandle, ModelDefinition
from repro.metamodel.schema import SchemaDefinition
from repro.triples.triple import Literal, Resource
from repro.triples.trim import TrimManager

#: Properties the metamodel itself uses; never treated as ad-hoc data.
_STRUCTURAL_PROPERTIES = {v.TYPE, v.CONFORMS_TO, v.NAME, v.MARK_ID}

_PYTHON_TYPE_TAGS = {
    "string": str,
    "integer": int,
    "float": float,
    "boolean": bool,
}


@dataclass(frozen=True)
class Violation:
    """One conformance failure."""

    code: str          # e.g. 'literal-type', 'cardinality-max'
    subject: Resource  # the offending instance
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.subject}: {self.message}"


@dataclass
class ConformanceReport:
    """The outcome of a conformance check."""

    violations: List[Violation]
    checked_instances: int

    @property
    def ok(self) -> bool:
        """Whether the check found no violations."""
        return not self.violations

    def raise_if_failed(self) -> None:
        """Raise :class:`ConformanceError` listing every violation."""
        if self.violations:
            summary = "; ".join(str(violation) for violation in self.violations)
            raise ConformanceError(
                f"{len(self.violations)} conformance violation(s): {summary}")


class ConformanceChecker:
    """Validate the instances of one schema against its model."""

    def __init__(self, trim: TrimManager, schema: SchemaDefinition,
                 model: ModelDefinition, strict: bool = False) -> None:
        self._trim = trim
        self._schema = schema
        self._model = model
        self._strict = strict
        self._space = InstanceSpace(trim)

    def check(self) -> ConformanceReport:
        """Check every instance conforming to an element of the schema."""
        violations: List[Violation] = []
        checked = 0
        element_constructs = self._element_constructs()
        connectors = self._model.connectors()
        literal_constructs = {
            c.resource: c for c in self._model.constructs() if c.is_literal}
        construct_index = {c.resource: c for c in self._model.constructs()}

        for element in self._schema.elements():
            construct = element_constructs.get(element.resource)
            for instance in self._space.instances_of(element):
                checked += 1
                if construct is None:
                    violations.append(Violation(
                        "dangling-conformance", instance.resource,
                        f"element {element.name!r} conforms to no model construct"))
                    continue
                violations.extend(self._check_instance(
                    instance, construct, connectors,
                    literal_constructs, construct_index, element_constructs))
        return ConformanceReport(violations, checked)

    # -- internals -----------------------------------------------------------------

    def _element_constructs(self) -> Dict[Resource, Optional[ConstructHandle]]:
        """Map schema-element resource -> conforming construct (or None)."""
        index: Dict[Resource, Optional[ConstructHandle]] = {}
        constructs = {c.resource: c for c in self._model.constructs()}
        for element in self._schema.elements():
            if element.conforms_to is None:
                index[element.resource] = None
            else:
                index[element.resource] = constructs.get(element.conforms_to)
        return index

    def _check_instance(self, instance: InstanceHandle,
                        construct: ConstructHandle,
                        connectors: List[ConnectorHandle],
                        literal_constructs: Dict[Resource, ConstructHandle],
                        construct_index: Dict[Resource, ConstructHandle],
                        element_constructs) -> List[Violation]:
        violations: List[Violation] = []
        store = self._trim.store
        triples = store.select(subject=instance.resource)

        # Mark constructs must carry a mark id.
        if construct.is_mark and self._space.mark_id(instance) is None:
            violations.append(Violation(
                "missing-mark-id", instance.resource,
                f"instance of mark construct {construct.name!r} has no markId"))

        connector_index = {c.resource: c for c in connectors}
        usage_counts: Dict[Resource, int] = {}

        for triple_ in triples:
            key = triple_.property
            if key in _STRUCTURAL_PROPERTIES:
                continue
            if key in literal_constructs:
                declared = self._model.literal_type_of(literal_constructs[key])
                if declared is not None and isinstance(triple_.value, Literal):
                    expected = _PYTHON_TYPE_TAGS[declared]
                    actual = triple_.value.value
                    # bool is an int subclass: demand exact type identity.
                    if type(actual) is not expected:
                        violations.append(Violation(
                            "literal-type", instance.resource,
                            f"{literal_constructs[key].name!r} expects "
                            f"{declared}, got {type(actual).__name__}"))
                if isinstance(triple_.value, Resource):
                    violations.append(Violation(
                        "literal-type", instance.resource,
                        f"{literal_constructs[key].name!r} holds a resource"))
                usage_counts[key] = usage_counts.get(key, 0) + 1
            elif key in connector_index:
                connector = connector_index[key]
                usage_counts[key] = usage_counts.get(key, 0) + 1
                violations.extend(self._check_link(
                    instance, connector, triple_.value,
                    construct, construct_index, element_constructs))
            elif self._strict:
                violations.append(Violation(
                    "adhoc-property", instance.resource,
                    f"undeclared property {key} used in strict mode"))

        # Cardinalities: every connector whose source covers this construct.
        for connector in connectors:
            source_construct = construct_index.get(connector.source)
            if source_construct is None:
                continue
            if not self._model.is_kind_of(construct, source_construct):
                continue
            count = usage_counts.get(connector.resource, 0)
            if count < connector.min_card:
                violations.append(Violation(
                    "cardinality-min", instance.resource,
                    f"connector {connector.name!r} needs >= {connector.min_card}"
                    f" link(s), found {count}"))
            if connector.max_card is not None and count > connector.max_card:
                violations.append(Violation(
                    "cardinality-max", instance.resource,
                    f"connector {connector.name!r} allows <= {connector.max_card}"
                    f" link(s), found {count}"))
        return violations

    def _check_link(self, instance: InstanceHandle,
                    connector: ConnectorHandle, value,
                    source_construct: ConstructHandle,
                    construct_index: Dict[Resource, ConstructHandle],
                    element_constructs) -> List[Violation]:
        violations: List[Violation] = []
        declared_source = construct_index.get(connector.source)
        if declared_source is not None and not self._model.is_kind_of(
                source_construct, declared_source):
            violations.append(Violation(
                "source-conformance", instance.resource,
                f"{source_construct.name!r} cannot use connector "
                f"{connector.name!r} (source is {declared_source.name!r})"))
        if not isinstance(value, Resource):
            violations.append(Violation(
                "target-conformance", instance.resource,
                f"connector {connector.name!r} must link to an instance"))
            return violations
        target_element = self._trim.store.value_of(value, v.CONFORMS_TO)
        target_construct = None
        if isinstance(target_element, Resource):
            target_construct = element_constructs.get(target_element)
        declared_target = construct_index.get(connector.target)
        if target_construct is None:
            violations.append(Violation(
                "target-conformance", instance.resource,
                f"link target {value} of {connector.name!r} has no "
                f"(resolvable) conformance"))
        elif declared_target is not None and not self._model.is_kind_of(
                target_construct, declared_target):
            violations.append(Violation(
                "target-conformance", instance.resource,
                f"{connector.name!r} expects {declared_target.name!r}, "
                f"target conforms to {target_construct.name!r}"))
        return violations

"""The metamodel vocabulary — resource names used at the model level.

Section 4.3: *"Currently, the metamodel contains only a subset of
primitives: constructs, which define a unit of structure; literal
constructs for primitive type definitions; mark constructs for delineating
marks; connectors, which describe basic relationships; conformance
connectors for schema-instance relationships; and generalization
connectors for specialization relationships."*

Every name below is a :class:`~repro.triples.triple.Resource` in the
``slim:`` namespace.  Model definitions, schemas and instances are all
plain triples that use these names, so one TRIM store can hold any number
of superimposed models side by side.
"""

from __future__ import annotations

from repro.triples.namespaces import RDF, RDFS, SLIM

# -- metamodel kinds (values of rdf:type at the model level) ------------------

#: A unit of structure (e.g. Bundle, Scrap, Table, Class).
CONSTRUCT = SLIM["Construct"]
#: A primitive-typed attribute definition (e.g. bundleName : String).
LITERAL_CONSTRUCT = SLIM["LiteralConstruct"]
#: A construct whose instances delineate marks (e.g. MarkHandle).
MARK_CONSTRUCT = SLIM["MarkConstruct"]
#: A basic relationship between two constructs.
CONNECTOR = SLIM["Connector"]
#: The schema-instance relationship kind.
CONFORMANCE_CONNECTOR = SLIM["ConformanceConnector"]
#: The specialization relationship kind.
GENERALIZATION_CONNECTOR = SLIM["GeneralizationConnector"]

#: A superimposed model as a whole (the subject that owns constructs).
MODEL = SLIM["Model"]
#: A schema defined against some model.
SCHEMA = SLIM["Schema"]
#: An instance (data-level object).
INSTANCE = SLIM["Instance"]

# -- properties ----------------------------------------------------------------

#: rdf:type — the kind of a resource.
TYPE = RDF["type"]
#: Human-readable name of a model element.
NAME = SLIM["name"]
#: Links a construct/connector to the model that defines it.
IN_MODEL = SLIM["inModel"]
#: Links a schema to the model it is defined against.
OF_MODEL = SLIM["ofModel"]
#: Links a schema element to the schema that owns it.
IN_SCHEMA = SLIM["inSchema"]

#: Connector endpoints and cardinalities.
SOURCE = SLIM["source"]
TARGET = SLIM["target"]
MIN_CARD = SLIM["minCard"]
MAX_CARD = SLIM["maxCard"]

#: The declared primitive type of a literal construct
#: (one of 'string' | 'integer' | 'float' | 'boolean').
LITERAL_TYPE = SLIM["literalType"]

#: The conformance connector property: schema element -> construct,
#: and instance -> schema element.  ("schema-instance relationships")
CONFORMS_TO = SLIM["conformsTo"]

#: The generalization connector property: sub -> super.
SPECIALIZES = SLIM["specializes"]

#: The mark a mark-construct instance carries (value = mark id literal).
MARK_ID = SLIM["markId"]

# -- RDFS names used when rendering the metamodel (Section 4.3) -----------------

RDFS_CLASS = RDFS["Class"]
RDFS_SUBCLASS_OF = RDFS["subClassOf"]
RDFS_DOMAIN = RDFS["domain"]
RDFS_RANGE = RDFS["range"]
RDFS_LITERAL = RDFS["Literal"]
RDF_PROPERTY = RDF["Property"]
RDFS_LABEL = RDFS["label"]

#: Literal type tags a LiteralConstruct may declare.
LITERAL_TYPES = ("string", "integer", "float", "boolean")

"""Schema-level definitions: schemas conforming to superimposed models.

A schema names the elements an application's data uses (e.g. a
``PatientBundle``) and connects each element to the model construct it
conforms to via a *conformance connector*.  Schemas can also be defined
without a model and attached later — the paper's "flexible in which is
defined first".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ModelError, UnknownConstructError
from repro.metamodel import vocabulary as v
from repro.metamodel.model import ConstructHandle, ModelDefinition
from repro.triples.triple import Resource
from repro.triples.trim import TrimManager


@dataclass(frozen=True)
class SchemaElement:
    """An element of a schema, optionally conforming to a model construct."""

    resource: Resource
    schema: Resource
    name: str
    conforms_to: Optional[Resource]


class SchemaDefinition:
    """Create and inspect one schema inside a TRIM store."""

    def __init__(self, trim: TrimManager, resource: Resource, name: str) -> None:
        self._trim = trim
        self.resource = resource
        self.name = name

    @classmethod
    def define(cls, trim: TrimManager, name: str,
               model: Optional[ModelDefinition] = None) -> "SchemaDefinition":
        """Create a schema, optionally declaring the model it is against."""
        resource = trim.new_resource("schema")
        trim.create(resource, v.TYPE, v.SCHEMA)
        trim.create(resource, v.NAME, name)
        if model is not None:
            trim.create(resource, v.OF_MODEL, model.resource)
        return cls(trim, resource, name)

    @classmethod
    def attach(cls, trim: TrimManager, resource: Resource) -> "SchemaDefinition":
        """Wrap an existing schema resource."""
        name = trim.store.literal_of(resource, v.NAME)
        if name is None or trim.store.value_of(resource, v.TYPE) != v.SCHEMA:
            raise ModelError(f"{resource} is not a slim:Schema")
        return cls(trim, resource, str(name))

    # -- model linkage -----------------------------------------------------------

    def model_resource(self) -> Optional[Resource]:
        """The model this schema is declared against, if any."""
        node = self._trim.store.value_of(self.resource, v.OF_MODEL)
        return node if isinstance(node, Resource) else None

    def set_model(self, model: ModelDefinition) -> None:
        """Attach (schema-later) or re-point the schema's model."""
        self._trim.store.remove_matching(subject=self.resource,
                                         property=v.OF_MODEL)
        self._trim.create(self.resource, v.OF_MODEL, model.resource)

    # -- elements -----------------------------------------------------------------

    def add_element(self, name: str,
                    conforms_to: Optional[ConstructHandle] = None) -> SchemaElement:
        """Define a schema element, optionally conforming to a construct.

        Conformance may be declared later with :meth:`declare_conformance` —
        "schema-later" applies within the schema level too.
        """
        if self.find_element(name) is not None:
            raise ModelError(f"schema {self.name!r} already has element {name!r}")
        resource = self._trim.new_resource("element")
        self._trim.create(resource, v.IN_SCHEMA, self.resource)
        self._trim.create(resource, v.NAME, name)
        construct = None
        if conforms_to is not None:
            self._trim.create(resource, v.CONFORMS_TO, conforms_to.resource)
            construct = conforms_to.resource
        return SchemaElement(resource, self.resource, name, construct)

    def declare_conformance(self, element: SchemaElement,
                            construct: ConstructHandle) -> SchemaElement:
        """Attach a conformance connector to an existing element."""
        self._trim.store.remove_matching(subject=element.resource,
                                         property=v.CONFORMS_TO)
        self._trim.create(element.resource, v.CONFORMS_TO, construct.resource)
        return SchemaElement(element.resource, self.resource,
                             element.name, construct.resource)

    def elements(self) -> List[SchemaElement]:
        """Every element of this schema."""
        result = []
        for t in self._trim.select(prop=v.IN_SCHEMA, value=self.resource):
            result.append(self._element_from(t.subject))
        return result

    def find_element(self, name: str) -> Optional[SchemaElement]:
        """Look up an element by name; ``None`` when absent."""
        for element in self.elements():
            if element.name == name:
                return element
        return None

    def element(self, name: str) -> SchemaElement:
        """Look up an element by name; raise when absent."""
        found = self.find_element(name)
        if found is None:
            raise UnknownConstructError(
                f"schema {self.name!r} has no element {name!r}")
        return found

    def _element_from(self, resource: Resource) -> SchemaElement:
        store = self._trim.store
        name = store.literal_of(resource, v.NAME)
        if name is None:
            raise ModelError(f"{resource} is not a well-formed schema element")
        conforms = store.value_of(resource, v.CONFORMS_TO)
        return SchemaElement(resource, self.resource, str(name),
                             conforms if isinstance(conforms, Resource) else None)


def list_schemas(trim: TrimManager) -> List[SchemaDefinition]:
    """Every schema defined in *trim*'s store."""
    return [SchemaDefinition.attach(trim, t.subject)
            for t in trim.select(prop=v.TYPE, value=v.SCHEMA)]

"""Rendering the metamodel and model definitions as RDF Schema.

Section 4.3: *"We represent the metamodel elements using RDF Schema."*
This module emits the standard-vocabulary view of our triples:

- the metamodel kinds themselves become ``rdfs:Class`` es, with
  ``LiteralConstruct``/``MarkConstruct`` declared as subclasses of
  ``Construct``;
- each construct of a model becomes an ``rdfs:Class`` labelled with its
  name;
- each connector becomes an ``rdf:Property`` with ``rdfs:domain`` and
  ``rdfs:range`` at its endpoint constructs;
- each literal construct additionally becomes an ``rdf:Property`` whose
  range is ``rdfs:Literal``;
- generalizations become ``rdfs:subClassOf``.

The output is an ordinary :class:`~repro.triples.store.TripleStore`, so it
can be persisted with the same XML serialization — this is the
serialization-based interoperability benefit the paper cites.
"""

from __future__ import annotations

from repro.metamodel import vocabulary as v
from repro.metamodel.model import ModelDefinition
from repro.triples.store import TripleStore
from repro.triples.triple import Triple, triple


def metamodel_as_rdfs() -> TripleStore:
    """The metamodel's own kinds rendered as an RDFS class hierarchy."""
    store = TripleStore()
    for kind in (v.CONSTRUCT, v.LITERAL_CONSTRUCT, v.MARK_CONSTRUCT,
                 v.CONNECTOR, v.CONFORMANCE_CONNECTOR,
                 v.GENERALIZATION_CONNECTOR, v.MODEL, v.SCHEMA, v.INSTANCE):
        store.add(Triple(kind, v.TYPE, v.RDFS_CLASS))
    # Specialized construct kinds are constructs.
    store.add(Triple(v.LITERAL_CONSTRUCT, v.RDFS_SUBCLASS_OF, v.CONSTRUCT))
    store.add(Triple(v.MARK_CONSTRUCT, v.RDFS_SUBCLASS_OF, v.CONSTRUCT))
    # Specialized connector kinds are connectors.
    store.add(Triple(v.CONFORMANCE_CONNECTOR, v.RDFS_SUBCLASS_OF, v.CONNECTOR))
    store.add(Triple(v.GENERALIZATION_CONNECTOR, v.RDFS_SUBCLASS_OF, v.CONNECTOR))
    return store


def model_as_rdfs(model: ModelDefinition) -> TripleStore:
    """One model's constructs/connectors rendered in RDFS vocabulary."""
    store = metamodel_as_rdfs()
    for construct in model.constructs():
        store.add(Triple(construct.resource, v.TYPE, v.RDFS_CLASS))
        store.add(triple(construct.resource, v.RDFS_LABEL, construct.name))
        if construct.is_literal:
            store.add(Triple(construct.resource, v.TYPE, v.RDF_PROPERTY))
            store.add(Triple(construct.resource, v.RDFS_RANGE, v.RDFS_LITERAL))
        for super_ in model.supers_of(construct):
            store.add(Triple(construct.resource, v.RDFS_SUBCLASS_OF,
                             super_.resource))
    for connector in model.connectors():
        store.add(Triple(connector.resource, v.TYPE, v.RDF_PROPERTY))
        store.add(triple(connector.resource, v.RDFS_LABEL, connector.name))
        store.add(Triple(connector.resource, v.RDFS_DOMAIN, connector.source))
        store.add(Triple(connector.resource, v.RDFS_RANGE, connector.target))
    return store

"""The SLIM metamodel (paper Section 4.3).

A basic set of abstractions — constructs, literal constructs, mark
constructs, connectors, conformance connectors, generalization connectors —
with which superimposed data models are *described*, and under which model,
schema, and instance data are all stored uniformly as triples.

- :class:`ModelDefinition` / :class:`SchemaDefinition` / :class:`InstanceSpace`
  — the three representation levels
- :class:`ConformanceChecker` — validates declared structure only
  ("schema-later": undeclared structure is never an error)
- :class:`ModelMapping`, :class:`SchemaMapping`, :class:`SchemaToModelMapping`
  — cross-model/schema data movement
- :func:`model_as_rdfs`, :func:`metamodel_as_rdfs` — the RDF-Schema rendering
"""

from repro.metamodel.builtin_models import (define_all, define_rdf_model,
                                            define_topic_map_model,
                                            define_xlink_model)
from repro.metamodel.instance import InstanceHandle, InstanceSpace
from repro.metamodel.mapping import (MappingReport, ModelMapping,
                                     SchemaMapping, SchemaToModelMapping)
from repro.metamodel.model import (ConnectorHandle, ConstructHandle,
                                   ModelDefinition, list_models)
from repro.metamodel.rdfs import metamodel_as_rdfs, model_as_rdfs
from repro.metamodel.schema import SchemaDefinition, SchemaElement, list_schemas
from repro.metamodel.validation import (ConformanceChecker, ConformanceReport,
                                        Violation)

__all__ = [
    "define_all",
    "define_rdf_model",
    "define_topic_map_model",
    "define_xlink_model",
    "InstanceHandle",
    "InstanceSpace",
    "MappingReport",
    "ModelMapping",
    "SchemaMapping",
    "SchemaToModelMapping",
    "ConnectorHandle",
    "ConstructHandle",
    "ModelDefinition",
    "list_models",
    "metamodel_as_rdfs",
    "model_as_rdfs",
    "SchemaDefinition",
    "SchemaElement",
    "list_schemas",
    "ConformanceChecker",
    "ConformanceReport",
    "Violation",
]

"""Built-in superimposed model definitions.

Section 1: *"we see models for information emerging that are inherently
superimposed including topic maps, RDF, and XLink."*  Section 4.3 claims
the metamodel can describe them.  This module backs that claim with
executable definitions: each function writes one of those models into a
TRIM store using only the metamodel's primitives, and the test suite
validates instances against them.

These are intentionally the *structural cores* of the standards —
the constructs and connectors their data models rest on — not full
implementations of the specifications.
"""

from __future__ import annotations

from repro.metamodel.model import ModelDefinition
from repro.triples.trim import TrimManager


def define_topic_map_model(trim: TrimManager) -> ModelDefinition:
    """ISO 13250 Topic Maps, structurally: topics, associations,
    occurrences, with names and scoped roles."""
    model = ModelDefinition.define(trim, "TopicMaps")
    topic = model.add_construct("Topic")
    association = model.add_construct("Association")
    occurrence = model.add_construct("Occurrence")
    role = model.add_construct("AssociationRole")
    model.add_literal_construct("topicName", "string")
    model.add_literal_construct("occurrenceType", "string")
    resource_ref = model.add_mark_construct("ResourceRef")

    model.add_connector("memberRole", association, role, min_card=2)
    model.add_connector("rolePlayer", role, topic, min_card=1, max_card=1)
    model.add_connector("hasOccurrence", topic, occurrence)
    model.add_connector("occurrenceResource", occurrence, resource_ref,
                        min_card=1, max_card=1)
    return model


def define_rdf_model(trim: TrimManager) -> ModelDefinition:
    """The RDF data model, structurally: resources, properties,
    statements (reified, so statements are first-class constructs)."""
    model = ModelDefinition.define(trim, "RDF")
    resource = model.add_construct("RdfResource")
    statement = model.add_construct("Statement")
    property_ = model.add_construct("Property")
    model.add_literal_construct("literalValue", "string")
    model.add_literal_construct("uri", "string")

    model.add_connector("subject", statement, resource,
                        min_card=1, max_card=1)
    model.add_connector("predicate", statement, property_,
                        min_card=1, max_card=1)
    model.add_connector("object", statement, resource,
                        min_card=0, max_card=1)
    # Property is itself a resource (generalization connector).
    model.add_generalization(property_, resource)
    return model


def define_xlink_model(trim: TrimManager) -> ModelDefinition:
    """XLink, structurally: extended links over locators and arcs; a
    simple link specializes the extended link."""
    model = ModelDefinition.define(trim, "XLink")
    extended = model.add_construct("ExtendedLink")
    simple = model.add_construct("SimpleLink")
    locator = model.add_construct("Locator")
    arc = model.add_construct("Arc")
    model.add_literal_construct("linkRole", "string")
    model.add_literal_construct("arcRole", "string")
    model.add_literal_construct("linkTitle", "string")
    href = model.add_mark_construct("Href")

    model.add_connector("hasLocator", extended, locator, min_card=1)
    model.add_connector("hasArc", extended, arc)
    model.add_connector("locatorHref", locator, href,
                        min_card=1, max_card=1)
    model.add_connector("arcFrom", arc, locator, min_card=1, max_card=1)
    model.add_connector("arcTo", arc, locator, min_card=1, max_card=1)
    model.add_generalization(simple, extended)
    return model


def define_all(trim: TrimManager) -> "list[ModelDefinition]":
    """All three built-in models in one store (plus whatever was there)."""
    return [define_topic_map_model(trim), define_rdf_model(trim),
            define_xlink_model(trim)]

"""The hand-written SLIMPad DMI (Fig. 10).

*"For SLIMPad, we generated the application data structures and DMI
manually, based on the application model."*  This class is that manual
DMI: its method surface follows Fig. 10 (``Create_SlimPad``,
``Update_padName``, ``Update_rootBundle``, …, ``save``, ``load``) and is
implemented over the same :class:`~repro.dmi.runtime.DmiRuntime` the
generated DMIs use — tests assert the two produce identical triples.

Extension operations for the Section 6 features (annotations, links,
graphics) live at the bottom, clearly separated.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from repro.errors import DmiError, SlimPadError, StaleObjectError
from repro.dmi.runtime import DmiRuntime, EntityObject
from repro.slimpad.model import EXTENDED_BUNDLE_SCRAP_SPEC
from repro.triples.trim import TrimManager
from repro.util.coordinates import Coordinate


def _as_float(name: str, value) -> float:
    """Coerce numeric extents (int or float) to float; typed error otherwise."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DmiError(f"{name} must be a number, got {type(value).__name__}")
    return float(value)


class SlimPadDMI:
    """Typed operations on SLIMPad's application data (Fig. 10)."""

    def __init__(self, trim: Optional[TrimManager] = None,
                 shards: int = 1) -> None:
        self._runtime = DmiRuntime(EXTENDED_BUNDLE_SCRAP_SPEC, trim,
                                   shards=shards)

    @property
    def runtime(self) -> DmiRuntime:
        """The underlying runtime (for layout queries and benches)."""
        return self._runtime

    # -- Create_* -----------------------------------------------------------------

    def Create_SlimPad(self, padName: str,
                       rootBundle: Optional[EntityObject] = None) -> EntityObject:
        """Create a SlimPad, optionally designating its root bundle."""
        pad = self._runtime.create("SlimPad", padName=padName)
        if rootBundle is not None:
            self._runtime.set_ref(pad, "rootBundle", rootBundle)
        return pad

    def Create_Bundle(self, bundleName: str = "",
                      bundlePos: Optional[Coordinate] = None,
                      bundleWidth: float = 200.0,
                      bundleHeight: float = 120.0) -> EntityObject:
        """Create a Bundle with a name, position and extent."""
        return self._runtime.create(
            "Bundle", bundleName=bundleName,
            bundlePos=bundlePos if bundlePos is not None else Coordinate(0, 0),
            bundleWidth=_as_float("bundleWidth", bundleWidth),
            bundleHeight=_as_float("bundleHeight", bundleHeight))

    def Create_Scrap(self, scrapName: str = "",
                     scrapPos: Optional[Coordinate] = None) -> EntityObject:
        """Create a Scrap with a label and position (marks added after)."""
        return self._runtime.create(
            "Scrap", scrapName=scrapName,
            scrapPos=scrapPos if scrapPos is not None else Coordinate(0, 0))

    def Create_MarkHandle(self, markId: str) -> EntityObject:
        """Create a MarkHandle referencing a Mark Manager mark by id."""
        return self._runtime.create("MarkHandle", markId=markId)

    def Create_Scraps(self, bundle: EntityObject,
                      scraps: Iterable[Mapping[str, object]]
                      ) -> List[EntityObject]:
        """Create many Scraps and place them all into *bundle* at once.

        The batched counterpart of ``Create_Scrap`` + ``Add_bundleContent``
        per scrap: every scrap's triples and its containment link are
        written in one batch session through the store's bulk path and,
        under durable mode, committed as a single WAL group.  Each spec
        mapping may carry ``scrapName`` and ``scrapPos`` (both optional).
        An error anywhere creates nothing.
        """
        if bundle.entity_name != "Bundle":
            raise DmiError(
                f"Create_Scraps targets a Bundle, got {bundle.entity_name}")
        if not self._runtime.exists(bundle):
            raise StaleObjectError(f"Bundle {bundle.id} was deleted")
        specs = [dict(spec) for spec in scraps]
        for spec in specs:
            spec.setdefault("scrapName", "")
            spec.setdefault("scrapPos", Coordinate(0, 0))
        runtime = self._runtime
        content = runtime.property_resource("Bundle", "bundleContent")
        created: List[EntityObject] = []
        with runtime.trim.batch():
            # Each scrap was created in this very batch, so the per-link
            # liveness probes of add_ref (which would flush the bulk
            # path once per scrap) are provably redundant — link the
            # containment triples directly, in the same triple order the
            # per-op Create_Scrap + Add_bundleContent sequence produces.
            for spec in specs:
                scrap = runtime.create("Scrap", **spec)
                runtime.trim.create(bundle._resource, content,
                                    scrap._resource)
                created.append(scrap)
        runtime.trim.commit()
        return created

    # -- Update_* -----------------------------------------------------------------

    def Update_padName(self, pad: EntityObject, newPadName: str) -> None:
        """Rename a SlimPad."""
        self._runtime.update(pad, "padName", newPadName)

    def Update_rootBundle(self, pad: EntityObject,
                          newRootBundle: Optional[EntityObject]) -> None:
        """Re-point (or clear) a SlimPad's root bundle."""
        self._runtime.set_ref(pad, "rootBundle", newRootBundle)

    def Update_bundleName(self, bundle: EntityObject, newName: str) -> None:
        """Rename a Bundle."""
        self._runtime.update(bundle, "bundleName", newName)

    def Update_bundlePos(self, bundle: EntityObject,
                         newPos: Coordinate) -> None:
        """Move a Bundle."""
        self._runtime.update(bundle, "bundlePos", newPos)

    def Update_bundleWidth(self, bundle: EntityObject, width: float) -> None:
        """Resize a Bundle horizontally."""
        self._runtime.update(bundle, "bundleWidth", _as_float("bundleWidth", width))

    def Update_bundleHeight(self, bundle: EntityObject, height: float) -> None:
        """Resize a Bundle vertically."""
        self._runtime.update(bundle, "bundleHeight", _as_float("bundleHeight", height))

    def Update_scrapName(self, scrap: EntityObject, newName: str) -> None:
        """Rename a Scrap (its label may differ from the mark's content)."""
        self._runtime.update(scrap, "scrapName", newName)

    def Update_scrapPos(self, scrap: EntityObject, newPos: Coordinate) -> None:
        """Move a Scrap."""
        self._runtime.update(scrap, "scrapPos", newPos)

    # -- containment --------------------------------------------------------------

    def Add_bundleContent(self, bundle: EntityObject,
                          scrap: EntityObject) -> None:
        """Place a Scrap into a Bundle."""
        self._runtime.add_ref(bundle, "bundleContent", scrap)

    def Remove_bundleContent(self, bundle: EntityObject,
                             scrap: EntityObject) -> bool:
        """Take a Scrap out of a Bundle (without deleting it)."""
        return self._runtime.remove_ref(bundle, "bundleContent", scrap)

    def Add_nestedBundle(self, parent: EntityObject,
                         child: EntityObject) -> None:
        """Nest a Bundle inside another (bundles group into bundles)."""
        if parent == child:
            raise SlimPadError("a bundle cannot nest inside itself")
        if self._would_cycle(parent, child):
            raise SlimPadError("bundle nesting would create a cycle")
        self._runtime.add_ref(parent, "nestedBundle", child)

    def Remove_nestedBundle(self, parent: EntityObject,
                            child: EntityObject) -> bool:
        """Un-nest a Bundle (without deleting it)."""
        return self._runtime.remove_ref(parent, "nestedBundle", child)

    def Add_scrapMark(self, scrap: EntityObject,
                      handle: EntityObject) -> None:
        """Attach a MarkHandle to a Scrap (multiple marks supported)."""
        self._runtime.add_ref(scrap, "scrapMark", handle)

    # -- Delete_* ------------------------------------------------------------------

    def Delete_SlimPad(self, pad: EntityObject) -> int:
        """Delete a pad and everything it contains."""
        return self._runtime.delete(pad)

    def Delete_Bundle(self, bundle: EntityObject) -> int:
        """Delete a bundle, its scraps, and its nested bundles."""
        return self._runtime.delete(bundle)

    def Delete_Scrap(self, scrap: EntityObject) -> int:
        """Delete a scrap and its mark handles/annotations."""
        return self._runtime.delete(scrap)

    def Delete_MarkHandle(self, handle: EntityObject) -> int:
        """Delete one mark handle."""
        return self._runtime.delete(handle)

    # -- retrieval --------------------------------------------------------------------

    def All_SlimPad(self) -> List[EntityObject]:
        """Every stored pad."""
        return self._runtime.all("SlimPad")

    def Get_SlimPad(self, instance_id: str) -> EntityObject:
        """One pad by id."""
        return self._runtime.get("SlimPad", instance_id)

    # -- persistence ---------------------------------------------------------------------

    def save(self, fileName: str) -> None:
        """Persist all pads (triples through TRIM, per Fig. 9)."""
        self._runtime.save(fileName)

    def load(self, fileName: str) -> EntityObject:
        """Load pads from a file; returns the first pad."""
        self._runtime.load(fileName)
        pads = self.All_SlimPad()
        if not pads:
            raise SlimPadError(f"{fileName!r} holds no SlimPad")
        return pads[0]

    # -- Section 6 extensions ---------------------------------------------------------------

    def Annotate_Scrap(self, scrap: EntityObject, text: str,
                       author: str = "") -> EntityObject:
        """Attach an annotation to a scrap (clinician-requested feature)."""
        annotation = self._runtime.create("Annotation", annotationText=text,
                                          annotationAuthor=author)
        self._runtime.add_ref(scrap, "scrapAnnotation", annotation)
        return annotation

    def Remove_Annotation(self, scrap: EntityObject,
                          annotation: EntityObject) -> None:
        """Detach and delete an annotation."""
        self._runtime.remove_ref(scrap, "scrapAnnotation", annotation)
        self._runtime.delete(annotation)

    def Link_Scraps(self, source: EntityObject, target: EntityObject) -> None:
        """Create an explicit link between two scraps."""
        self._runtime.add_ref(source, "linkedTo", target)

    def Unlink_Scraps(self, source: EntityObject,
                      target: EntityObject) -> bool:
        """Remove an explicit scrap link."""
        return self._runtime.remove_ref(source, "linkedTo", target)

    def Create_Graphic(self, bundle: EntityObject, kind: str,
                       pos: Coordinate, width: float,
                       height: float) -> EntityObject:
        """Place a graphic element (e.g. a gridlet) inside a bundle."""
        graphic = self._runtime.create(
            "Graphic", graphicKind=kind, graphicPos=pos,
            graphicWidth=_as_float("graphicWidth", width),
            graphicHeight=_as_float("graphicHeight", height))
        self._runtime.add_ref(bundle, "bundleGraphic", graphic)
        return graphic

    # -- internals -----------------------------------------------------------------------------

    def _would_cycle(self, parent: EntityObject, child: EntityObject) -> bool:
        """True when *parent* is (transitively) nested inside *child*."""
        frontier = [child]
        seen = set()
        while frontier:
            bundle = frontier.pop()
            if bundle == parent:
                return True
            if bundle.id in seen:
                continue
            seen.add(bundle.id)
            frontier.extend(bundle.nestedBundle)
        return False

"""The SLIMPad application controller (Section 3, Fig. 4).

SLIMPad lets a user build structured digital bundles: select an element
in a base application, create a mark, drop it on the pad as a scrap, name
and arrange the scraps freely, nest bundles, and double-click a scrap to
de-reference its mark — *"the original information source … is displayed
with the appropriate medication highlighted"*.

The controller composes the generic components exactly as Fig. 5 draws
them: SLIMPad → (SLIM Store via the DMI) + (Mark Manager → base apps).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SlimPadError
from repro.dmi.runtime import EntityObject
from repro.marks.behaviors import display_in_place, preview
from repro.marks.manager import MarkManager
from repro.marks.mark import Mark
from repro.marks.modules import Resolution
from repro.slimpad.dmi import SlimPadDMI
from repro.util.coordinates import Coordinate
from repro.util.events import EventBus


class SlimPadApplication:
    """One running SLIMPad: a window onto one current pad."""

    def __init__(self, mark_manager: MarkManager,
                 dmi: Optional[SlimPadDMI] = None,
                 bus: Optional[EventBus] = None,
                 shards: int = 1) -> None:
        self.marks = mark_manager
        # shards > 1 hash-partitions the pad's triple pool (ignored when
        # a ready-made DMI is supplied).
        self.dmi = dmi or SlimPadDMI(shards=shards)
        self.bus = bus
        self._pad: Optional[EntityObject] = None
        self.visible = True
        self.in_front = True

    # -- pad lifecycle ----------------------------------------------------------

    def new_pad(self, name: str) -> EntityObject:
        """Create a pad with an unnamed root bundle and make it current."""
        root = self.dmi.Create_Bundle(bundleName="", bundlePos=Coordinate(0, 0),
                                      bundleWidth=800.0, bundleHeight=600.0)
        pad = self.dmi.Create_SlimPad(padName=name, rootBundle=root)
        self._pad = pad
        self._emit("slimpad.pad", pad=name)
        return pad

    @property
    def pad(self) -> EntityObject:
        """The current pad; raises before :meth:`new_pad`/:meth:`open_pad`."""
        if self._pad is None:
            raise SlimPadError("no pad open; call new_pad or open_pad")
        return self._pad

    @property
    def root_bundle(self) -> EntityObject:
        """The current pad's root bundle."""
        root = self.pad.rootBundle
        if root is None:
            raise SlimPadError("current pad has no root bundle")
        return root

    def save_pad(self, file_name: str) -> None:
        """Persist the pad structure (marks are saved by the Mark Manager).

        The write is atomic (temp + fsync + rename), so a crash mid-save
        never destroys an existing pad file.
        """
        self.dmi.save(file_name)

    def open_pad(self, file_name: str) -> EntityObject:
        """Load a pad file and make its first pad current."""
        self._pad = self.dmi.load(file_name)
        return self._pad

    def enable_durability(self, directory: str, compact_every: int = 64,
                          sync: str = "inline"):
        """Crash-safe persistence for this pad's triples (WAL + snapshots).

        Call before building the pad (the store must be empty when
        *directory* holds previous state); prior state is recovered and
        every subsequent pad edit is logged.  Returns the
        :class:`~repro.triples.wal.Durability` handle.  Pair with
        :meth:`commit` at user-operation boundaries.  ``sync='group'`` or
        ``'async'`` batches commit fsyncs on a background flusher (see
        :class:`~repro.triples.wal.Durability`).
        """
        return self.dmi.runtime.trim.enable_durability(
            directory, compact_every=compact_every, sync=sync)

    def commit(self) -> bool:
        """Close a durable group boundary; no-op when durability is off."""
        return self.dmi.runtime.trim.commit()

    def reshard(self, new_count: int, batch_subjects: int = 256,
                wait: bool = True):
        """Grow the pad's shard count live without closing it (see
        :meth:`TrimManager.reshard <repro.triples.trim.TrimManager.reshard>`)."""
        return self.dmi.runtime.trim.reshard(
            new_count, batch_subjects=batch_subjects, wait=wait)

    def cache_stats(self) -> dict:
        """Read-path cache metrics for this pad's triple store — the
        hit/miss/eviction counters SLIMPad workloads report (see
        :meth:`repro.triples.trim.TrimManager.cache_stats`)."""
        return self.dmi.runtime.trim.cache_stats()

    def open_durable(self, directory: str, compact_every: int = 64,
                     sync: str = "inline") -> EntityObject:
        """Recover a durably-persisted pad and make it current.

        The durable directory's snapshot + WAL tail are replayed into the
        store (see :func:`repro.triples.wal.recover`); the first recovered
        pad becomes current, and further edits keep being logged.
        """
        self.enable_durability(directory, compact_every=compact_every,
                               sync=sync)
        pads = self.dmi.All_SlimPad()
        if not pads:
            raise SlimPadError(f"{directory!r} holds no durable SlimPad")
        self._pad = pads[0]
        return self._pad

    # -- building bundles ---------------------------------------------------------

    def create_bundle(self, name: str, pos: Coordinate,
                      width: float = 200.0, height: float = 120.0,
                      parent: Optional[EntityObject] = None) -> EntityObject:
        """Create a bundle nested in *parent* (default: the root bundle)."""
        bundle = self.dmi.Create_Bundle(bundleName=name, bundlePos=pos,
                                        bundleWidth=width, bundleHeight=height)
        self.dmi.Add_nestedBundle(parent if parent is not None
                                  else self.root_bundle, bundle)
        self._emit("slimpad.bundle", bundle=name)
        return bundle

    def create_scrap_from_selection(self, base_app, label: Optional[str] = None,
                                    pos: Optional[Coordinate] = None,
                                    bundle: Optional[EntityObject] = None
                                    ) -> EntityObject:
        """The paper's creation flow: mark the base selection, drop a scrap.

        When *label* is omitted, a content preview from the mark becomes
        the scrap's name (the user can rename it later — a scrap's label
        and its mark's content may differ).
        """
        mark = self.marks.create_mark(base_app)
        return self.create_scrap_from_mark(mark, label=label, pos=pos,
                                           bundle=bundle)

    def create_scrap_from_mark(self, mark: Mark, label: Optional[str] = None,
                               pos: Optional[Coordinate] = None,
                               bundle: Optional[EntityObject] = None
                               ) -> EntityObject:
        """Place an existing mark onto the pad as a scrap."""
        if label is None:
            label = preview(self.marks, mark.mark_id) or mark.mark_id
        scrap = self.dmi.Create_Scrap(
            scrapName=label, scrapPos=pos if pos is not None else Coordinate(0, 0))
        handle = self.dmi.Create_MarkHandle(markId=mark.mark_id)
        self.dmi.Add_scrapMark(scrap, handle)
        self.dmi.Add_bundleContent(bundle if bundle is not None
                                   else self.root_bundle, scrap)
        self._emit("slimpad.scrap", scrap=label, mark=mark.mark_id)
        return scrap

    def create_note_scrap(self, text: str, pos: Coordinate,
                          bundle: Optional[EntityObject] = None
                          ) -> EntityObject:
        """A plain scrap with no mark — information that exists only on
        the pad (to-do items on the resident's worksheet)."""
        scrap = self.dmi.Create_Scrap(scrapName=text, scrapPos=pos)
        self.dmi.Add_bundleContent(bundle if bundle is not None
                                   else self.root_bundle, scrap)
        return scrap

    # -- interacting with scraps -----------------------------------------------------

    def double_click(self, scrap: EntityObject) -> Resolution:
        """De-reference the scrap's (first) mark in context.

        The base application opens the original document and highlights
        the marked element; SLIMPad stays on screen (simultaneous
        viewing).  Raises for mark-less note scraps.
        """
        handles = scrap.scrapMark
        if not handles:
            raise SlimPadError(
                f"scrap {scrap.scrapName!r} has no mark to de-reference")
        resolution = self.marks.resolve(handles[0].markId)
        self._emit("slimpad.dereference", scrap=scrap.scrapName,
                   mark=handles[0].markId)
        return resolution

    def resolutions(self, scrap: EntityObject) -> List[Resolution]:
        """Resolve every mark of a multi-mark scrap."""
        return [self.marks.resolve(h.markId) for h in scrap.scrapMark]

    def show_in_place(self, scrap: EntityObject, width: int = 60) -> str:
        """Independent viewing: render the marked content on the pad
        itself, without surfacing any base window."""
        handles = scrap.scrapMark
        if not handles:
            return scrap.scrapName or ""
        return display_in_place(self.marks, handles[0].markId, width=width)

    def move_scrap(self, scrap: EntityObject, pos: Coordinate) -> None:
        """Drag a scrap to a new position."""
        self.dmi.Update_scrapPos(scrap, pos)

    def rename_scrap(self, scrap: EntityObject, name: str) -> None:
        """Rename a scrap (label and mark content may differ)."""
        self.dmi.Update_scrapName(scrap, name)

    def move_bundle(self, bundle: EntityObject, pos: Coordinate) -> None:
        """Drag a bundle to a new position."""
        self.dmi.Update_bundlePos(bundle, pos)

    def delete_scrap(self, scrap: EntityObject,
                     drop_marks: bool = True) -> None:
        """Remove a scrap from the pad (optionally forgetting its marks)."""
        mark_ids = [h.markId for h in scrap.scrapMark]
        for bundle in self.dmi.runtime.referrers(scrap, "Bundle",
                                                 "bundleContent"):
            self.dmi.Remove_bundleContent(bundle, scrap)
        self.dmi.Delete_Scrap(scrap)
        if drop_marks:
            for mark_id in mark_ids:
                if mark_id in self.marks:
                    self.marks.remove(mark_id)

    # -- queries -------------------------------------------------------------------------

    def scraps_in(self, bundle: EntityObject,
                  recursive: bool = False) -> List[EntityObject]:
        """The scraps of a bundle (optionally of all nested bundles too)."""
        scraps = list(bundle.bundleContent)
        if recursive:
            for nested in bundle.nestedBundle:
                scraps.extend(self.scraps_in(nested, recursive=True))
        return scraps

    def bundles_in(self, bundle: EntityObject,
                   recursive: bool = False) -> List[EntityObject]:
        """The bundles nested in a bundle."""
        nested = list(bundle.nestedBundle)
        if recursive:
            for child in list(nested):
                nested.extend(self.bundles_in(child, recursive=True))
        return nested

    def find_scrap(self, name: str) -> Optional[EntityObject]:
        """The first scrap (anywhere under the root) with this label."""
        for scrap in self.scraps_in(self.root_bundle, recursive=True):
            if scrap.scrapName == name:
                return scrap
        return None

    def find_bundle(self, name: str) -> Optional[EntityObject]:
        """The first bundle (anywhere under the root) with this name."""
        for bundle in self.bundles_in(self.root_bundle, recursive=True):
            if bundle.bundleName == name:
                return bundle
        return None

    def superimposed_bytes(self) -> int:
        """Size of the pad's superimposed information (claim C-3's
        numerator): the triple store footprint."""
        return self.dmi.runtime.trim.store.estimated_bytes()

    # -- internals ---------------------------------------------------------------------------

    def _emit(self, topic: str, **payload) -> None:
        if self.bus is not None:
            self.bus.publish(topic, **payload)

"""Headless rendering of pads (the Fig. 4 screen, without a GUI).

Two renderers:

- :func:`render_text` — an indented outline of the pad's structure,
  useful in terminals, tests, and the examples;
- :func:`render_svg` — an SVG drawing of the freeform 2-D layout
  (bundles as boxes, scraps as sticky notes, graphics as grids), which is
  as close to the Fig. 4 screenshot as a headless build gets.
"""

from __future__ import annotations

import io
from xml.sax.saxutils import escape

from repro.dmi.runtime import EntityObject
from repro.slimpad.layout import SCRAP_HEIGHT, SCRAP_WIDTH, bundle_rect, scrap_rect
from repro.util.coordinates import Coordinate


def render_text(pad: EntityObject) -> str:
    """An indented outline of a pad: bundles, scraps, marks, annotations."""
    out = io.StringIO()
    out.write(f"SLIMPad: {pad.padName}\n")
    root = pad.rootBundle
    if root is not None:
        _render_bundle_text(out, root, indent=1)
    return out.getvalue().rstrip("\n")


def _render_bundle_text(out: io.StringIO, bundle: EntityObject,
                        indent: int) -> None:
    pad_indent = "  " * indent
    name = bundle.bundleName or "(unnamed bundle)"
    pos = bundle.bundlePos or Coordinate(0, 0)
    out.write(f"{pad_indent}[{name}] at ({pos.x:g}, {pos.y:g})\n")
    for scrap in bundle.bundleContent:
        label = scrap.scrapName or "(unnamed scrap)"
        marks = [handle.markId for handle in scrap.scrapMark]
        suffix = f" -> {', '.join(marks)}" if marks else " (note)"
        out.write(f"{pad_indent}  * {label}{suffix}\n")
        for annotation in scrap.scrapAnnotation:
            out.write(f"{pad_indent}      ~ {annotation.annotationText}\n")
    for graphic in bundle.bundleGraphic:
        out.write(f"{pad_indent}  # graphic: {graphic.graphicKind}\n")
    for nested in bundle.nestedBundle:
        _render_bundle_text(out, nested, indent + 1)


def render_svg(pad: EntityObject, width: int = 900, height: int = 650) -> str:
    """The pad as an SVG document (bundles, scraps, gridlets, labels)."""
    out = io.StringIO()
    out.write(f'<svg xmlns="http://www.w3.org/2000/svg" '
              f'width="{width}" height="{height}" '
              f'viewBox="0 0 {width} {height}">\n')
    out.write('  <rect width="100%" height="100%" fill="#f4f1ea"/>\n')
    title = escape(pad.padName or "SLIMPad")
    out.write(f'  <text x="12" y="20" font-size="16" '
              f'font-family="sans-serif">{title}</text>\n')
    root = pad.rootBundle
    if root is not None:
        _render_bundle_svg(out, root, offset=Coordinate(10, 30))
    out.write("</svg>\n")
    return out.getvalue()


def _render_bundle_svg(out: io.StringIO, bundle: EntityObject,
                       offset: Coordinate) -> None:
    rect = bundle_rect(bundle).translated(offset.x, offset.y)
    name = escape(bundle.bundleName or "")
    out.write(f'  <rect x="{rect.x:g}" y="{rect.y:g}" width="{rect.width:g}" '
              f'height="{rect.height:g}" fill="#fffef8" stroke="#888" '
              f'rx="4"/>\n')
    if name:
        out.write(f'  <text x="{rect.x + 6:g}" y="{rect.y + 14:g}" '
                  f'font-size="12" font-family="sans-serif" '
                  f'fill="#444">{name}</text>\n')
    for graphic in bundle.bundleGraphic:
        g_pos = graphic.graphicPos or Coordinate(0, 0)
        g_rect = (bundle_rect(bundle).position
                  .translated(offset.x, offset.y)
                  .translated(g_pos.x, g_pos.y))
        g_width = graphic.graphicWidth or 0.0
        g_height = graphic.graphicHeight or 0.0
        out.write(f'  <g stroke="#bbb">\n')
        out.write(f'    <line x1="{g_rect.x:g}" y1="{g_rect.y + g_height / 2:g}" '
                  f'x2="{g_rect.x + g_width:g}" '
                  f'y2="{g_rect.y + g_height / 2:g}"/>\n')
        out.write(f'    <line x1="{g_rect.x + g_width / 2:g}" y1="{g_rect.y:g}" '
                  f'x2="{g_rect.x + g_width / 2:g}" '
                  f'y2="{g_rect.y + g_height:g}"/>\n')
        out.write("  </g>\n")
    for scrap in bundle.bundleContent:
        s_rect = scrap_rect(scrap).translated(offset.x, offset.y)
        label = escape(scrap.scrapName or "")
        has_mark = bool(scrap.scrapMark)
        fill = "#fff8c8" if has_mark else "#e8f0ff"
        out.write(f'  <rect x="{s_rect.x:g}" y="{s_rect.y:g}" '
                  f'width="{SCRAP_WIDTH:g}" height="{SCRAP_HEIGHT:g}" '
                  f'fill="{fill}" stroke="#999"/>\n')
        out.write(f'  <text x="{s_rect.x + 4:g}" y="{s_rect.y + 15:g}" '
                  f'font-size="10" font-family="sans-serif">{label}</text>\n')
    for nested in bundle.nestedBundle:
        _render_bundle_svg(out, nested, offset)


def describe_structure(pad: EntityObject) -> dict:
    """Summary statistics of a pad (used by workload benches)."""
    counts = {"bundles": 0, "scraps": 0, "marks": 0, "notes": 0,
              "annotations": 0, "graphics": 0, "max_depth": 0}
    root = pad.rootBundle
    if root is None:
        return counts

    def walk(bundle: EntityObject, depth: int) -> None:
        counts["bundles"] += 1
        counts["max_depth"] = max(counts["max_depth"], depth)
        counts["graphics"] += len(bundle.bundleGraphic)
        for scrap in bundle.bundleContent:
            counts["scraps"] += 1
            handles = scrap.scrapMark
            counts["marks"] += len(handles)
            if not handles:
                counts["notes"] += 1
            counts["annotations"] += len(scrap.scrapAnnotation)
        for nested in bundle.nestedBundle:
            walk(nested, depth + 1)

    walk(root, 1)
    return counts

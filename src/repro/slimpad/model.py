"""The Bundle-Scrap data model (Fig. 3), as DMI specifications.

Two specs are provided:

- :data:`BUNDLE_SCRAP_SPEC` — the exact Fig. 3 model: SlimPad, Bundle,
  Scrap, MarkHandle with the figure's attributes and multiplicities.
- :data:`EXTENDED_BUNDLE_SCRAP_SPEC` — the Section 6 extensions the paper
  names as contemplated work: annotations on scraps, links among scraps,
  and graphic elements (the "gridlet" of Fig. 4 *"is simply a graphic
  element with scraps placed near it"*).

One deliberate liberalization: Fig. 3 draws ``scrapMark`` as ``1..*``, but
the paper's own bundles contain information *"not present in the
underlying documents"* (to-do entries on the resident's worksheet), so the
application spec allows mark-less note scraps (``0..*``).  Multiple marks
per scrap — another Section 3 extension — comes along for free.
"""

from __future__ import annotations

from repro.dmi.spec import AttrSpec, EntitySpec, ModelSpec, RefSpec

#: The Fig. 3 model, transcribed.
BUNDLE_SCRAP_SPEC = ModelSpec("BundleScrap", [
    EntitySpec("SlimPad",
               attributes=(AttrSpec("padName", "string"),),
               references=(RefSpec("rootBundle", "Bundle", many=False,
                                   containment=True),)),
    EntitySpec("Bundle",
               attributes=(AttrSpec("bundleName", "string"),
                           AttrSpec("bundlePos", "coordinate"),
                           AttrSpec("bundleHeight", "float"),
                           AttrSpec("bundleWidth", "float")),
               references=(RefSpec("bundleContent", "Scrap", many=True,
                                   containment=True),
                           RefSpec("nestedBundle", "Bundle", many=True,
                                   containment=True))),
    EntitySpec("Scrap",
               attributes=(AttrSpec("scrapName", "string"),
                           AttrSpec("scrapPos", "coordinate")),
               references=(RefSpec("scrapMark", "MarkHandle", many=True,
                                   containment=True),)),
    EntitySpec("MarkHandle",
               attributes=(AttrSpec("markId", "string", required=True),)),
])

#: Fig. 3 plus the Section 6 extensions (annotations, links, graphics).
EXTENDED_BUNDLE_SCRAP_SPEC = ModelSpec("BundleScrap", [
    EntitySpec("SlimPad",
               attributes=(AttrSpec("padName", "string"),),
               references=(RefSpec("rootBundle", "Bundle", many=False,
                                   containment=True),)),
    EntitySpec("Bundle",
               attributes=(AttrSpec("bundleName", "string"),
                           AttrSpec("bundlePos", "coordinate"),
                           AttrSpec("bundleHeight", "float"),
                           AttrSpec("bundleWidth", "float")),
               references=(RefSpec("bundleContent", "Scrap", many=True,
                                   containment=True),
                           RefSpec("nestedBundle", "Bundle", many=True,
                                   containment=True),
                           RefSpec("bundleGraphic", "Graphic", many=True,
                                   containment=True))),
    EntitySpec("Scrap",
               attributes=(AttrSpec("scrapName", "string"),
                           AttrSpec("scrapPos", "coordinate")),
               references=(RefSpec("scrapMark", "MarkHandle", many=True,
                                   containment=True),
                           RefSpec("scrapAnnotation", "Annotation", many=True,
                                   containment=True),
                           RefSpec("linkedTo", "Scrap", many=True))),
    EntitySpec("MarkHandle",
               attributes=(AttrSpec("markId", "string", required=True),)),
    EntitySpec("Annotation",
               attributes=(AttrSpec("annotationText", "string", required=True),
                           AttrSpec("annotationAuthor", "string"))),
    EntitySpec("Graphic",
               attributes=(AttrSpec("graphicKind", "string", required=True),
                           AttrSpec("graphicPos", "coordinate"),
                           AttrSpec("graphicWidth", "float"),
                           AttrSpec("graphicHeight", "float"))),
])

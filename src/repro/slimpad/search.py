"""Searching a pad: by label, by resolved content, by annotation.

The paper's bundles get large (a worksheet row per patient, nested
regions); finding "where did I put the potassium scrap" is a real task.
Search runs over the superimposed layer (labels, annotations) and —
optionally — through the marks into current base content, so the user
finds scraps whose *underlying value* matches even when the label has
drifted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dmi.runtime import EntityObject
from repro.errors import MarkError, MarkResolutionError
from repro.marks.behaviors import extract_content
from repro.slimpad.app import SlimPadApplication


@dataclass(frozen=True)
class SearchHit:
    """One search result: the scrap, where it lives, and why it matched."""

    scrap: EntityObject
    bundle: EntityObject
    matched_in: str      # 'label' | 'content' | 'annotation'
    snippet: str

    @property
    def path(self) -> str:
        """A breadcrumb like ``'John Smith > Labs'`` for display."""
        return self.bundle.bundleName or "(unnamed bundle)"


def search_pad(slimpad: SlimPadApplication, needle: str,
               in_labels: bool = True,
               in_annotations: bool = True,
               in_content: bool = False,
               case_sensitive: bool = False) -> List[SearchHit]:
    """Find scraps matching *needle* anywhere under the root bundle.

    ``in_content=True`` resolves each scrap's marks (extractor role) and
    searches the *current* base content — slower, but finds values that
    moved since the label was written.  Unresolvable marks are skipped
    (search never fails because a base document vanished).
    """
    if not needle:
        return []
    probe = needle if case_sensitive else needle.lower()

    def matches(text: Optional[str]) -> Optional[str]:
        if not text:
            return None
        haystack = text if case_sensitive else text.lower()
        return text if probe in haystack else None

    hits: List[SearchHit] = []

    def walk(bundle: EntityObject) -> None:
        for scrap in bundle.bundleContent:
            if in_labels:
                snippet = matches(scrap.scrapName)
                if snippet is not None:
                    hits.append(SearchHit(scrap, bundle, "label", snippet))
                    continue
            if in_annotations:
                annotation_hit = None
                for annotation in scrap.scrapAnnotation:
                    annotation_hit = matches(annotation.annotationText)
                    if annotation_hit is not None:
                        break
                if annotation_hit is not None:
                    hits.append(SearchHit(scrap, bundle, "annotation",
                                          annotation_hit))
                    continue
            if in_content and scrap.scrapMark:
                try:
                    resolution = extract_content(slimpad.marks,
                                                 scrap.scrapMark[0].markId)
                except (MarkResolutionError, MarkError):
                    continue
                snippet = matches(resolution.content_text())
                if snippet is not None:
                    hits.append(SearchHit(scrap, bundle, "content",
                                          snippet.replace("\n", " ")))
        for nested in bundle.nestedBundle:
            walk(nested)

    walk(slimpad.root_bundle)
    return hits


def find_scraps_marking(slimpad: SlimPadApplication,
                        document_name: str) -> List[EntityObject]:
    """Every scrap whose (first) mark addresses *document_name*.

    The reverse question of resolution: "what on my pad points into this
    document?" — useful before a base document is archived or replaced.
    """
    result: List[EntityObject] = []
    for scrap in slimpad.scraps_in(slimpad.root_bundle, recursive=True):
        for handle in scrap.scrapMark:
            try:
                mark = slimpad.marks.get(handle.markId)
            except MarkError:
                continue
            fields = mark.address_fields()
            name = fields.get("file_name") or fields.get("url")
            if name == document_name:
                result.append(scrap)
                break
    return result

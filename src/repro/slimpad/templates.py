"""Bundle templates (a Section 6 contemplated extension).

Clinicians reuse bundle *shapes*: every patient row on the resident's
worksheet has the same four regions.  A :class:`BundleTemplate` captures
a bundle's structure — nested bundles, scrap labels/positions, graphics —
without its marks, and can be instantiated any number of times onto a pad.
Templates are plain data, serializable to XML for sharing.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import PersistenceError
from repro.dmi.runtime import EntityObject
from repro.slimpad.dmi import SlimPadDMI
from repro.util.coordinates import Coordinate


@dataclass
class ScrapSlot:
    """A scrap placeholder: a label and a position, no mark."""

    label: str
    pos: Coordinate


@dataclass
class GraphicSlot:
    """A graphic placeholder."""

    kind: str
    pos: Coordinate
    width: float
    height: float


@dataclass
class BundleTemplate:
    """The reusable shape of one bundle (recursively)."""

    name: str
    pos: Coordinate = field(default_factory=lambda: Coordinate(0, 0))
    width: float = 200.0
    height: float = 120.0
    scraps: List[ScrapSlot] = field(default_factory=list)
    graphics: List[GraphicSlot] = field(default_factory=list)
    nested: List["BundleTemplate"] = field(default_factory=list)

    # -- capture -----------------------------------------------------------------

    @classmethod
    def capture(cls, bundle: EntityObject) -> "BundleTemplate":
        """Capture the structure of an existing bundle (marks dropped)."""
        template = cls(
            name=bundle.bundleName or "",
            pos=bundle.bundlePos or Coordinate(0, 0),
            width=bundle.bundleWidth or 200.0,
            height=bundle.bundleHeight or 120.0)
        for scrap in bundle.bundleContent:
            template.scraps.append(ScrapSlot(
                scrap.scrapName or "", scrap.scrapPos or Coordinate(0, 0)))
        for graphic in bundle.bundleGraphic:
            template.graphics.append(GraphicSlot(
                graphic.graphicKind, graphic.graphicPos or Coordinate(0, 0),
                graphic.graphicWidth or 0.0, graphic.graphicHeight or 0.0))
        for nested in bundle.nestedBundle:
            template.nested.append(cls.capture(nested))
        return template

    # -- instantiation -------------------------------------------------------------

    def instantiate(self, dmi: SlimPadDMI, parent: EntityObject,
                    name: Optional[str] = None,
                    at: Optional[Coordinate] = None) -> EntityObject:
        """Create a fresh bundle from this template under *parent*."""
        bundle = dmi.Create_Bundle(
            bundleName=name if name is not None else self.name,
            bundlePos=at if at is not None else self.pos,
            bundleWidth=self.width, bundleHeight=self.height)
        dmi.Add_nestedBundle(parent, bundle)
        for slot in self.scraps:
            scrap = dmi.Create_Scrap(scrapName=slot.label, scrapPos=slot.pos)
            dmi.Add_bundleContent(bundle, scrap)
        for slot in self.graphics:
            dmi.Create_Graphic(bundle, slot.kind, slot.pos,
                               slot.width, slot.height)
        for child in self.nested:
            child.instantiate(dmi, bundle)
        return bundle

    # -- serialization ----------------------------------------------------------------

    def dumps(self) -> str:
        """This template as an XML string."""
        root = self._to_element()
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")

    def _to_element(self) -> ET.Element:
        element = ET.Element("bundle-template", {
            "name": self.name, "x": str(self.pos.x), "y": str(self.pos.y),
            "width": str(self.width), "height": str(self.height)})
        for slot in self.scraps:
            ET.SubElement(element, "scrap", {
                "label": slot.label,
                "x": str(slot.pos.x), "y": str(slot.pos.y)})
        for slot in self.graphics:
            ET.SubElement(element, "graphic", {
                "kind": slot.kind, "x": str(slot.pos.x), "y": str(slot.pos.y),
                "width": str(slot.width), "height": str(slot.height)})
        for child in self.nested:
            element.append(child._to_element())
        return element

    @classmethod
    def loads(cls, text: str) -> "BundleTemplate":
        """Parse a template from :meth:`dumps` output."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise PersistenceError(f"malformed template XML: {exc}") from exc
        if root.tag != "bundle-template":
            raise PersistenceError(
                f"expected <bundle-template>, got <{root.tag}>")
        return cls._from_element(root)

    @classmethod
    def _from_element(cls, element: ET.Element) -> "BundleTemplate":
        try:
            template = cls(
                name=element.get("name", ""),
                pos=Coordinate(float(element.get("x", "0")),
                               float(element.get("y", "0"))),
                width=float(element.get("width", "200")),
                height=float(element.get("height", "120")))
            for child in element:
                if child.tag == "scrap":
                    template.scraps.append(ScrapSlot(
                        child.get("label", ""),
                        Coordinate(float(child.get("x", "0")),
                                   float(child.get("y", "0")))))
                elif child.tag == "graphic":
                    template.graphics.append(GraphicSlot(
                        child.get("kind", ""),
                        Coordinate(float(child.get("x", "0")),
                                   float(child.get("y", "0"))),
                        float(child.get("width", "0")),
                        float(child.get("height", "0"))))
                elif child.tag == "bundle-template":
                    template.nested.append(cls._from_element(child))
                else:
                    raise PersistenceError(
                        f"unexpected element <{child.tag}> in template")
        except ValueError as exc:
            raise PersistenceError(f"bad number in template: {exc}") from exc
        return template

    def slot_count(self) -> int:
        """Total scrap slots, recursively (for tests and stats)."""
        return len(self.scraps) + sum(c.slot_count() for c in self.nested)

"""Shared bundles and cross-pad exchange.

Section 2: *"We believe there is benefit in creating bundles …, in
reusing bundles …, and in sharing bundles to establish collectively
maintained, situated awareness."*

Two capabilities:

- :class:`SharedPadSession` — several named participants working on one
  pad, every mutation attributed and logged, with per-author activity
  queries (the "evidence to others of that awareness" of Section 3).
- :func:`export_bundle` / :func:`import_bundle` — move a bundle (with its
  marks) from one SLIMPad to another as a self-contained XML parcel; the
  receiving side re-registers the marks, and they resolve as long as both
  sides see the same base documents.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import PersistenceError, SlimPadError
from repro.dmi.runtime import EntityObject
from repro.slimpad.app import SlimPadApplication
from repro.util.coordinates import Coordinate


@dataclass(frozen=True)
class ChangeRecord:
    """One attributed mutation of a shared pad."""

    sequence: int
    author: str
    action: str       # 'create-scrap' | 'create-bundle' | 'move' | 'rename'
                      # | 'annotate' | 'delete'
    subject: str      # label of the affected element


class SharedPadSession:
    """Attributed, logged collaboration on one pad."""

    def __init__(self, slimpad: SlimPadApplication,
                 participants: List[str]) -> None:
        if not participants:
            raise SlimPadError("a shared session needs participants")
        self.slimpad = slimpad
        self.participants = list(participants)
        self._log: List[ChangeRecord] = []

    def _record(self, author: str, action: str, subject: str) -> None:
        if author not in self.participants:
            raise SlimPadError(f"{author!r} is not in this session")
        self._log.append(ChangeRecord(len(self._log) + 1, author,
                                      action, subject))

    # -- attributed operations ----------------------------------------------------

    def create_scrap_from_selection(self, author: str, base_app,
                                    label: Optional[str] = None,
                                    pos: Optional[Coordinate] = None,
                                    bundle: Optional[EntityObject] = None
                                    ) -> EntityObject:
        """An attributed version of the pad's core operation."""
        scrap = self.slimpad.create_scrap_from_selection(
            base_app, label=label, pos=pos, bundle=bundle)
        self._record(author, "create-scrap", scrap.scrapName or "")
        return scrap

    def create_note(self, author: str, text: str, pos: Coordinate,
                    bundle: Optional[EntityObject] = None) -> EntityObject:
        """Attributed note scrap."""
        scrap = self.slimpad.create_note_scrap(text, pos, bundle=bundle)
        self._record(author, "create-scrap", text)
        return scrap

    def create_bundle(self, author: str, name: str, pos: Coordinate,
                      **kwargs) -> EntityObject:
        """Attributed bundle creation."""
        bundle = self.slimpad.create_bundle(name, pos, **kwargs)
        self._record(author, "create-bundle", name)
        return bundle

    def move_scrap(self, author: str, scrap: EntityObject,
                   pos: Coordinate) -> None:
        """Attributed drag."""
        self.slimpad.move_scrap(scrap, pos)
        self._record(author, "move", scrap.scrapName or "")

    def rename_scrap(self, author: str, scrap: EntityObject,
                     name: str) -> None:
        """Attributed rename."""
        old = scrap.scrapName or ""
        self.slimpad.rename_scrap(scrap, name)
        self._record(author, "rename", f"{old} -> {name}")

    def annotate(self, author: str, scrap: EntityObject,
                 text: str) -> EntityObject:
        """Attributed annotation (the author lands on the annotation too)."""
        annotation = self.slimpad.dmi.Annotate_Scrap(scrap, text,
                                                     author=author)
        self._record(author, "annotate", scrap.scrapName or "")
        return annotation

    def delete_scrap(self, author: str, scrap: EntityObject) -> None:
        """Attributed deletion."""
        label = scrap.scrapName or ""
        self.slimpad.delete_scrap(scrap)
        self._record(author, "delete", label)

    # -- awareness queries ----------------------------------------------------------

    @property
    def log(self) -> List[ChangeRecord]:
        """Every change, oldest first."""
        return list(self._log)

    def changes_by(self, author: str) -> List[ChangeRecord]:
        """One participant's activity."""
        return [record for record in self._log if record.author == author]

    def changes_since(self, sequence: int) -> List[ChangeRecord]:
        """What happened after a sequence number (catch-up on return)."""
        return [record for record in self._log if record.sequence > sequence]

    def activity_summary(self) -> "dict[str, int]":
        """Change counts per participant."""
        summary = {name: 0 for name in self.participants}
        for record in self._log:
            summary[record.author] += 1
        return summary


# -- cross-pad bundle exchange ------------------------------------------------------


def export_bundle(slimpad: SlimPadApplication,
                  bundle: EntityObject) -> str:
    """Serialize a bundle (structure + positions + its marks) to XML."""
    root = ET.Element("bundle-parcel", {"version": "1"})
    marks_el = ET.SubElement(root, "marks")
    mark_ids: List[str] = []
    _collect_mark_ids(bundle, mark_ids)
    registry = slimpad.marks.registry
    parcel_marks = [slimpad.marks.get(mark_id) for mark_id in mark_ids
                    if mark_id in slimpad.marks]
    marks_el.text = ""  # keep an element even when empty
    marks_xml = registry.dumps(parcel_marks)
    marks_el.append(ET.fromstring(marks_xml))
    root.append(_bundle_to_element(bundle))
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def import_bundle(slimpad: SlimPadApplication, parcel: str,
                  parent: Optional[EntityObject] = None,
                  at: Optional[Coordinate] = None) -> EntityObject:
    """Re-create an exported bundle on this pad, adopting its marks."""
    try:
        root = ET.fromstring(parcel)
    except ET.ParseError as exc:
        raise PersistenceError(f"malformed bundle parcel: {exc}") from exc
    if root.tag != "bundle-parcel":
        raise PersistenceError(f"expected <bundle-parcel>, got <{root.tag}>")
    marks_el = root.find("marks")
    if marks_el is not None:
        inner = marks_el.find("marks")
        if inner is not None:
            for mark in slimpad.marks.registry.loads(
                    ET.tostring(inner, encoding="unicode")):
                slimpad.marks.adopt(mark)
    bundle_el = root.find("bundle")
    if bundle_el is None:
        raise PersistenceError("bundle parcel has no <bundle>")
    target_parent = parent if parent is not None else slimpad.root_bundle
    trim = slimpad.dmi.runtime.trim
    # One batch session for the whole parcel: the re-created triples go
    # through the store's bulk path, a bad parcel rolls back instead of
    # leaving a half-imported bundle, and under durable mode the import
    # commits as a single WAL group (one fsync per parcel).
    with trim.batch():
        bundle = _bundle_from_element(slimpad, bundle_el, target_parent)
        if at is not None:
            slimpad.dmi.Update_bundlePos(bundle, at)
    trim.commit()
    return bundle


def _collect_mark_ids(bundle: EntityObject, out: List[str]) -> None:
    for scrap in bundle.bundleContent:
        out.extend(handle.markId for handle in scrap.scrapMark)
    for nested in bundle.nestedBundle:
        _collect_mark_ids(nested, out)


def _bundle_to_element(bundle: EntityObject) -> ET.Element:
    pos = bundle.bundlePos or Coordinate(0, 0)
    element = ET.Element("bundle", {
        "name": bundle.bundleName or "",
        "x": str(pos.x), "y": str(pos.y),
        "width": str(bundle.bundleWidth or 0.0),
        "height": str(bundle.bundleHeight or 0.0)})
    for scrap in bundle.bundleContent:
        s_pos = scrap.scrapPos or Coordinate(0, 0)
        scrap_el = ET.SubElement(element, "scrap", {
            "name": scrap.scrapName or "",
            "x": str(s_pos.x), "y": str(s_pos.y)})
        for handle in scrap.scrapMark:
            ET.SubElement(scrap_el, "mark-ref", {"id": handle.markId})
        for annotation in scrap.scrapAnnotation:
            note = ET.SubElement(scrap_el, "annotation",
                                 {"author": annotation.annotationAuthor or ""})
            note.text = annotation.annotationText
    for nested in bundle.nestedBundle:
        element.append(_bundle_to_element(nested))
    return element


def _bundle_from_element(slimpad: SlimPadApplication, element: ET.Element,
                         parent: EntityObject) -> EntityObject:
    try:
        bundle = slimpad.create_bundle(
            element.get("name", ""),
            Coordinate(float(element.get("x", "0")),
                       float(element.get("y", "0"))),
            width=float(element.get("width", "200")),
            height=float(element.get("height", "120")),
            parent=parent)
        for child in element:
            if child.tag == "scrap":
                scrap = slimpad.dmi.Create_Scrap(
                    scrapName=child.get("name", ""),
                    scrapPos=Coordinate(float(child.get("x", "0")),
                                        float(child.get("y", "0"))))
                slimpad.dmi.Add_bundleContent(bundle, scrap)
                for sub in child:
                    if sub.tag == "mark-ref":
                        mark_id = sub.get("id", "")
                        handle = slimpad.dmi.Create_MarkHandle(markId=mark_id)
                        slimpad.dmi.Add_scrapMark(scrap, handle)
                    elif sub.tag == "annotation":
                        slimpad.dmi.Annotate_Scrap(
                            scrap, sub.text or "",
                            author=sub.get("author", ""))
            elif child.tag == "bundle":
                _bundle_from_element(slimpad, child, bundle)
    except ValueError as exc:
        raise PersistenceError(f"bad number in bundle parcel: {exc}") from exc
    return bundle

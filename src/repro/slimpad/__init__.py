"""SLIMPad — the superimposed scratchpad application (paper Section 3).

- :data:`BUNDLE_SCRAP_SPEC` / :data:`EXTENDED_BUNDLE_SCRAP_SPEC` — Fig. 3
- :class:`SlimPadDMI` — the Fig. 10 hand-written DMI
- :class:`SlimPadApplication` — the application controller
- :class:`MarkClipboard` — the base-app-to-pad hand-off
- :class:`BundleTemplate` — reusable bundle shapes (Section 6 extension)
- :mod:`repro.slimpad.layout` / :mod:`repro.slimpad.render` — 2-D queries
  and headless rendering
"""

from repro.slimpad.app import SlimPadApplication
from repro.slimpad.clipboard import MarkClipboard
from repro.slimpad.handoff import (HandoffItem, HandoffReport,
                                   PatientHandoff, build_handoff)
from repro.slimpad.dmi import SlimPadDMI
from repro.slimpad.model import BUNDLE_SCRAP_SPEC, EXTENDED_BUNDLE_SCRAP_SPEC
from repro.slimpad.render import describe_structure, render_svg, render_text
from repro.slimpad.search import SearchHit, find_scraps_marking, search_pad
from repro.slimpad.sharing import (ChangeRecord, SharedPadSession,
                                   export_bundle, import_bundle)
from repro.slimpad.templates import BundleTemplate, GraphicSlot, ScrapSlot

__all__ = [
    "SlimPadApplication",
    "MarkClipboard",
    "HandoffItem",
    "HandoffReport",
    "PatientHandoff",
    "build_handoff",
    "SlimPadDMI",
    "BUNDLE_SCRAP_SPEC",
    "EXTENDED_BUNDLE_SCRAP_SPEC",
    "describe_structure",
    "render_svg",
    "render_text",
    "SearchHit",
    "find_scraps_marking",
    "search_pad",
    "ChangeRecord",
    "SharedPadSession",
    "export_bundle",
    "import_bundle",
    "BundleTemplate",
    "GraphicSlot",
    "ScrapSlot",
]

"""The mark clipboard: the hand-off between base apps and the pad.

Section 3: *"Once the user has created a mark, it can be placed onto the
SLIMPad, creating a scrap that can be named and moved around."*  The
clipboard models that gap between *created* and *placed*: marks picked up
from base applications wait here (in order) until the user drops each one
onto a bundle.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SlimPadError
from repro.dmi.runtime import EntityObject
from repro.marks.mark import Mark
from repro.slimpad.app import SlimPadApplication
from repro.util.coordinates import Coordinate


class MarkClipboard:
    """Marks created but not yet placed, oldest first."""

    def __init__(self, slimpad: SlimPadApplication) -> None:
        self._slimpad = slimpad
        self._pending: List[Mark] = []

    def pick_up_selection(self, base_app) -> Mark:
        """Create a mark from the app's selection and hold it."""
        mark = self._slimpad.marks.create_mark(base_app)
        self._pending.append(mark)
        return mark

    def hold(self, mark: Mark) -> None:
        """Hold an already created mark."""
        self._pending.append(mark)

    @property
    def pending(self) -> List[Mark]:
        """Marks waiting to be placed, oldest first."""
        return list(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def place(self, pos: Coordinate, label: Optional[str] = None,
              bundle: Optional[EntityObject] = None) -> EntityObject:
        """Drop the oldest pending mark onto the pad as a scrap."""
        if not self._pending:
            raise SlimPadError("clipboard is empty; pick up a mark first")
        mark = self._pending.pop(0)
        return self._slimpad.create_scrap_from_mark(
            mark, label=label, pos=pos, bundle=bundle)

    def place_all(self, origin: Coordinate, dy: float = 26.0,
                  bundle: Optional[EntityObject] = None) -> List[EntityObject]:
        """Drop every pending mark as a vertical run of scraps."""
        scraps = []
        position = origin
        while self._pending:
            scraps.append(self.place(position, bundle=bundle))
            position = position.translated(0, dy)
        return scraps

    def discard(self, mark: Mark) -> bool:
        """Drop a pending mark without placing it (also forgets it from
        the Mark Manager); returns whether it was pending."""
        if mark in self._pending:
            self._pending.remove(mark)
            if mark.mark_id in self._slimpad.marks:
                self._slimpad.marks.remove(mark.mark_id)
            return True
        return False

"""The hand-off report: transferring "current situation" awareness.

Section 6: *"Our current direction is to use SLIMPad as the basis for a
task-specific tool prototype in the medical domain … A likely task area
is supporting the transfer of 'current situation' awareness for hospital
patients when one doctor is taking over rounds for another, such as on
weekends."*

:func:`build_handoff` walks a worksheet pad and produces a
:class:`HandoffReport` for the incoming doctor: per patient bundle, the
selected information (with *fresh* values re-read through each scrap's
mark), the outgoing doctor's annotations, open to-dos, and any scraps
whose marks no longer resolve (the base document changed or vanished —
exactly what the incoming doctor must not trust silently).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dmi.runtime import EntityObject
from repro.errors import MarkError, MarkResolutionError
from repro.marks.behaviors import extract_content
from repro.slimpad.app import SlimPadApplication


@dataclass
class HandoffItem:
    """One scrap, as the incoming doctor should read it."""

    label: str
    kind: str                      # 'linked' | 'note' | 'broken'
    current_value: Optional[str]   # freshly re-read (linked), None otherwise
    stale: bool                    # label no longer matches the base value
    annotations: List[str] = field(default_factory=list)


@dataclass
class PatientHandoff:
    """One patient bundle's hand-off section."""

    patient: str
    items: List[HandoffItem] = field(default_factory=list)
    todos: List[str] = field(default_factory=list)
    broken: List[str] = field(default_factory=list)   # labels of broken scraps


@dataclass
class HandoffReport:
    """The whole pad, prepared for the incoming doctor."""

    pad_name: str
    patients: List[PatientHandoff] = field(default_factory=list)

    @property
    def total_broken(self) -> int:
        """How many scraps across the report no longer resolve."""
        return sum(len(p.broken) for p in self.patients)

    @property
    def total_stale(self) -> int:
        """How many labels quote values the base layer has moved past."""
        return sum(1 for p in self.patients for i in p.items if i.stale)

    def render(self) -> str:
        """A plain-text report (what would be printed or paged over)."""
        lines = [f"HANDOFF — pad {self.pad_name!r}"]
        for patient in self.patients:
            lines.append(f"\n{patient.patient}")
            for item in patient.items:
                flag = ""
                if item.kind == "broken":
                    flag = "  !! UNRESOLVABLE — verify at source"
                elif item.stale:
                    flag = f"  ** now: {item.current_value}"
                lines.append(f"  - {item.label}{flag}")
                for annotation in item.annotations:
                    lines.append(f"      note: {annotation}")
            for todo in patient.todos:
                lines.append(f"  {todo}")
        if self.total_broken:
            lines.append(f"\n{self.total_broken} scrap(s) no longer resolve "
                         f"— their base documents changed.")
        return "\n".join(lines)


def build_handoff(slimpad: SlimPadApplication) -> HandoffReport:
    """Prepare a hand-off report from the current pad.

    Patient sections are the root bundle's direct nested bundles (the
    worksheet rows); everything under each row is gathered recursively.
    """
    report = HandoffReport(pad_name=slimpad.pad.padName or "")
    for row in slimpad.root_bundle.nestedBundle:
        section = PatientHandoff(patient=row.bundleName or "(unnamed)")
        for scrap in slimpad.scraps_in(row, recursive=True):
            item = _assess_scrap(slimpad, scrap)
            label = scrap.scrapName or ""
            if item.kind == "broken":
                section.broken.append(label)
            if label.startswith("[ ]"):
                section.todos.append(label)
                continue
            section.items.append(item)
        report.patients.append(section)
    return report


def _assess_scrap(slimpad: SlimPadApplication,
                  scrap: EntityObject) -> HandoffItem:
    label = scrap.scrapName or ""
    annotations = [a.annotationText for a in scrap.scrapAnnotation]
    handles = scrap.scrapMark
    if not handles:
        return HandoffItem(label, "note", None, stale=False,
                           annotations=annotations)
    try:
        resolution = extract_content(slimpad.marks, handles[0].markId)
    except (MarkResolutionError, MarkError):
        return HandoffItem(label, "broken", None, stale=False,
                           annotations=annotations)
    current = resolution.content_text()
    # A scrap is stale when its label quoted a value that has moved on.
    stale = bool(current) and current not in label and \
        _quoted_value(label) is not None and _quoted_value(label) != current
    return HandoffItem(label, "linked", current, stale=stale,
                       annotations=annotations)


def _quoted_value(label: str) -> Optional[str]:
    """The value portion of labels like ``'K 3.9'`` (test + value)."""
    parts = label.split()
    if len(parts) >= 2:
        tail = parts[-1]
        try:
            float(tail)
            return tail
        except ValueError:
            return None
    return None

"""Layout queries over a pad's freeform 2-D arrangement.

Section 3: *"We allow flexibility for placement of information elements
and bundles in two dimensions. The juxtaposition of scraps and bundles
contains implicit semantic information that we neither want to constrain
or lose."*  These helpers *recover* some of that implicit structure —
hit-testing, neighbourhoods, and row/column (gridlet) inference — without
ever constraining placement.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dmi.runtime import EntityObject
from repro.slimpad.dmi import SlimPadDMI
from repro.util.coordinates import (Coordinate, Rect, bounding_box,
                                    cluster_columns, cluster_rows)

#: Nominal extent of a scrap's visual box (scraps are sticky-note sized).
SCRAP_WIDTH = 90.0
SCRAP_HEIGHT = 22.0


def scrap_rect(scrap: EntityObject) -> Rect:
    """The visual box of a scrap at its current position."""
    pos = scrap.scrapPos or Coordinate(0, 0)
    return Rect.at(pos, SCRAP_WIDTH, SCRAP_HEIGHT)


def bundle_rect(bundle: EntityObject) -> Rect:
    """The visual box of a bundle from its position and extent."""
    pos = bundle.bundlePos or Coordinate(0, 0)
    return Rect.at(pos, bundle.bundleWidth or 0.0, bundle.bundleHeight or 0.0)


def hit_test(bundle: EntityObject, point: Coordinate) -> Optional[EntityObject]:
    """The innermost element under *point*: a scrap, a nested bundle, or
    *bundle* itself; ``None`` when the point is outside *bundle*.

    Scraps win over bundles (they render on top); later siblings win over
    earlier ones (they were placed more recently).
    """
    if not bundle_rect(bundle).contains_point(point):
        return None
    for nested in reversed(list(bundle.nestedBundle)):
        inner = hit_test(nested, point)
        if inner is not None and inner.entity_name == "Scrap":
            return inner
        if inner is not None:
            return inner
    for scrap in reversed(list(bundle.bundleContent)):
        if scrap_rect(scrap).contains_point(point):
            return scrap
    return bundle


def neighbors(scrap: EntityObject, bundle: EntityObject,
              radius: float) -> List[EntityObject]:
    """Scraps of *bundle* whose positions lie within *radius* of *scrap*,
    nearest first (juxtaposition carries meaning — this surfaces it)."""
    origin = scrap.scrapPos or Coordinate(0, 0)
    found: List[Tuple[float, EntityObject]] = []
    for other in bundle.bundleContent:
        if other == scrap:
            continue
        distance = origin.distance_to(other.scrapPos or Coordinate(0, 0))
        if distance <= radius:
            found.append((distance, other))
    found.sort(key=lambda pair: pair[0])
    return [other for _, other in found]


def infer_rows(bundle: EntityObject,
               tolerance: float = SCRAP_HEIGHT / 2) -> List[List[EntityObject]]:
    """Recover the row structure of a gridlet arrangement.

    Scraps whose y positions lie within *tolerance* are one row; each row
    is ordered left to right — e.g. the Electrolyte bundle of Fig. 4
    yields the two familiar lab-grid rows.
    """
    scraps = list(bundle.bundleContent)
    positions = [s.scrapPos or Coordinate(0, 0) for s in scraps]
    by_position = {}
    for scrap, pos in zip(scraps, positions):
        by_position.setdefault(pos.as_tuple(), []).append(scrap)
    rows = []
    for row in cluster_rows(positions, tolerance):
        ordered = []
        for pos in row:
            bucket = by_position[pos.as_tuple()]
            ordered.append(bucket.pop(0))
        rows.append(ordered)
    return rows


def infer_columns(bundle: EntityObject,
                  tolerance: float = SCRAP_WIDTH / 2) -> List[List[EntityObject]]:
    """Column-wise dual of :func:`infer_rows`."""
    scraps = list(bundle.bundleContent)
    positions = [s.scrapPos or Coordinate(0, 0) for s in scraps]
    by_position = {}
    for scrap, pos in zip(scraps, positions):
        by_position.setdefault(pos.as_tuple(), []).append(scrap)
    columns = []
    for column in cluster_columns(positions, tolerance):
        ordered = []
        for pos in column:
            bucket = by_position[pos.as_tuple()]
            ordered.append(bucket.pop(0))
        columns.append(ordered)
    return columns


def content_bounds(bundle: EntityObject) -> Optional[Rect]:
    """The bounding box of a bundle's direct contents (scraps + bundles)."""
    rects = [scrap_rect(s) for s in bundle.bundleContent]
    rects.extend(bundle_rect(b) for b in bundle.nestedBundle)
    return bounding_box(rects)


def autosize(dmi: SlimPadDMI, bundle: EntityObject,
             margin: float = 10.0) -> None:
    """Grow a bundle to fit its contents (never shrinks below content)."""
    bounds = content_bounds(bundle)
    if bounds is None:
        return
    box = bounds.inflated(margin)
    origin = bundle.bundlePos or Coordinate(0, 0)
    width = max(bundle.bundleWidth or 0.0, box.right - origin.x)
    height = max(bundle.bundleHeight or 0.0, box.bottom - origin.y)
    dmi.Update_bundleWidth(bundle, width)
    dmi.Update_bundleHeight(bundle, height)


def overlapping_scraps(bundle: EntityObject) -> List[Tuple[EntityObject,
                                                           EntityObject]]:
    """Pairs of directly contained scraps whose boxes overlap."""
    scraps = list(bundle.bundleContent)
    pairs = []
    for i, first in enumerate(scraps):
        first_rect = scrap_rect(first)
        for second in scraps[i + 1:]:
            if first_rect.intersects(scrap_rect(second)):
                pairs.append((first, second))
    return pairs

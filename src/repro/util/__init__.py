"""Shared utilities: identifiers, 2-D geometry, events, and text helpers."""

from repro.util.coordinates import (
    ORIGIN,
    Coordinate,
    Rect,
    bounding_box,
    cluster_columns,
    cluster_rows,
)
from repro.util.events import Event, EventBus
from repro.util.identifiers import IdGenerator, split_id
from repro.util.text import (
    Token,
    excerpt,
    line_col_to_offset,
    line_spans,
    offset_to_line_col,
    shorten,
    tokenize,
)

__all__ = [
    "ORIGIN",
    "Coordinate",
    "Rect",
    "bounding_box",
    "cluster_columns",
    "cluster_rows",
    "Event",
    "EventBus",
    "IdGenerator",
    "split_id",
    "Token",
    "excerpt",
    "line_col_to_offset",
    "line_spans",
    "offset_to_line_col",
    "shorten",
    "tokenize",
]

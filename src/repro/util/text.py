"""Text utilities shared by base-document models and the concordance workload.

Sub-document addressing needs character offsets, line/column conversion, and
word tokenization with positions.  All functions operate on plain strings and
never mutate their input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple

_WORD_RE = re.compile(r"[A-Za-z][A-Za-z'\-]*")


@dataclass(frozen=True)
class Token:
    """A word with its character span ``[start, end)`` in the source text."""

    text: str
    start: int
    end: int

    def normalized(self) -> str:
        """Lower-case form used for concordance keys."""
        return self.text.lower()


def tokenize(text: str) -> Iterator[Token]:
    """Yield word tokens (letters, apostrophes, hyphens) with their spans."""
    for match in _WORD_RE.finditer(text):
        yield Token(match.group(0), match.start(), match.end())


def line_spans(text: str) -> List[Tuple[int, int]]:
    """Return ``[start, end)`` character spans of each line (sans newline)."""
    spans: List[Tuple[int, int]] = []
    start = 0
    for i, ch in enumerate(text):
        if ch == "\n":
            spans.append((start, i))
            start = i + 1
    spans.append((start, len(text)))
    return spans


def offset_to_line_col(text: str, offset: int) -> Tuple[int, int]:
    """Convert a character offset into 0-based ``(line, column)``.

    Raises :class:`ValueError` when *offset* falls outside ``[0, len(text)]``.
    """
    if offset < 0 or offset > len(text):
        raise ValueError(f"offset {offset} outside text of length {len(text)}")
    line = text.count("\n", 0, offset)
    last_newline = text.rfind("\n", 0, offset)
    column = offset - (last_newline + 1)
    return line, column


def line_col_to_offset(text: str, line: int, col: int) -> int:
    """Convert 0-based ``(line, column)`` to a character offset.

    Raises :class:`ValueError` when the position does not exist.
    """
    spans = line_spans(text)
    if line < 0 or line >= len(spans):
        raise ValueError(f"line {line} outside text with {len(spans)} lines")
    start, end = spans[line]
    if col < 0 or start + col > end:
        raise ValueError(f"column {col} outside line {line}")
    return start + col


def excerpt(text: str, start: int, end: int, context: int = 20,
            ellipsis: str = "…") -> str:
    """Return ``text[start:end]`` with up to *context* chars either side.

    Truncated sides are flagged with *ellipsis*.  Used when a scrap caches a
    preview of the marked base content.
    """
    if start < 0 or end > len(text) or start > end:
        raise ValueError(f"bad span [{start}, {end}) for text of length {len(text)}")
    lo = max(0, start - context)
    hi = min(len(text), end + context)
    prefix = ellipsis if lo > 0 else ""
    suffix = ellipsis if hi < len(text) else ""
    return f"{prefix}{text[lo:hi]}{suffix}"


def shorten(text: str, limit: int, ellipsis: str = "…") -> str:
    """Clip *text* to at most *limit* characters, appending *ellipsis*."""
    if limit < 1:
        raise ValueError("limit must be >= 1")
    if len(text) <= limit:
        return text
    return text[: max(1, limit - len(ellipsis))] + ellipsis

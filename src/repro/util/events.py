"""A small synchronous event bus.

The viewing-style coordinators (Fig. 6) and the simulated base applications
communicate through events: "selection changed", "document opened",
"element highlighted".  Keeping this decoupled mirrors the paper's concern
that base applications are *outside the box* — the superimposed layer only
observes the narrow signals an application chooses to emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping

Handler = Callable[["Event"], None]


@dataclass(frozen=True)
class Event:
    """An occurrence published on the bus.

    ``topic`` names the kind of event (dotted names by convention, e.g.
    ``"base.selection"``); ``payload`` carries arbitrary read-only data.
    """

    topic: str
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Payload lookup with a default (dict.get semantics)."""
        return self.payload.get(key, default)


class EventBus:
    """Synchronous publish/subscribe with exact-topic and wildcard handlers.

    Subscribing to ``"*"`` receives every event.  Handlers run in
    subscription order; a handler raising propagates to the publisher (no
    silent swallowing — errors should never pass silently).
    """

    def __init__(self) -> None:
        self._handlers: Dict[str, List[Handler]] = {}
        self._history: List[Event] = []
        self.record_history = False

    def subscribe(self, topic: str, handler: Handler) -> Callable[[], None]:
        """Register *handler* for *topic*; returns an unsubscribe callable."""
        self._handlers.setdefault(topic, []).append(handler)

        def unsubscribe() -> None:
            handlers = self._handlers.get(topic, [])
            if handler in handlers:
                handlers.remove(handler)

        return unsubscribe

    def publish(self, topic: str, **payload: Any) -> Event:
        """Publish an event, invoking matching handlers synchronously."""
        event = Event(topic, dict(payload))
        if self.record_history:
            self._history.append(event)
        for handler in list(self._handlers.get(topic, [])):
            handler(event)
        for handler in list(self._handlers.get("*", [])):
            handler(event)
        return event

    @property
    def history(self) -> List[Event]:
        """Events published while ``record_history`` was on (for tests)."""
        return list(self._history)

    def clear_history(self) -> None:
        """Forget all recorded events."""
        self._history.clear()

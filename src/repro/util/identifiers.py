"""Deterministic identifier generation.

The paper's components (Mark Manager, TRIM, DMI) all mint identifiers for
the objects they manage (``markId``, resource ids, entity ids).  For
reproducibility we avoid wall-clock or random ids: every subsystem owns an
:class:`IdGenerator` that produces ``prefix-000001``-style ids in creation
order.  Two runs of the same program produce identical ids, which keeps
persisted files diffable and makes tests exact.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator

_ID_RE = re.compile(r"^(?P<prefix>[A-Za-z][A-Za-z0-9_.]*)-(?P<seq>\d+)$")


class IdGenerator:
    """Mint sequential ids per prefix, e.g. ``mark-000001``, ``mark-000002``.

    A single generator tracks independent counters for each prefix, so one
    generator instance can serve a whole subsystem::

        ids = IdGenerator()
        ids.next("mark")    # 'mark-000001'
        ids.next("bundle")  # 'bundle-000001'
        ids.next("mark")    # 'mark-000002'
    """

    def __init__(self, width: int = 6) -> None:
        if width < 1:
            raise ValueError("id width must be >= 1")
        self._width = width
        self._counters: Dict[str, int] = {}

    def next(self, prefix: str) -> str:
        """Return the next id for *prefix*."""
        if not prefix or not prefix[0].isalpha():
            raise ValueError(f"invalid id prefix: {prefix!r}")
        count = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = count
        return f"{prefix}-{count:0{self._width}d}"

    def stream(self, prefix: str) -> Iterator[str]:
        """Yield ids for *prefix* forever."""
        while True:
            yield self.next(prefix)

    def observe(self, identifier: str) -> None:
        """Advance the counter past an externally supplied id.

        Used when loading persisted data: after observing every stored id,
        newly minted ids never collide with loaded ones.
        """
        parsed = _ID_RE.match(identifier)
        if parsed is None:
            return
        prefix = parsed.group("prefix")
        seq = int(parsed.group("seq"))
        if seq > self._counters.get(prefix, 0):
            self._counters[prefix] = seq

    def peek(self, prefix: str) -> int:
        """Return how many ids have been minted (or observed) for *prefix*."""
        return self._counters.get(prefix, 0)


def split_id(identifier: str) -> "tuple[str, int]":
    """Split ``'mark-000042'`` into ``('mark', 42)``.

    Raises :class:`ValueError` for ids not produced by :class:`IdGenerator`.
    """
    parsed = _ID_RE.match(identifier)
    if parsed is None:
        raise ValueError(f"not a generated id: {identifier!r}")
    return parsed.group("prefix"), int(parsed.group("seq"))

"""Tolerant environment-variable parsing for test/tooling knobs.

Harness knobs like ``CRASH_POINTS`` are read at *import* time by test
modules; a typo'd value (``CRASH_POINTS=lots``) used to raise
``ValueError`` during collection and abort the whole module — the worst
possible failure mode for a knob whose entire job is to run *more*
tests.  :func:`env_int` falls back to the default with a warning
instead, so a malformed knob can never mask the suite it configures.
"""

from __future__ import annotations

import os
import warnings


def env_int(name: str, default: int) -> int:
    """``int(os.environ[name])`` with a warning-not-crash fallback.

    Returns *default* when the variable is unset, empty, or not a valid
    integer literal (a warning identifies the rejected value).
    Surrounding whitespace is tolerated, like ``int()`` itself.
    """
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        return int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {name}={raw!r}; using default {default}",
            RuntimeWarning, stacklevel=2)
        return default

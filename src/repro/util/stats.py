"""Small latency-statistics helpers shared by the replay harness, the
service registry, and the benchmark suite.

One canonical p50/p95/p99 implementation: the resharding and service
benches used to carry private copies, and the recovery work (cold-open
latency, per-op replay histograms) would have added two more.  The
benches run with ``PYTHONPATH=src``, so hoisting the helper here gives
every consumer — library code and harness code alike — the same
nearest-rank percentile with no duplication.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["percentiles_us"]


def percentiles_us(latencies_s: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 of a latency sample in seconds, reported in µs.

    Nearest-rank on the sorted sample; an empty sample reports zeros so
    callers can emit the block unconditionally.
    """
    if not latencies_s:
        return {"p50_us": 0.0, "p95_us": 0.0, "p99_us": 0.0}
    ordered = sorted(latencies_s)
    last = len(ordered) - 1

    def pct(p: float) -> float:
        return round(ordered[min(last, round(p / 100 * last))] * 1e6, 1)

    return {"p50_us": pct(50), "p95_us": pct(95), "p99_us": pct(99)}

"""2-D geometry for SLIMPad's freeform layout.

SLIMPad lets the user place scraps and bundles anywhere in two dimensions;
the juxtaposition of elements carries implicit meaning (Section 3 of the
paper).  These small immutable value types carry positions and extents and
support the geometric queries the layout engine needs (containment,
intersection, distance, alignment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class Coordinate:
    """A point on the pad.  Matches ``Coordinate`` in the Fig. 3 model."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Coordinate":
        """Return a copy shifted by (*dx*, *dy*)."""
        return Coordinate(self.x + dx, self.y + dy)

    def distance_to(self, other: "Coordinate") -> float:
        """Euclidean distance between two points."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


ORIGIN = Coordinate(0.0, 0.0)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle: position plus width/height.

    Bundles in Fig. 3 carry ``bundlePos``, ``bundleWidth`` and
    ``bundleHeight``; a :class:`Rect` packages the three for geometry.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(f"negative extent: {self.width}x{self.height}")

    @classmethod
    def at(cls, pos: Coordinate, width: float, height: float) -> "Rect":
        """Build a rect whose top-left corner is *pos*."""
        return cls(pos.x, pos.y, width, height)

    @property
    def position(self) -> Coordinate:
        """Top-left corner."""
        return Coordinate(self.x, self.y)

    @property
    def right(self) -> float:
        """The x coordinate of the right edge."""
        return self.x + self.width

    @property
    def bottom(self) -> float:
        """The y coordinate of the bottom edge."""
        return self.y + self.height

    @property
    def center(self) -> Coordinate:
        """The midpoint of the rect."""
        return Coordinate(self.x + self.width / 2, self.y + self.height / 2)

    @property
    def area(self) -> float:
        """Width times height."""
        return self.width * self.height

    def contains_point(self, point: Coordinate) -> bool:
        """True when *point* lies inside or on the boundary."""
        return (self.x <= point.x <= self.right
                and self.y <= point.y <= self.bottom)

    def contains_rect(self, other: "Rect") -> bool:
        """True when *other* lies entirely inside this rect."""
        return (self.x <= other.x and self.y <= other.y
                and other.right <= self.right and other.bottom <= self.bottom)

    def intersects(self, other: "Rect") -> bool:
        """True when the two rects overlap (sharing an edge counts)."""
        return not (other.x > self.right or other.right < self.x
                    or other.y > self.bottom or other.bottom < self.y)

    def union(self, other: "Rect") -> "Rect":
        """Smallest rect covering both."""
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        right = max(self.right, other.right)
        bottom = max(self.bottom, other.bottom)
        return Rect(x, y, right - x, bottom - y)

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy shifted by (*dx*, *dy*)."""
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def inflated(self, margin: float) -> "Rect":
        """Return a copy grown by *margin* on every side (clamped at 0)."""
        width = max(0.0, self.width + 2 * margin)
        height = max(0.0, self.height + 2 * margin)
        return Rect(self.x - margin, self.y - margin, width, height)


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """Smallest rect covering all of *rects*; ``None`` for an empty input."""
    box: Optional[Rect] = None
    for rect in rects:
        box = rect if box is None else box.union(rect)
    return box


def cluster_rows(points: List[Coordinate], tolerance: float) -> List[List[Coordinate]]:
    """Group points whose y coordinates lie within *tolerance* of each other.

    Used to recover the implicit row structure of a "gridlet" arrangement of
    scraps (the Electrolyte bundle in Fig. 4): scraps the user lined up
    horizontally are returned together, each row sorted left to right.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    rows: List[List[Coordinate]] = []
    for point in sorted(points, key=lambda p: (p.y, p.x)):
        if rows and abs(rows[-1][0].y - point.y) <= tolerance:
            rows[-1].append(point)
        else:
            rows.append([point])
    for row in rows:
        row.sort(key=lambda p: p.x)
    return rows


def cluster_columns(points: List[Coordinate], tolerance: float) -> List[List[Coordinate]]:
    """Group points whose x coordinates lie within *tolerance* of each other.

    The column-wise dual of :func:`cluster_rows`; each column is sorted top
    to bottom.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    columns: List[List[Coordinate]] = []
    for point in sorted(points, key=lambda p: (p.x, p.y)):
        if columns and abs(columns[-1][0].x - point.x) <= tolerance:
            columns[-1].append(point)
        else:
            columns.append([point])
    for column in columns:
        column.sort(key=lambda p: p.y)
    return columns

"""repro — a reproduction of *Bundles in Captivity* (ICDE 2001).

A generic superimposed-information system and the SLIMPad application:

- :mod:`repro.triples` — TRIM, the triple manager (store, queries, views,
  XML persistence, undo)
- :mod:`repro.metamodel` — models/schemas/instances described by the SLIM
  metamodel, conformance checking, cross-model mappings, RDFS rendering
- :mod:`repro.dmi` — Data Manipulation Interfaces: spec language, runtime,
  and automatic generation
- :mod:`repro.marks` — the Mark Manager, mark types, modules, behaviours
- :mod:`repro.base` — six simulated base applications (spreadsheet, XML,
  PDF, HTML, Word, slides) behind the paper's narrow interface
- :mod:`repro.slimpad` — SLIMPad: bundles, scraps, freeform layout,
  templates, rendering
- :mod:`repro.viewing` — the three viewing styles
- :mod:`repro.baselines` — related-work comparators and ablation stores
- :mod:`repro.workloads` — ICU census, rounds worksheets, concordances

Quickstart::

    from repro import DocumentLibrary, SlimPadApplication, standard_mark_manager
    from repro.base.spreadsheet import Workbook

    library = DocumentLibrary()
    meds = library.add(Workbook("meds.xls"))
    meds.add_sheet("Current").set_row(2, ["Lasix", "40mg", "IV", "BID"])

    manager = standard_mark_manager(library)
    pad = SlimPadApplication(manager)
    pad.new_pad("Rounds")
    excel = manager.application("spreadsheet")
    excel.open_workbook("meds.xls")
    excel.select_range("A2:D2")
    scrap = pad.create_scrap_from_selection(excel, label="Lasix 40mg")
    pad.double_click(scrap)   # opens meds.xls with A2:D2 highlighted
"""

from repro.base import BaseApplication, BaseDocument, DocumentLibrary, \
    standard_mark_manager
from repro.dmi import DmiRuntime, ModelSpec, generate_dmi_class
from repro.errors import ReproError
from repro.marks import Mark, MarkManager, Resolution
from repro.metamodel import (ConformanceChecker, InstanceSpace,
                             ModelDefinition, SchemaDefinition)
from repro.slimpad import (SlimPadApplication, SlimPadDMI, render_svg,
                           render_text)
from repro.triples import (Literal, Resource, Triple, TripleStore,
                           TrimManager, triple)
from repro.util import Coordinate, Rect

__version__ = "1.0.0"

__all__ = [
    "BaseApplication",
    "BaseDocument",
    "DocumentLibrary",
    "standard_mark_manager",
    "DmiRuntime",
    "ModelSpec",
    "generate_dmi_class",
    "ReproError",
    "Mark",
    "MarkManager",
    "Resolution",
    "ConformanceChecker",
    "InstanceSpace",
    "ModelDefinition",
    "SchemaDefinition",
    "SlimPadApplication",
    "SlimPadDMI",
    "render_svg",
    "render_text",
    "Literal",
    "Resource",
    "Triple",
    "TripleStore",
    "TrimManager",
    "triple",
    "Coordinate",
    "Rect",
    "__version__",
]

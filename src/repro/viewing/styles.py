"""The three viewing styles for superimposed applications (Fig. 6).

- **Simultaneous viewing** — user sees the superimposed app and the base
  app side by side; de-referencing a scrap surfaces the base window with
  the element highlighted.  SLIMPad's normal mode.
- **Enhanced base-layer viewing** — the base application itself is
  enhanced with superimposed functionality (Third Voice's in-browser
  annotations); there is no separate superimposed window.
- **Independent viewing** — the base application is hidden; the
  superimposed app borrows its functionality to show marked content in
  place.

Each coordinator exposes ``show(...)`` returning a :class:`ViewOutcome`
describing exactly what the user ends up seeing — which windows are up,
and what content is presented where.  Benchmarks and tests assert on
these observable differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dmi.runtime import EntityObject
from repro.marks.behaviors import display_in_place
from repro.marks.modules import ROLE_EXTRACTOR
from repro.slimpad.app import SlimPadApplication


@dataclass(frozen=True)
class ViewOutcome:
    """What the user sees after a viewing operation."""

    style: str
    content: object            # what was presented
    presented_in: str          # 'base-window' | 'superimposed-window' | 'base-overlay'
    windows_visible: "tuple[str, ...]"   # which windows are on screen
    base_surfaced: bool        # did a base window come to the front?


class SimultaneousViewing:
    """Two windows; de-reference surfaces the base app next to the pad."""

    style = "simultaneous"

    def __init__(self, slimpad: SlimPadApplication) -> None:
        self.slimpad = slimpad

    def show(self, scrap: EntityObject) -> ViewOutcome:
        """De-reference *scrap* in context; both windows stay visible."""
        resolution = self.slimpad.double_click(scrap)
        self.slimpad.visible = True
        base_app = self.slimpad.marks.application(
            self.slimpad.marks.module_for(resolution.mark.mark_type)
            .application_kind)
        windows = ["slimpad"]
        if base_app.visible:
            windows.append(base_app.kind)
        return ViewOutcome(self.style, resolution.content, "base-window",
                           tuple(windows), base_surfaced=base_app.in_front)


class IndependentViewing:
    """Base apps hidden; content is borrowed into the superimposed window."""

    style = "independent"

    def __init__(self, slimpad: SlimPadApplication) -> None:
        self.slimpad = slimpad

    def show(self, scrap: EntityObject, width: int = 60) -> ViewOutcome:
        """Render the marked content in place on the pad."""
        handles = scrap.scrapMark
        if handles:
            content: object = display_in_place(
                self.slimpad.marks, handles[0].markId, width=width)
            resolution = self.slimpad.marks.resolve(handles[0].markId,
                                                    role=ROLE_EXTRACTOR)
            base_kind = resolution.application_kind
            base_app = self.slimpad.marks.application(base_kind)
            base_app.send_to_back()
        else:
            content = scrap.scrapName or ""
        return ViewOutcome(self.style, content, "superimposed-window",
                           ("slimpad",), base_surfaced=False)


@dataclass
class Overlay:
    """One annotation overlaid on a base document (Third Voice style)."""

    address: object
    text: str
    author: str = ""


class EnhancedBaseLayerViewing:
    """A base application enhanced with superimposed functionality.

    The user sees only the base window; annotations attach to addresses in
    the open document and are presented *with* the document.  This wraps
    any of our base applications without modifying them — the "added
    superimposed functionality" box of Fig. 6.
    """

    style = "enhanced-base-layer"

    def __init__(self, base_app) -> None:
        self.base_app = base_app
        self._overlays: Dict[str, List[Overlay]] = {}

    def annotate_selection(self, text: str, author: str = "") -> Overlay:
        """Attach an annotation to the current selection."""
        address = self.base_app.current_selection_address()
        document = self.base_app.require_document().name
        overlay = Overlay(address, text, author)
        self._overlays.setdefault(document, []).append(overlay)
        return overlay

    def overlays_for(self, document_name: str) -> List[Overlay]:
        """Every annotation on one document, in creation order."""
        return list(self._overlays.get(document_name, []))

    def show(self, document_name: str) -> ViewOutcome:
        """Open the document with its annotations overlaid."""
        self.base_app.open_document(document_name)
        self.base_app.bring_to_front()
        overlays = self.overlays_for(document_name)
        content = {"document": document_name,
                   "annotations": [(str(o.address), o.text) for o in overlays]}
        return ViewOutcome(self.style, content, "base-overlay",
                           (self.base_app.kind,), base_surfaced=True)

"""The three viewing styles of Fig. 6, plus the window session."""

from repro.viewing.session import WindowSession
from repro.viewing.styles import (EnhancedBaseLayerViewing,
                                  IndependentViewing, Overlay,
                                  SimultaneousViewing, ViewOutcome)

__all__ = [
    "WindowSession",
    "EnhancedBaseLayerViewing",
    "IndependentViewing",
    "Overlay",
    "SimultaneousViewing",
    "ViewOutcome",
]

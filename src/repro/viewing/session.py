"""A window session: z-order and focus over the simulated desktop.

The viewing styles of Fig. 6 talk about windows — "two windows active on
the computer screen", bringing the base window forward, hiding it.  The
:class:`WindowSession` makes that desktop explicit: it tracks every
window (the SLIMPad window plus one per base application), their z-order,
and the focused window, and exposes the queries the style tests and
benches assert on ("what does the user actually see right now?").
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SlimPadError
from repro.marks.manager import MarkManager
from repro.slimpad.app import SlimPadApplication


class WindowSession:
    """Tracks visibility, z-order, and focus across every window."""

    SLIMPAD = "slimpad"

    def __init__(self, slimpad: SlimPadApplication) -> None:
        self.slimpad = slimpad
        self._z_order: List[str] = [self.SLIMPAD]   # back to front

    # -- window handles ------------------------------------------------------------

    def _window_names(self) -> List[str]:
        names = [self.SLIMPAD]
        manager: MarkManager = self.slimpad.marks
        names.extend(sorted(manager._applications))
        return names

    def _is_visible(self, name: str) -> bool:
        if name == self.SLIMPAD:
            return self.slimpad.visible
        return self.slimpad.marks.application(name).visible

    # -- operations ------------------------------------------------------------------

    def focus(self, name: str) -> None:
        """Bring one window to the front (opening/surfacing it)."""
        if name not in self._window_names():
            raise SlimPadError(f"no window named {name!r}")
        if name == self.SLIMPAD:
            self.slimpad.visible = True
            self.slimpad.in_front = True
        else:
            app = self.slimpad.marks.application(name)
            app.visible = True
            app.bring_to_front()
            self.slimpad.in_front = False
        if name in self._z_order:
            self._z_order.remove(name)
        self._z_order.append(name)
        # Everything else yields the front.
        for other in self._window_names():
            if other == name:
                continue
            if other == self.SLIMPAD:
                self.slimpad.in_front = False
            else:
                self.slimpad.marks.application(other).in_front = False
        if name == self.SLIMPAD:
            self.slimpad.in_front = True

    def close(self, name: str) -> None:
        """Hide one window entirely."""
        if name == self.SLIMPAD:
            self.slimpad.visible = False
            self.slimpad.in_front = False
        else:
            self.slimpad.marks.application(name).hide()
        if name in self._z_order:
            self._z_order.remove(name)

    def sync_from_apps(self) -> None:
        """Adopt window state changed behind our back (e.g. a resolution
        surfaced a base app): surfaced apps come to the front."""
        for name in self._window_names():
            if name == self.SLIMPAD:
                continue
            app = self.slimpad.marks.application(name)
            if app.in_front and self.front() != name:
                if name in self._z_order:
                    self._z_order.remove(name)
                self._z_order.append(name)

    # -- queries -----------------------------------------------------------------------

    def visible_windows(self) -> List[str]:
        """Visible windows, back to front."""
        ordered = [name for name in self._z_order if self._is_visible(name)]
        for name in self._window_names():
            if self._is_visible(name) and name not in ordered:
                ordered.insert(0, name)
        return ordered

    def front(self) -> Optional[str]:
        """The frontmost visible window, if any."""
        stack = self.visible_windows()
        return stack[-1] if stack else None

    def describe(self) -> str:
        """One line: ``'[ xml | slimpad* ]'`` (``*`` marks the front)."""
        stack = self.visible_windows()
        if not stack:
            return "[ ]"
        labelled = [f"{name}*" if name == stack[-1] else name
                    for name in stack]
        return "[ " + " | ".join(labelled) + " ]"

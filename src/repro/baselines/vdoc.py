"""Virtual documents (Mirage-III style) baseline (Section 5).

*"Mirage-III is a digital library system that allows users to create
virtual documents (VDOCs) that contain span links to other documents.
When a VDOC is rendered, the span links are resolved and the information
they reference is displayed. The main difference between SLIMPad and
virtual documents is that SLIMPad can contain information not present in
the underlying documents."*

A :class:`VirtualDocument` is therefore an ordered sequence of **span
links only** — attempting to add free text raises, which is precisely the
limitation the paper contrasts against (SLIMPad's note scraps and labels).
Rendering resolves every span through the Mark Manager's extractor role.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import BaseLayerError, MarkResolutionError
from repro.marks.manager import MarkManager
from repro.marks.mark import Mark
from repro.marks.modules import ROLE_EXTRACTOR


@dataclass(frozen=True)
class SpanLink:
    """One link to a span in an underlying document (a mark id)."""

    mark_id: str


class VirtualDocument:
    """An ordered composition of span links, rendered by resolution."""

    def __init__(self, name: str, marks: MarkManager) -> None:
        if not name:
            raise BaseLayerError("virtual document needs a name")
        self.name = name
        self._marks = marks
        self._links: List[SpanLink] = []

    def append_link(self, mark: Mark) -> SpanLink:
        """Append a span link for an existing mark."""
        if mark.mark_id not in self._marks:
            self._marks.adopt(mark)
        link = SpanLink(mark.mark_id)
        self._links.append(link)
        return link

    def append_text(self, text: str) -> None:
        """VDOCs cannot hold original content — always raises.

        This is the documented contrast with SLIMPad (which *can* hold
        information not present in the underlying documents).
        """
        raise BaseLayerError(
            "virtual documents contain only span links; "
            "original content is not supported (see SLIMPad for that)")

    @property
    def links(self) -> List[SpanLink]:
        """The document's span links, in composition order."""
        return list(self._links)

    def __len__(self) -> int:
        return len(self._links)

    def render(self, separator: str = "\n") -> str:
        """Resolve every span link and concatenate the referenced text."""
        pieces = []
        for link in self._links:
            resolution = self._marks.resolve(link.mark_id, role=ROLE_EXTRACTOR)
            pieces.append(resolution.content_text())
        return separator.join(pieces)

    def render_report(self) -> "List[tuple[str, str]]":
        """(address, content) pairs — the rendered document with sources."""
        report = []
        for link in self._links:
            resolution = self._marks.resolve(link.mark_id, role=ROLE_EXTRACTOR)
            report.append((resolution.address, resolution.content_text()))
        return report

    def broken_links(self) -> List[SpanLink]:
        """Links whose spans no longer resolve (underlying docs changed)."""
        broken = []
        for link in self._links:
            try:
                self._marks.resolve(link.mark_id, role=ROLE_EXTRACTOR)
            except MarkResolutionError:
                broken.append(link)
        return broken

"""Microsoft-Monikers-style self-resolving addresses baseline (Section 5).

*"Both our architecture and Monikers provide application-interpreted
addresses. … The difference between our architecture and Monikers is that
we use Mark Managers to resolve Marks instead of the Mark itself, which
allows for multiple ways to resolve marks via different managers."*

A :class:`Moniker` carries its resolution *behaviour* inside the address
object, fixed at creation.  Resolving a moniker a second way requires
constructing a **new** moniker (and re-addressing the element), whereas a
Mark Manager resolves the same inert mark through any registered module.
The extensibility bench (C-4) measures this difference directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import MarkResolutionError
from repro.base.application import DocumentLibrary

#: A moniker's bound behaviour: library -> content.
Binding = Callable[[DocumentLibrary], object]


@dataclass(frozen=True)
class Moniker:
    """An address that knows how to resolve itself — and only one way."""

    moniker_id: str
    display_name: str
    _binding: Binding

    def bind(self, library: DocumentLibrary) -> object:
        """Resolve this moniker against a library (COM's BindToObject)."""
        try:
            return self._binding(library)
        except Exception as exc:
            raise MarkResolutionError(
                f"moniker {self.display_name!r} failed to bind: {exc}") from exc


class MonikerFactory:
    """Mint monikers for the base documents we simulate.

    Each factory method bakes one behaviour into the address.  There is no
    way to reinterpret an existing moniker differently — that is the
    design point under comparison.
    """

    def __init__(self) -> None:
        self._counter = 0

    def _next_id(self) -> str:
        self._counter += 1
        return f"moniker-{self._counter:06d}"

    def excel_range_viewer(self, file_name: str, sheet_name: str,
                           range_text: str) -> Moniker:
        """A moniker that yields the range's values."""
        from repro.base.spreadsheet.workbook import CellRange, Workbook

        def binding(library: DocumentLibrary) -> object:
            workbook = library.get(file_name)
            assert isinstance(workbook, Workbook)
            return workbook.sheet(sheet_name).range_values(
                CellRange.parse(range_text))

        return Moniker(self._next_id(),
                       f"{file_name}!{sheet_name}!{range_text}", binding)

    def excel_range_as_text(self, file_name: str, sheet_name: str,
                            range_text: str) -> Moniker:
        """The *same element* with a different behaviour needs a new
        moniker — the address must be restated."""
        inner = self.excel_range_viewer(file_name, sheet_name, range_text)

        def binding(library: DocumentLibrary) -> object:
            rows = inner.bind(library)
            return "\n".join(" ".join(str(c) for c in row if c is not None)
                             for row in rows)

        return Moniker(self._next_id(), inner.display_name + " (text)", binding)

    def xml_element_text(self, file_name: str, xml_path: str) -> Moniker:
        """A moniker yielding an XML element's text."""
        from repro.base.xmldoc.dom import XmlDocument
        from repro.base.xmldoc.xpath import resolve_path

        def binding(library: DocumentLibrary) -> object:
            document = library.get(file_name)
            assert isinstance(document, XmlDocument)
            return resolve_path(document.root, xml_path).full_text()

        return Moniker(self._next_id(), f"{file_name}#{xml_path}", binding)

    def composite(self, first: Moniker, second: Moniker) -> Moniker:
        """Composite monikers (COM's other hallmark): bind both, pair up."""
        def binding(library: DocumentLibrary) -> object:
            return (first.bind(library), second.bind(library))

        return Moniker(self._next_id(),
                       f"({first.display_name} ∘ {second.display_name})",
                       binding)

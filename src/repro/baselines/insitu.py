"""In-situ annotation baseline (Section 5).

*"In most annotation systems, users manipulate, create, and view
annotations in-situ (annotations are available only while the document is
being displayed)."*  — Adobe Acrobat comments, Microsoft Word Comments.

:class:`InSituAnnotationSystem` models exactly that contract over our
Word documents: annotations are stored *inside* the document, can only be
created or read while the document is open in the application, and are
navigated next/previous within one document (the Word Comments behaviour
the paper cites).  The contrast with SLIMPad: no cross-document
organization, no access apart from the document, no selection/regrouping.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import BaseLayerError
from repro.base.worddoc.app import WordApp
from repro.base.worddoc.document import WordComment, WordDocument


class InSituAnnotationSystem:
    """Word-Comments-style annotation bound to one application window."""

    def __init__(self, app: WordApp) -> None:
        self.app = app
        self._cursor: Optional[int] = None  # index into comments_in_order()

    def _open_doc(self) -> WordDocument:
        document = self.app.current_document
        if document is None:
            raise BaseLayerError(
                "in-situ annotation requires the document to be displayed")
        assert isinstance(document, WordDocument)
        return document

    def annotate_selection(self, text: str, author: str = "") -> WordComment:
        """Comment on the current selection (document must be open)."""
        document = self._open_doc()
        address = self.app.current_selection_address()
        comment = WordComment(address.paragraph, address.start,
                              address.end, text, author)
        document.add_comment(comment)
        return comment

    def comments(self) -> List[WordComment]:
        """The open document's comments, in document order."""
        return self._open_doc().comments_in_order()

    # -- next/previous navigation (the Microsoft Comments behaviour) -------------

    def next_comment(self) -> WordComment:
        """Advance to the next comment in the open document (wraps)."""
        ordered = self.comments()
        if not ordered:
            raise BaseLayerError("document has no comments")
        self._cursor = 0 if self._cursor is None \
            else (self._cursor + 1) % len(ordered)
        return self._select(ordered[self._cursor])

    def previous_comment(self) -> WordComment:
        """Step back to the previous comment (wraps)."""
        ordered = self.comments()
        if not ordered:
            raise BaseLayerError("document has no comments")
        self._cursor = len(ordered) - 1 if self._cursor is None \
            else (self._cursor - 1) % len(ordered)
        return self._select(ordered[self._cursor])

    def _select(self, comment: WordComment) -> WordComment:
        self.app.select_span(comment.paragraph, comment.start, comment.end)
        return comment

    # -- the limitation SLIMPad lifts ---------------------------------------------

    def close_document(self) -> None:
        """Closing the window: annotations become unreachable through the
        system (they live only in the displayed document)."""
        self.app.hide()
        self.app._document = None  # the window is gone
        self._cursor = None

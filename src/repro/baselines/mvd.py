"""Multivalent-document-style structural marks baseline (Section 5).

*"Multivalent Documents (MVD) use the structure of documents for
addressing while accommodating a wide range of document types. …
SLIMPad's approach for marking information sources is more generic than
MVD. Instead of being document-centric, we choose to be
application-centric, which means we can leverage the application's
addressing mechanisms to provide various granularities."*

This baseline implements the *document-centric* position: a single
:class:`StructuralMark` type whose address is a child-index path over a
generic tree view of the document.  Documents that expose tree structure
(XML, HTML) can be marked; documents whose natural addressing is not tree
paths (spreadsheet ranges, PDF character spans) either cannot be marked
at all or only at coarse granularity — the measurable cost of giving up
application-centric addressing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import AddressError, BaseLayerError
from repro.base.application import BaseDocument, DocumentLibrary
from repro.base.html.parser import HtmlPage
from repro.base.pdf.document import PdfDocument
from repro.base.spreadsheet.workbook import Workbook
from repro.base.worddoc.document import WordDocument
from repro.base.xmldoc.dom import XmlDocument, XmlElement


@dataclass(frozen=True)
class StructuralMark:
    """A document-centric mark: a document name + child-index path."""

    mark_id: str
    document_name: str
    path: "tuple[int, ...]"   # child indexes from the root, 0-based


@dataclass(frozen=True)
class TreeNode:
    """One node of the generic tree view."""

    label: str
    content: str
    children: "tuple[TreeNode, ...]"


def tree_view(document: BaseDocument) -> TreeNode:
    """The generic tree an MVD-style system sees for *document*.

    - XML/HTML: the real element tree (full granularity).
    - Word: document -> paragraphs (paragraph granularity only).
    - PDF: document -> pages -> lines (line granularity; no char spans).
    - Spreadsheets: **no tree** — raises.  A grid has no natural
      child-index decomposition; this is the baseline's blind spot.
    """
    if isinstance(document, (XmlDocument, HtmlPage)):
        return _element_tree(document.root)
    if isinstance(document, WordDocument):
        children = tuple(TreeNode(f"paragraph[{i + 1}]", text, ())
                         for i, text in enumerate(document.paragraphs))
        return TreeNode(document.name, "", children)
    if isinstance(document, PdfDocument):
        pages = []
        for page in document.pages:
            lines = tuple(TreeNode(f"line[{i + 1}]", line, ())
                          for i, line in enumerate(page.lines))
            pages.append(TreeNode(f"page[{page.number}]", "", lines))
        return TreeNode(document.name, "", tuple(pages))
    if isinstance(document, Workbook):
        raise BaseLayerError(
            "document-centric addressing has no tree for spreadsheets; "
            "range granularity requires application-centric marks")
    raise BaseLayerError(
        f"no tree view for document kind {document.kind!r}")


def _element_tree(element: XmlElement) -> TreeNode:
    return TreeNode(element.tag, element.text,
                    tuple(_element_tree(c) for c in element.children))


class MvdMarker:
    """Create and resolve structural marks over a document library."""

    def __init__(self, library: DocumentLibrary) -> None:
        self.library = library
        self._counter = 0

    def mark(self, document_name: str, path: List[int]) -> StructuralMark:
        """Mark the node at *path* (validating it exists)."""
        self._node_at(document_name, tuple(path))  # raises when absent
        self._counter += 1
        return StructuralMark(f"smark-{self._counter:06d}",
                              document_name, tuple(path))

    def resolve(self, mark: StructuralMark) -> TreeNode:
        """The tree node a structural mark addresses."""
        return self._node_at(mark.document_name, mark.path)

    def _node_at(self, document_name: str, path: "tuple[int, ...]") -> TreeNode:
        node = tree_view(self.library.get(document_name))
        for index in path:
            if index < 0 or index >= len(node.children):
                raise AddressError(
                    f"path {path} leaves the tree at {node.label!r}")
            node = node.children[index]
        return node

    def finest_granularity(self, document_name: str) -> str:
        """What the finest addressable unit is for this document kind.

        Reported by the comparison bench: application-centric marks reach
        cell ranges and character spans where MVD-style marks stop at
        lines/paragraphs (or nothing, for spreadsheets).
        """
        document = self.library.get(document_name)
        if isinstance(document, (XmlDocument, HtmlPage)):
            return "element"
        if isinstance(document, WordDocument):
            return "paragraph"
        if isinstance(document, PdfDocument):
            return "line"
        return "none"

"""A schema-first, fixed-model native store — the ablation counterpart.

Section 6: *"For the SLIM Store, our design decision was towards maximum
flexibility, with data model as well as schema being selectable and
explicitly represented. The trade-off for this flexibility was space
efficiency of the data and the cost of interpreting manipulations on SLIM
Store data."*

To *measure* that trade-off (claims C-1 and C-2) we need the road not
taken: a store whose schema is fixed up front, compiled to plain Python
objects — no triples, no interpretation.  :class:`SchemaFirstStore`
implements the Bundle-Scrap shape natively:

- the schema is declared at construction and cannot change ("schema-first");
- unknown attributes are rejected at write time (no "information-first"
  entry);
- storage is direct attribute slots — the space baseline;
- operations are direct method calls — the interpretation-cost baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import DmiError
from repro.util.coordinates import Coordinate


@dataclass
class NativeMarkHandle:
    """Fixed-shape mark handle record."""

    handle_id: str
    mark_id: str


@dataclass
class NativeScrap:
    """Fixed-shape scrap record."""

    scrap_id: str
    name: str = ""
    pos: Coordinate = field(default_factory=lambda: Coordinate(0, 0))
    marks: List[NativeMarkHandle] = field(default_factory=list)


@dataclass
class NativeBundle:
    """Fixed-shape bundle record."""

    bundle_id: str
    name: str = ""
    pos: Coordinate = field(default_factory=lambda: Coordinate(0, 0))
    width: float = 200.0
    height: float = 120.0
    scraps: List[NativeScrap] = field(default_factory=list)
    nested: List["NativeBundle"] = field(default_factory=list)


@dataclass
class NativePad:
    """Fixed-shape pad record."""

    pad_id: str
    name: str = ""
    root: Optional[NativeBundle] = None


_ALLOWED_ATTRS = {
    NativePad: {"name", "root"},
    NativeBundle: {"name", "pos", "width", "height"},
    NativeScrap: {"name", "pos"},
    NativeMarkHandle: {"mark_id"},
}


class SchemaFirstStore:
    """Create/update/delete over the fixed Bundle-Scrap shape."""

    def __init__(self) -> None:
        self._counter = 0
        self._pads: Dict[str, NativePad] = {}
        self._bundles: Dict[str, NativeBundle] = {}
        self._scraps: Dict[str, NativeScrap] = {}
        self._handles: Dict[str, NativeMarkHandle] = {}

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}-{self._counter:06d}"

    # -- creation -----------------------------------------------------------------

    def create_pad(self, name: str) -> NativePad:
        """Create a pad record."""
        pad = NativePad(self._next_id("pad"), name)
        self._pads[pad.pad_id] = pad
        return pad

    def create_bundle(self, name: str = "",
                      pos: Optional[Coordinate] = None,
                      width: float = 200.0,
                      height: float = 120.0) -> NativeBundle:
        """Create a bundle record."""
        bundle = NativeBundle(self._next_id("bundle"), name,
                              pos or Coordinate(0, 0), width, height)
        self._bundles[bundle.bundle_id] = bundle
        return bundle

    def create_scrap(self, name: str = "",
                     pos: Optional[Coordinate] = None) -> NativeScrap:
        """Create a scrap record."""
        scrap = NativeScrap(self._next_id("scrap"), name,
                            pos or Coordinate(0, 0))
        self._scraps[scrap.scrap_id] = scrap
        return scrap

    def create_handle(self, mark_id: str) -> NativeMarkHandle:
        """Create a mark-handle record."""
        handle = NativeMarkHandle(self._next_id("handle"), mark_id)
        self._handles[handle.handle_id] = handle
        return handle

    # -- updates (schema-first: unknown attributes rejected) ------------------------

    def update(self, record, attr: str, value) -> None:
        """Set a declared attribute; undeclared names are schema errors."""
        allowed = _ALLOWED_ATTRS.get(type(record))
        if allowed is None or attr not in allowed:
            raise DmiError(
                f"schema-first store: {type(record).__name__} has no "
                f"attribute {attr!r} (schema is fixed)")
        setattr(record, attr, value)

    # -- structure -------------------------------------------------------------------

    def add_scrap(self, bundle: NativeBundle, scrap: NativeScrap) -> None:
        """Place a scrap into a bundle."""
        bundle.scraps.append(scrap)

    def nest_bundle(self, parent: NativeBundle, child: NativeBundle) -> None:
        """Nest one bundle inside another."""
        parent.nested.append(child)

    def add_mark(self, scrap: NativeScrap, handle: NativeMarkHandle) -> None:
        """Attach a mark handle to a scrap."""
        scrap.marks.append(handle)

    def delete_bundle(self, bundle: NativeBundle) -> int:
        """Cascade delete, mirroring the DMI's containment semantics."""
        count = 1
        for scrap in bundle.scraps:
            count += self.delete_scrap(scrap)
        for nested in bundle.nested:
            count += self.delete_bundle(nested)
        self._bundles.pop(bundle.bundle_id, None)
        return count

    def delete_scrap(self, scrap: NativeScrap) -> int:
        """Delete a scrap and its handles; returns records removed."""
        count = 1 + len(scrap.marks)
        for handle in scrap.marks:
            self._handles.pop(handle.handle_id, None)
        self._scraps.pop(scrap.scrap_id, None)
        return count

    # -- measurement --------------------------------------------------------------------

    def estimated_bytes(self) -> int:
        """The native representation's footprint, measured the same way
        as :meth:`repro.triples.store.TripleStore.estimated_bytes`:
        string payload plus a fixed per-record/per-slot overhead."""
        per_record_overhead = 48
        per_slot = 8
        total = 0
        for pad in self._pads.values():
            total += len(pad.pad_id) + len(pad.name) + per_record_overhead
            total += 2 * per_slot
        for bundle in self._bundles.values():
            total += len(bundle.bundle_id) + len(bundle.name)
            total += per_record_overhead + 6 * per_slot
            total += per_slot * (len(bundle.scraps) + len(bundle.nested))
            total += 16  # the coordinate
        for scrap in self._scraps.values():
            total += len(scrap.scrap_id) + len(scrap.name)
            total += per_record_overhead + 3 * per_slot
            total += per_slot * len(scrap.marks)
            total += 16
        for handle in self._handles.values():
            total += len(handle.handle_id) + len(handle.mark_id)
            total += per_record_overhead + 2 * per_slot
        return total

    def counts(self) -> Dict[str, int]:
        """Record counts by kind."""
        return {"pads": len(self._pads), "bundles": len(self._bundles),
                "scraps": len(self._scraps), "handles": len(self._handles)}

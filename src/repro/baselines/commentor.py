"""ComMentor-style shared web annotations (Section 5).

*"In ComMentor, users can ask for specific types of annotations created
within a time range and use the returned annotations to navigate the
corresponding web pages."*

The baseline stores annotations separately from the pages (like SLIMPad)
but is restricted to HTML, and its organizing abstractions are flat:
typed, timestamped annotations with attribute queries — no bundles, no
nesting, no freeform layout.  Time is logical (a per-store counter), so
runs are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import BaseLayerError
from repro.base.html.app import BrowserApp, HtmlAddress


@dataclass(frozen=True)
class WebAnnotation:
    """One shared annotation on a web page."""

    annotation_id: int
    address: HtmlAddress
    annotation_type: str     # e.g. 'comment', 'question', 'seal'
    text: str
    author: str
    created_at: int          # logical timestamp


class ComMentorSystem:
    """A shared store of typed web annotations with range queries."""

    def __init__(self, browser: BrowserApp) -> None:
        self.browser = browser
        self._annotations: List[WebAnnotation] = []
        self._clock = 0

    def annotate_selection(self, annotation_type: str, text: str,
                           author: str = "") -> WebAnnotation:
        """Annotate the browser's current selection."""
        address = self.browser.current_selection_address()
        if not isinstance(address, HtmlAddress):
            raise BaseLayerError("ComMentor only annotates web pages")
        self._clock += 1
        annotation = WebAnnotation(len(self._annotations) + 1, address,
                                   annotation_type, text, author, self._clock)
        self._annotations.append(annotation)
        return annotation

    @property
    def now(self) -> int:
        """The current logical time."""
        return self._clock

    def query(self, annotation_type: Optional[str] = None,
              since: Optional[int] = None,
              until: Optional[int] = None,
              author: Optional[str] = None) -> List[WebAnnotation]:
        """The paper's query: by type, within a time range."""
        hits = []
        for annotation in self._annotations:
            if annotation_type is not None and \
                    annotation.annotation_type != annotation_type:
                continue
            if since is not None and annotation.created_at < since:
                continue
            if until is not None and annotation.created_at > until:
                continue
            if author is not None and annotation.author != author:
                continue
            hits.append(annotation)
        return hits

    def navigate(self, annotation: WebAnnotation) -> str:
        """Use an annotation to navigate to its page/element."""
        return self.browser.navigate_to(annotation.address)

    def __len__(self) -> int:
        return len(self._annotations)

"""PowerBookmarks-style bookmark organization baseline (reference [14]).

*"PowerBookmarks: A system for personalizable web information
organization, sharing, and management"* — the paper's Section 1 cites
shared bookmarks as an existing superimposed application.  The baseline
captures its contract: whole-page bookmarks (URL granularity only) with
metadata, automatic keyword classification into folders, and sharing by
user.  The contrasts with SLIMPad that the comparison bench surfaces:
page-level (not sub-document) addressing, folder (not freeform 2-D)
organization, and web-only scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import BaseLayerError
from repro.base.application import DocumentLibrary
from repro.base.html.parser import HtmlPage
from repro.util.text import tokenize


@dataclass(frozen=True)
class Bookmark:
    """One bookmark: a URL plus extracted metadata."""

    bookmark_id: int
    url: str
    title: str
    keywords: "tuple[str, ...]"
    owner: str
    folder: str


class PowerBookmarksSystem:
    """Bookmarks with auto-classification and per-user sharing."""

    def __init__(self, library: DocumentLibrary) -> None:
        self.library = library
        self._bookmarks: List[Bookmark] = []
        # folder name -> keywords that route a page into it
        self._rules: Dict[str, List[str]] = {}

    # -- classification rules ------------------------------------------------------

    def add_folder_rule(self, folder: str, keywords: List[str]) -> None:
        """Pages whose text mentions any keyword go to *folder*."""
        self._rules[folder] = [keyword.lower() for keyword in keywords]

    def _classify(self, keywords: "tuple[str, ...]") -> str:
        for folder, rule_keywords in self._rules.items():
            if any(keyword in rule_keywords for keyword in keywords):
                return folder
        return "Unfiled"

    # -- bookmarking -----------------------------------------------------------------

    def bookmark(self, url: str, owner: str) -> Bookmark:
        """Bookmark a page: metadata is extracted, the folder assigned.

        Whole pages only — PowerBookmarks has no sub-document addressing;
        trying to bookmark anything finer is the baseline's documented
        limitation.
        """
        page = self.library.get(url)
        if not isinstance(page, HtmlPage):
            raise BaseLayerError("PowerBookmarks bookmarks web pages only")
        words = [token.normalized()
                 for token in tokenize(page.root.full_text())]
        seen: Dict[str, int] = {}
        for word in words:
            if len(word) > 3:
                seen[word] = seen.get(word, 0) + 1
        top = tuple(sorted(seen, key=lambda w: (-seen[w], w))[:8])
        mark = Bookmark(len(self._bookmarks) + 1, url, page.title(),
                        top, owner, self._classify(top))
        self._bookmarks.append(mark)
        return mark

    # -- retrieval ----------------------------------------------------------------------

    def folders(self) -> List[str]:
        """Folder names in use, in first-appearance order."""
        seen: Dict[str, None] = {}
        for bookmark in self._bookmarks:
            seen.setdefault(bookmark.folder, None)
        return list(seen)

    def in_folder(self, folder: str) -> List[Bookmark]:
        """The bookmarks classified into one folder."""
        return [b for b in self._bookmarks if b.folder == folder]

    def by_owner(self, owner: str) -> List[Bookmark]:
        """One user's bookmarks (the sharing dimension)."""
        return [b for b in self._bookmarks if b.owner == owner]

    def search(self, keyword: str) -> List[Bookmark]:
        """Keyword search over extracted metadata."""
        probe = keyword.lower()
        return [b for b in self._bookmarks
                if probe in b.keywords or probe in b.title.lower()]

    def __len__(self) -> int:
        return len(self._bookmarks)

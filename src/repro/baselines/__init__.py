"""Related-work baselines (paper Section 5) and ablation counterparts.

- :class:`InSituAnnotationSystem` — Acrobat/Word-Comments-style in-situ
  annotation bound to the displayed document
- :class:`ComMentorSystem` — shared, typed, time-ranged web annotations
- :class:`VirtualDocument` — Mirage-III span-link composition (no original
  content)
- :class:`MvdMarker` — document-centric structural marks (the MVD position)
- :class:`Moniker` / :class:`MonikerFactory` — self-resolving addresses
- :class:`SchemaFirstStore` — the fixed-schema native store used by the
  space/interpretation-cost ablations (claims C-1, C-2)
"""

from repro.baselines.commentor import ComMentorSystem, WebAnnotation
from repro.baselines.insitu import InSituAnnotationSystem
from repro.baselines.monikers import Moniker, MonikerFactory
from repro.baselines.mvd import MvdMarker, StructuralMark, TreeNode, tree_view
from repro.baselines.powerbookmarks import Bookmark, PowerBookmarksSystem
from repro.baselines.schema_first import (NativeBundle, NativeMarkHandle,
                                          NativePad, NativeScrap,
                                          SchemaFirstStore)
from repro.baselines.vdoc import SpanLink, VirtualDocument

__all__ = [
    "ComMentorSystem",
    "WebAnnotation",
    "InSituAnnotationSystem",
    "Moniker",
    "MonikerFactory",
    "Bookmark",
    "PowerBookmarksSystem",
    "MvdMarker",
    "StructuralMark",
    "TreeNode",
    "tree_view",
    "NativeBundle",
    "NativeMarkHandle",
    "NativePad",
    "NativeScrap",
    "SchemaFirstStore",
    "SpanLink",
    "VirtualDocument",
]

"""Extended mark behaviours (Section 6 current work).

*"we are considering additional behavior on marks that would be available
to superimposed application builders, such as 'extract content' and
'display in place'. Such an extension will require new mark modules for an
existing mark type."*

These behaviours are exactly that: thin functions over the Mark Manager's
extractor-role modules, giving superimposed applications content access
without surfacing base windows (the machinery behind independent viewing,
Fig. 6).
"""

from __future__ import annotations

from typing import Optional

from repro.marks.manager import MarkManager
from repro.marks.modules import ROLE_EXTRACTOR, Resolution
from repro.util.text import shorten


def extract_content(manager: MarkManager, mark_or_id) -> Resolution:
    """Fetch the marked element's content without surfacing the base app.

    Dispatches to the mark type's extractor-role module; the returned
    resolution has ``surfaced=False``.
    """
    return manager.resolve(mark_or_id, role=ROLE_EXTRACTOR)


def display_in_place(manager: MarkManager, mark_or_id,
                     width: int = 60) -> str:
    """Render the marked content as an in-place text block.

    This is what SLIMPad uses to *"have marks on the SLIMPad resolve to
    display the content of the marked element in place"* (independent
    viewing).  The block is clipped to *width* columns per line.
    """
    resolution = extract_content(manager, mark_or_id)
    lines = resolution.content_text().split("\n")
    body = "\n".join(shorten(line, width) for line in lines) if lines else ""
    header = shorten(f"[{resolution.document_name}] {resolution.address}", width)
    return f"{header}\n{body}" if body else header


def preview(manager: MarkManager, mark_or_id, limit: int = 40) -> Optional[str]:
    """A one-line content preview for tooltips; ``None`` when unresolvable."""
    try:
        resolution = extract_content(manager, mark_or_id)
    except Exception:
        return None
    text = resolution.content_text().replace("\n", " ")
    return shorten(text, limit) if text else ""

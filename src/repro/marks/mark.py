"""The Mark base class (Fig. 3, bottom; Fig. 8).

A mark is inert data: a ``markId`` plus *"the address to the marked
information element, in whatever form required by the base source"*.
Each type of base information has one Mark subclass whose extra fields are
exactly its addressing scheme (Fig. 8 shows the Excel and XML cases).

Marks deliberately contain **no behaviour** — resolution lives in mark
modules (:mod:`repro.marks.modules`).  This is the design point the paper
contrasts with Microsoft Monikers: because the address is dumb data,
several different modules can resolve the same mark in different ways.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict

from repro.errors import MarkError

#: Field value types that survive serialization.
_SERIALIZABLE = (str, int, float, bool)


@dataclass(frozen=True)
class Mark:
    """Base class for all marks.  Subclasses add address fields.

    Subclasses must set the class attribute :attr:`mark_type` to a unique
    tag (e.g. ``"excel"``) used by the registry and the serialized form.
    """

    mark_id: str

    #: Unique tag for this mark type; subclasses override.
    mark_type: ClassVar[str] = "abstract"

    def __post_init__(self) -> None:
        if not self.mark_id:
            raise MarkError("mark_id must be non-empty")
        for field_ in fields(self):
            value = getattr(self, field_.name)
            if not isinstance(value, _SERIALIZABLE):
                raise MarkError(
                    f"{type(self).__name__}.{field_.name} must be a scalar, "
                    f"got {type(value).__name__}")

    def address_fields(self) -> Dict[str, Any]:
        """The address portion of this mark: every field except the id."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "mark_id"}

    def describe(self) -> str:
        """A one-line human-readable form, e.g. for tooltips."""
        address = ", ".join(f"{k}={v!r}" for k, v in self.address_fields().items())
        return f"{self.mark_type} mark {self.mark_id}: {address}"

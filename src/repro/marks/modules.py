"""Mark modules: the bridge between mark types and base applications.

Section 4.2: *"A mark module, specific to a base-layer application,
enables the creation of marks by receiving information from that
application … A mark module resolves a mark by driving the base-layer
application to the information element designated by the mark."*

A module knows one application kind and one mark type.  Creating a mark
reads the application's current selection address; resolving a mark drives
the application back to that address (open → activate → select → highlight,
the exact sequence Section 4.2 narrates for Excel) and reports a
:class:`Resolution`.

Several modules may serve the *same mark type* in different roles — e.g. a
viewer module that displays in context and an extractor that returns the
content in place (Section 6 current work; the Monikers comparison in
Section 5).  The Mark Manager dispatches on (mark type, role).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Type

from repro.errors import MarkResolutionError
from repro.marks.mark import Mark

#: The default module role.
ROLE_VIEWER = "viewer"
#: A module that extracts content without surfacing the base application.
ROLE_EXTRACTOR = "extractor"


@dataclass(frozen=True)
class Resolution:
    """What resolving a mark produced.

    ``content`` is the marked element's current value(s) — a string for
    text-like sources, a list of rows for spreadsheet ranges.  ``context``
    is nearby material (the paper: *"re-establish context for a selected
    item, and navigate to nearby information"*).  ``surfaced`` records
    whether the base application was brought to the user's attention
    (viewer role) or worked silently (extractor role).
    """

    mark: Mark
    application_kind: str
    document_name: str
    address: str
    content: Any
    context: str = ""
    surfaced: bool = True

    def content_text(self) -> str:
        """The content flattened to one string (for scrap previews)."""
        if isinstance(self.content, str):
            return self.content
        if isinstance(self.content, (list, tuple)):
            parts = []
            for item in self.content:
                if isinstance(item, (list, tuple)):
                    parts.append(" ".join(str(cell) for cell in item))
                else:
                    parts.append(str(item))
            return "\n".join(parts)
        return str(self.content)


class MarkModule(ABC):
    """One (application kind, mark type, role) implementation.

    Concrete modules set :attr:`mark_class`, :attr:`application_kind` and
    optionally :attr:`role` (default viewer).
    """

    #: The Mark subclass this module creates/resolves.
    mark_class: ClassVar[Type[Mark]]
    #: The base-application kind this module drives (e.g. 'spreadsheet').
    application_kind: ClassVar[str]
    #: Dispatch role; modules for the same mark type differ by role.
    role: ClassVar[str] = ROLE_VIEWER

    @property
    def mark_type(self) -> str:
        """The mark-type tag this module serves."""
        return self.mark_class.mark_type

    @abstractmethod
    def create_from_selection(self, app, mark_id: str) -> Mark:
        """Mint a mark for *app*'s current selection.

        Raises :class:`~repro.errors.NoSelectionError` when the
        application has nothing selected.
        """

    @abstractmethod
    def resolve(self, mark: Mark, app) -> Resolution:
        """Drive *app* to the element *mark* addresses and report it.

        Raises :class:`~repro.errors.MarkResolutionError` when the address
        no longer exists (document removed, element deleted).
        """

    def check_mark(self, mark: Mark) -> None:
        """Guard helper: reject marks of the wrong type."""
        if not isinstance(mark, self.mark_class):
            raise MarkResolutionError(
                f"{type(self).__name__} cannot resolve "
                f"{type(mark).__name__} (expects {self.mark_class.__name__})")

"""The Mark Manager (Fig. 7).

*"The Mark Manager is the framework for creating and managing these links
— called marks. … Mark management hides the details of the different
kinds of base-layer information and base-layer applications from the
superimposed application."*

The manager holds:

- a :class:`~repro.marks.registry.MarkTypeRegistry` (for storage),
- mark modules keyed by (mark type, role) and by application kind,
- the base applications themselves, keyed by kind,
- the marks, keyed by mark id.

The superimposed application's whole vocabulary is ``create_mark(app)``
and ``resolve(mark_id)`` — base-layer variety is invisible above this
line, which is what made the architecture "readily extensible".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import (MarkError, MarkNotFoundError, MarkResolutionError,
                          PersistenceError, UnknownMarkTypeError)
from repro.marks.mark import Mark
from repro.marks.modules import ROLE_VIEWER, MarkModule, Resolution
from repro.marks.registry import MarkTypeRegistry
from repro.util.identifiers import IdGenerator


class MarkManager:
    """Create, store, and resolve marks across all base applications."""

    def __init__(self, registry: Optional[MarkTypeRegistry] = None) -> None:
        self.registry = registry or MarkTypeRegistry()
        self._modules: Dict[Tuple[str, str], MarkModule] = {}
        self._module_by_app_kind: Dict[str, MarkModule] = {}
        self._applications: Dict[str, object] = {}
        self._marks: Dict[str, Mark] = {}
        self._ids = IdGenerator()

    # -- wiring ----------------------------------------------------------------

    def register_module(self, module: MarkModule) -> None:
        """Install a mark module (registers its mark type as a side effect).

        The first viewer-role module for an application kind becomes that
        kind's creation module.
        """
        key = (module.mark_type, module.role)
        if key in self._modules:
            raise MarkError(
                f"module for {key} already registered")
        self.registry.register(module.mark_class)
        self._modules[key] = module
        if module.role == ROLE_VIEWER:
            self._module_by_app_kind.setdefault(module.application_kind, module)

    def register_application(self, app) -> None:
        """Install a base application instance (one per kind)."""
        kind = app.kind
        if kind in self._applications:
            raise MarkError(f"application kind {kind!r} already registered")
        self._applications[kind] = app

    def application(self, kind: str):
        """The registered base application of *kind*."""
        try:
            return self._applications[kind]
        except KeyError:
            raise MarkError(f"no application registered for kind {kind!r}") from None

    def module_for(self, mark_type: str, role: str = ROLE_VIEWER) -> MarkModule:
        """The module serving (*mark_type*, *role*)."""
        try:
            return self._modules[(mark_type, role)]
        except KeyError:
            raise UnknownMarkTypeError(
                f"no {role!r} module for mark type {mark_type!r}") from None

    def supported_mark_types(self) -> List[str]:
        """Mark types with at least one module, in registration order."""
        seen: Dict[str, None] = {}
        for mark_type, _role in self._modules:
            seen.setdefault(mark_type, None)
        return list(seen)

    # -- creation ----------------------------------------------------------------

    def create_mark(self, app) -> Mark:
        """Mint and store a mark for *app*'s current selection.

        This is the paper's creation flow: the base application hands the
        module its current selection, the module builds the typed mark.
        """
        module = self._module_by_app_kind.get(app.kind)
        if module is None:
            raise MarkError(f"no mark module for application kind {app.kind!r}")
        mark = module.create_from_selection(app, self._ids.next("mark"))
        self._marks[mark.mark_id] = mark
        return mark

    def adopt(self, mark: Mark) -> None:
        """Store an externally constructed mark (e.g. received in a file)."""
        if mark.mark_type not in self.registry:
            raise UnknownMarkTypeError(
                f"mark type {mark.mark_type!r} is not registered")
        self._marks[mark.mark_id] = mark
        self._ids.observe(mark.mark_id)

    # -- retrieval ------------------------------------------------------------------

    def get(self, mark_id: str) -> Mark:
        """The stored mark with this id."""
        try:
            return self._marks[mark_id]
        except KeyError:
            raise MarkNotFoundError(f"no mark with id {mark_id!r}") from None

    def marks(self) -> List[Mark]:
        """All stored marks, in creation order."""
        return list(self._marks.values())

    def __len__(self) -> int:
        return len(self._marks)

    def __contains__(self, mark_id: str) -> bool:
        return mark_id in self._marks

    def remove(self, mark_id: str) -> Mark:
        """Forget a mark; returns it.  Raises when absent."""
        try:
            return self._marks.pop(mark_id)
        except KeyError:
            raise MarkNotFoundError(f"no mark with id {mark_id!r}") from None

    # -- resolution -------------------------------------------------------------------

    def resolve(self, mark_or_id, role: str = ROLE_VIEWER) -> Resolution:
        """Drive the right base application to the marked element.

        *role* selects among multiple modules for the mark's type —
        ``'viewer'`` surfaces the element in its original context;
        ``'extractor'`` fetches content without surfacing the application.
        """
        mark = self.get(mark_or_id) if isinstance(mark_or_id, str) else mark_or_id
        module = self.module_for(mark.mark_type, role)
        app = self.application(module.application_kind)
        return module.resolve(mark, app)

    def resolvable(self, mark_or_id) -> bool:
        """Whether resolution currently succeeds (element still exists)."""
        try:
            self.resolve(mark_or_id)
            return True
        except (MarkResolutionError, MarkError):
            return False

    # -- persistence ---------------------------------------------------------------------

    def dumps(self) -> str:
        """All marks as an XML string."""
        return self.registry.dumps(self.marks())

    def loads(self, text: str) -> int:
        """Adopt marks from :meth:`dumps` output; returns how many."""
        marks = self.registry.loads(text)
        for mark in marks:
            self.adopt(mark)
        return len(marks)

    def save(self, path: str) -> None:
        """Write all marks to *path*."""
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(self.dumps())
        except OSError as exc:
            raise PersistenceError(f"cannot write {path}: {exc}") from exc

    def load(self, path: str) -> int:
        """Adopt marks from *path*; returns how many."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise PersistenceError(f"cannot read {path}: {exc}") from exc
        return self.loads(text)

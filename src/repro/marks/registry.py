"""The mark-type registry and mark serialization.

*"Since the specific addressing scheme of the base-layer information is
encapsulated within the mark, the Mark Manager can generically store and
retrieve all marks."* (Section 4.2.)

The registry maps mark-type tags to Mark subclasses so marks of any type
can be serialized to flat dictionaries / XML and reconstructed without the
Mark Manager knowing their fields.  New base-layer information kinds are
supported by registering one more class — nothing else changes (claim C-4).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import fields
from typing import Any, Dict, List, Type

from repro.errors import MarkError, PersistenceError, UnknownMarkTypeError
from repro.marks.mark import Mark

_FIELD_TYPE_TAGS = {str: "string", int: "integer", float: "float", bool: "boolean"}
_TAG_DECODERS = {
    "string": str,
    "integer": int,
    "float": float,
    "boolean": lambda text: text == "true",
}

#: Characters XML 1.0 cannot carry verbatim (plus '%', our escape lead-in,
#: and '\r', which XML parsers normalize to '\n').
_XML_UNSAFE = {ch for ch in map(chr, range(0x20))
               if ch not in ("\t", "\n")} | {"\r", "%"}


def _encode_field_text(value: str) -> "tuple[str, bool]":
    """Percent-encode characters that would not survive XML transport."""
    if not any(ch in _XML_UNSAFE for ch in value):
        return value, False
    encoded = "".join(f"%{ord(ch):02X}" if ch in _XML_UNSAFE else ch
                      for ch in value)
    return encoded, True


def _decode_field_text(text: str) -> str:
    """Inverse of :func:`_encode_field_text` for flagged fields."""
    out = []
    i = 0
    while i < len(text):
        if text[i] == "%" and i + 3 <= len(text):
            try:
                out.append(chr(int(text[i + 1:i + 3], 16)))
                i += 3
                continue
            except ValueError:
                pass  # not one of our escapes; keep the raw '%'
        out.append(text[i])
        i += 1
    return "".join(out)


class MarkTypeRegistry:
    """Maps mark-type tags to their Mark subclasses."""

    def __init__(self) -> None:
        self._types: Dict[str, Type[Mark]] = {}

    def register(self, mark_class: Type[Mark]) -> Type[Mark]:
        """Register a Mark subclass (usable as a class decorator).

        Re-registering the same class is a no-op; a different class under
        the same tag is an error.
        """
        tag = mark_class.mark_type
        if not tag or tag == "abstract":
            raise MarkError(
                f"{mark_class.__name__} must define a concrete mark_type")
        existing = self._types.get(tag)
        if existing is not None and existing is not mark_class:
            raise MarkError(f"mark type {tag!r} already registered "
                            f"by {existing.__name__}")
        self._types[tag] = mark_class
        return mark_class

    def get(self, tag: str) -> Type[Mark]:
        """The Mark subclass for *tag*; raises when unknown."""
        try:
            return self._types[tag]
        except KeyError:
            raise UnknownMarkTypeError(f"no mark type registered as {tag!r}") from None

    def __contains__(self, tag: str) -> bool:
        return tag in self._types

    def types(self) -> List[str]:
        """Registered tags, in registration order."""
        return list(self._types)

    # -- serialization -----------------------------------------------------------

    def to_dict(self, mark: Mark) -> Dict[str, Any]:
        """Flatten a mark to ``{'type': tag, 'mark_id': ..., <fields>}``."""
        if mark.mark_type not in self._types:
            raise UnknownMarkTypeError(
                f"mark type {mark.mark_type!r} is not registered")
        record: Dict[str, Any] = {"type": mark.mark_type, "mark_id": mark.mark_id}
        record.update(mark.address_fields())
        return record

    def from_dict(self, record: Dict[str, Any]) -> Mark:
        """Reconstruct a mark from :meth:`to_dict` output."""
        data = dict(record)
        try:
            tag = data.pop("type")
        except KeyError:
            raise MarkError("mark record missing 'type'") from None
        mark_class = self.get(tag)
        expected = {f.name for f in fields(mark_class)}
        unexpected = set(data) - expected
        if unexpected:
            raise MarkError(
                f"unexpected field(s) for {tag!r} mark: {sorted(unexpected)}")
        missing = expected - set(data)
        if missing:
            raise MarkError(f"missing field(s) for {tag!r} mark: {sorted(missing)}")
        return mark_class(**data)

    def dumps(self, marks: List[Mark]) -> str:
        """Serialize marks to an XML string."""
        root = ET.Element("marks")
        for mark in marks:
            record = self.to_dict(mark)
            element = ET.SubElement(root, "mark", {"type": record.pop("type")})
            for name, value in record.items():
                type_tag = _FIELD_TYPE_TAGS[type(value)]
                attrs = {"name": name, "type": type_tag}
                if isinstance(value, bool):
                    text = "true" if value else "false"
                elif isinstance(value, str):
                    text, was_encoded = _encode_field_text(value)
                    if was_encoded:
                        attrs["encoding"] = "pct"
                else:
                    text = str(value)
                field_el = ET.SubElement(element, "field", attrs)
                field_el.text = text
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")

    def loads(self, text: str) -> List[Mark]:
        """Parse marks from :meth:`dumps` output."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise PersistenceError(f"malformed marks XML: {exc}") from exc
        if root.tag != "marks":
            raise PersistenceError(f"expected <marks> root, got <{root.tag}>")
        marks: List[Mark] = []
        for element in root:
            if element.tag != "mark":
                raise PersistenceError(f"unexpected element <{element.tag}>")
            record: Dict[str, Any] = {"type": element.get("type", "")}
            for field_el in element:
                name = field_el.get("name")
                type_tag = field_el.get("type", "string")
                if not name or type_tag not in _TAG_DECODERS:
                    raise PersistenceError("malformed mark field")
                text = field_el.text or ""
                if field_el.get("encoding") == "pct":
                    text = _decode_field_text(text)
                record[name] = _TAG_DECODERS[type_tag](text)
            marks.append(self.from_dict(record))
        return marks

"""Mark management (paper Section 4.2, Figs. 7 & 8).

- :class:`Mark` — inert typed addresses into base information
- :class:`MarkTypeRegistry` — serialization and type lookup
- :class:`MarkModule` / :class:`Resolution` — per-application create/resolve
- :class:`MarkManager` — the façade superimposed applications use
- :mod:`repro.marks.behaviors` — extract-content / display-in-place
"""

from repro.marks.behaviors import display_in_place, extract_content, preview
from repro.marks.manager import MarkManager
from repro.marks.mark import Mark
from repro.marks.modules import (ROLE_EXTRACTOR, ROLE_VIEWER, MarkModule,
                                 Resolution)
from repro.marks.registry import MarkTypeRegistry
from repro.marks.triples_bridge import (mark_records, marks_from_triples,
                                        marks_to_triples)

__all__ = [
    "display_in_place",
    "extract_content",
    "preview",
    "MarkManager",
    "Mark",
    "ROLE_EXTRACTOR",
    "ROLE_VIEWER",
    "MarkModule",
    "Resolution",
    "MarkTypeRegistry",
    "mark_records",
    "marks_from_triples",
    "marks_to_triples",
]

"""Storing marks in the superimposed information layer (as triples).

Section 4.2: *"A mark is stored and maintained in the superimposed
information layer, but references information in the base layer."*  The
Mark Manager's own XML file is one storage channel; this bridge is the
other — marks become triples in a TRIM store, so one persisted store can
carry a pad *and* its marks (and TRIM's views/queries see both).

Representation, per mark::

    <mark-resource> rdf:type        slim:Mark
    <mark-resource> slim:markType   "excel"
    <mark-resource> slim:markId     "mark-000007"
    <mark-resource> slim:field.file_name  "meds.xls"
    <mark-resource> slim:field.range      "A2:D2"
    ...

Field literal types (int/float/bool/str) are preserved by the triple
model itself, so the round trip is exact.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import MarkError
from repro.marks.manager import MarkManager
from repro.marks.mark import Mark
from repro.triples.namespaces import SLIM
from repro.triples.triple import Literal, Resource
from repro.triples.trim import TrimManager

MARK_TYPE = SLIM["Mark"]
MARK_KIND = SLIM["markType"]
MARK_ID = SLIM["markId"]
_FIELD_PREFIX = "field."
_RDF_TYPE = Resource("rdf:type")


def marks_to_triples(manager: MarkManager, trim: TrimManager) -> int:
    """Write every mark the manager holds into *trim*'s store.

    Existing mark triples for the same mark ids are replaced.  Returns
    how many marks were written.
    """
    count = 0
    for mark in manager.marks():
        resource = trim.new_resource("markrec")
        # Replace any previous record of this mark id.
        for stale in trim.select(prop=MARK_ID, value=Literal(mark.mark_id)):
            trim.remove_about(stale.subject)
        trim.create(resource, _RDF_TYPE, MARK_TYPE)
        trim.create(resource, MARK_KIND, mark.mark_type)
        trim.create(resource, MARK_ID, mark.mark_id)
        for name, value in mark.address_fields().items():
            trim.create(resource, SLIM[f"{_FIELD_PREFIX}{name}"],
                        Literal(value))
        count += 1
    return count


def marks_from_triples(manager: MarkManager, trim: TrimManager) -> int:
    """Adopt every mark recorded in *trim*'s store into the manager.

    Mark types must already be registered (their modules installed).
    Returns how many marks were adopted.
    """
    count = 0
    for statement in trim.select(prop=_RDF_TYPE, value=MARK_TYPE):
        resource = statement.subject
        kind = trim.store.literal_of(resource, MARK_KIND)
        mark_id = trim.store.literal_of(resource, MARK_ID)
        if kind is None or mark_id is None:
            raise MarkError(f"incomplete mark record at {resource}")
        fields: Dict[str, object] = {}
        for triple_ in trim.select(subject=resource):
            local = triple_.property.local_name
            if local.startswith(_FIELD_PREFIX) and \
                    isinstance(triple_.value, Literal):
                fields[local[len(_FIELD_PREFIX):]] = triple_.value.value
        record = {"type": str(kind), "mark_id": str(mark_id), **fields}
        manager.adopt(manager.registry.from_dict(record))
        count += 1
    return count


def mark_records(trim: TrimManager) -> List[Resource]:
    """The resources of every mark record in the store."""
    return [t.subject for t in trim.select(prop=_RDF_TYPE, value=MARK_TYPE)]

"""Reachability views over the triple store.

Section 4.4: *"A view is specified by selecting a resource (such as a
Bundle id), where all triples that can be reached from this resource are
returned (e.g., all triples representing nested Bundles within the given
Bundle along with their Scraps)."*

:func:`reachable_triples` computes that closure.  :class:`View` wraps a
root resource and keeps the closure current as the underlying store
changes (the paper calls these "simple views").  Since PR-6 a view is
maintained *incrementally* from the store's 3-arg change-listener stream:

* an insert whose subject is already reachable is appended to the
  materialized closure directly, and its resource value (when the
  traversal rules allow following it) is expanded with a bounded BFS that
  only walks the *new* frontier — a depth-relaxation pass when
  ``max_depth`` is set, since a new edge can shorten the path to an
  already-visited resource and pull previously-out-of-range nodes in;
* an insert whose subject is unreachable is an O(1) set-probe no-op —
  which is what fixes the sharded-store staleness problem, where the old
  generation-sum check re-ran the whole closure on any write anywhere;
* a removal of a triple *in* the closure marks the view dirty and the
  next read recomputes from scratch (a cut edge can strand an arbitrary
  subgraph, so there is no cheap incremental answer);
* a removal of a triple outside the closure is a no-op.

Event plumbing and lock order.  Store mutators fan events out *while
holding the store lock*, and a bulk-owner read inside a view refresh
takes the store lock through the read barrier — so the listener tap must
never take the view lock or the two orders would deadlock (store→view vs
view→store).  The tap therefore only appends to a ``collections.deque``
(atomic under the GIL) and the view's own lock guards nothing but
read-side materialization.  The tap holds only a weak reference to its
view and unsubscribes itself once the view is collected, so transient
views never accumulate in the store's listener list.  If the queue grows
past :data:`EVENT_QUEUE_LIMIT` between reads, events are dropped, an
overflow flag is set, and the next read falls back to a full recompute.

Stores without a listener stream (duck-typed stand-ins) recompute every
call; ``incremental=False`` selects the legacy behaviour — a full BFS
memoized against the store :attr:`~repro.triples.store.TripleStore.generation`
counter and re-run on any bump — kept as the benchmark baseline.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from typing import (Any, Dict, Iterable, List, Optional, Set, Tuple)

from repro.triples.store import TripleStore
from repro.triples.triple import Resource, Triple

#: Queued-but-unapplied change events per view before the view stops
#: buffering and schedules a full recompute instead.
EVENT_QUEUE_LIMIT = 4096


def reachable_triples(store: TripleStore, root: Resource,
                      follow_properties: Optional[Iterable[Resource]] = None,
                      max_depth: Optional[int] = None) -> List[Triple]:
    """All triples reachable from *root* by following resource-valued triples.

    Traversal is breadth-first from *root*: every triple whose subject is a
    visited resource is in the view, and resource values of those triples
    are visited in turn.  Cycles are handled (each resource expands once).

    ``follow_properties`` restricts which properties are traversed *through*
    (their triples are still included when the subject is reachable);
    ``max_depth`` bounds how many hops from the root are expanded.
    Results are in BFS discovery order, deterministic for a given store.
    """
    allowed = set(follow_properties) if follow_properties is not None else None
    visited: Set[Resource] = {root}
    queue = deque([(root, 0)])
    result: List[Triple] = []
    emitted: Set[Triple] = set()
    while queue:
        resource, depth = queue.popleft()
        for triple in store.select(subject=resource):
            if triple not in emitted:
                emitted.add(triple)
                result.append(triple)
            value = triple.value
            if not isinstance(value, Resource):
                continue
            if allowed is not None and triple.property not in allowed:
                continue
            if max_depth is not None and depth >= max_depth:
                continue
            if value not in visited:
                visited.add(value)
                queue.append((value, depth + 1))
    return result


def reachable_resources(store: TripleStore, root: Resource,
                        follow_properties: Optional[Iterable[Resource]] = None,
                        max_depth: Optional[int] = None) -> List[Resource]:
    """The resources visited by :func:`reachable_triples`, root first."""
    allowed = set(follow_properties) if follow_properties is not None else None
    visited: Set[Resource] = {root}
    order: List[Resource] = [root]
    queue = deque([(root, 0)])
    while queue:
        resource, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for triple in store.select(subject=resource):
            value = triple.value
            if not isinstance(value, Resource):
                continue
            if allowed is not None and triple.property not in allowed:
                continue
            if value not in visited:
                visited.add(value)
                order.append(value)
                queue.append((value, depth + 1))
    return order


class View:
    """A named, self-maintaining reachability view rooted at one resource.

    ::

        view = View(store, bundle_resource)
        view.triples()    # the closure vs the current contents
        view.snapshot()   # a detached TripleStore holding the closure

    The root and traversal options are fixed per instance.  On stores
    with a change-listener stream the closure is maintained
    incrementally (see the module docstring); pass ``incremental=False``
    for the legacy generation-memoized full recompute.  Returned lists
    are copies — mutating a result never corrupts later reads.

    Thread-safety: reads serialize on a per-view lock; the change tap
    runs lockless (see module docstring for the lock order) and event
    application is idempotent, so a tap racing a refresh at worst
    re-applies an event the refresh already observed.  During a bulk
    load no events fire until the flush, and reader threads materialize
    from the pinned last-flush snapshot — the queued flush events then
    catch the view up, so mid-ingest reads are consistent snapshots.

    Create views outside another thread's bulk window: subscribing the
    change tap attaches a store listener, which flushes pending inserts
    (the store's ``add_listener`` contract).
    """

    def __init__(self, store: TripleStore, root: Resource,
                 follow_properties: Optional[Iterable[Resource]] = None,
                 max_depth: Optional[int] = None,
                 incremental: bool = True) -> None:
        self._store = store
        self.root = root
        self._follow = list(follow_properties) if follow_properties is not None else None
        self._follow_set = set(self._follow) if self._follow is not None else None
        self._max_depth = max_depth
        self._lock = threading.RLock()
        # Published materialization (legacy modes key slot 0 on the store
        # generation; incremental mode keys it on a local epoch).
        self._cached_triples: Optional[Tuple[int, List[Triple]]] = None
        self._cached_resources: Optional[Tuple[int, List[Resource]]] = None
        # Incremental state, guarded by self._lock.
        self._depths: Dict[Resource, int] = {}
        self._order: List[Resource] = []
        self._emitted: Set[Triple] = set()
        self._list: List[Triple] = []
        self._materialized = False
        self._dirty = False
        self._epoch = 0
        # The tap appends here without any lock (GIL-atomic); overflow is
        # a latched flag, reset by the recompute it forces.
        self._events: "deque[Tuple[str, Triple]]" = deque()
        self._overflow = False
        self._unsubscribe = None
        # Metrics, read by TrimManager.cache_stats().
        self._reads = 0
        self._recomputes = 0
        self._events_applied = 0
        self._events_seen = 0
        self._overflows = 0
        self._incremental = bool(incremental) \
            and hasattr(store, "add_listener")
        if self._incremental:
            self._subscribe()

    # -- change-stream plumbing ----------------------------------------------

    def _subscribe(self) -> None:
        """Attach a weakly-bound tap to the store's listener stream."""
        view_ref = weakref.ref(self)
        cell: List[Any] = []

        def _tap(action: str, triple: Triple, sequence: int) -> None:
            view = view_ref()
            if view is None:
                # The view was collected; remove the tap so dead views
                # never accumulate in the store's listener list.
                if cell:
                    cell.pop()()
                return
            view._on_event(action, triple)

        cell.append(self._store.add_listener(_tap))
        self._unsubscribe = cell[0]

    def _on_event(self, action: str, triple: Triple) -> None:
        """Buffer one change event.  Runs under the *store* lock — must
        never take the view lock (lock order: store → tap, view → store)."""
        events = self._events
        if len(events) >= EVENT_QUEUE_LIMIT:
            self._overflow = True
            return
        events.append((action, triple))

    def close(self) -> None:
        """Detach from the store's listener stream (idempotent)."""
        unsubscribe, self._unsubscribe = self._unsubscribe, None
        if unsubscribe is not None:
            unsubscribe()

    def __del__(self) -> None:
        try:
            self.close()
        except BaseException:
            pass

    # -- incremental maintenance ---------------------------------------------

    def _recompute(self) -> None:
        """Full BFS re-materialization.  Caller holds the view lock."""
        self._overflow = False
        self._events.clear()
        depths: Dict[Resource, int] = {self.root: 0}
        order: List[Resource] = [self.root]
        emitted: Set[Triple] = set()
        result: List[Triple] = []
        follow = self._follow_set
        max_depth = self._max_depth
        queue = deque([(self.root, 0)])
        try:
            while queue:
                resource, depth = queue.popleft()
                for triple in self._store.select(subject=resource):
                    if triple not in emitted:
                        emitted.add(triple)
                        result.append(triple)
                    value = triple.value
                    if not isinstance(value, Resource):
                        continue
                    if follow is not None and triple.property not in follow:
                        continue
                    if max_depth is not None and depth >= max_depth:
                        continue
                    if value not in depths:
                        depths[value] = depth + 1
                        order.append(value)
                        queue.append((value, depth + 1))
        except BaseException:
            # Events were already drained for this recompute; re-latch the
            # overflow flag so the next read recomputes instead of trusting
            # a materialization we never finished.
            self._overflow = True
            raise
        self._depths = depths
        self._order = order
        self._emitted = emitted
        self._list = result
        self._materialized = True
        self._dirty = False
        self._recomputes += 1
        self._publish()

    def _publish(self) -> None:
        self._epoch += 1
        self._cached_triples = (self._epoch, self._list)
        self._cached_resources = (self._epoch, self._order)

    def _apply_add(self, triple: Triple) -> None:
        """Fold one inserted triple into the closure.

        Unreachable subject → O(1) no-op.  Reachable subject → emit the
        triple, and when its value is traversable, grow the frontier.
        """
        depth = self._depths.get(triple.subject)
        if depth is None:
            return
        if triple not in self._emitted:
            self._emitted.add(triple)
            self._list.append(triple)
        value = triple.value
        if not isinstance(value, Resource):
            return
        if self._follow_set is not None \
                and triple.property not in self._follow_set:
            return
        if self._max_depth is not None and depth >= self._max_depth:
            return
        self._grow(value, depth + 1)

    def _grow(self, start: Resource, depth: int) -> None:
        """BFS from a newly-reachable frontier, with depth relaxation.

        With ``max_depth`` set, a new edge can *shorten* the path to an
        already-visited resource; re-relaxing its depth may pull nodes
        that were previously one hop out of range into the closure, so
        visited nodes are re-expanded (but never re-emitted) whenever
        their depth improves.
        """
        store = self._store
        depths = self._depths
        emitted = self._emitted
        follow = self._follow_set
        max_depth = self._max_depth
        queue = deque([(start, depth)])
        while queue:
            node, d = queue.popleft()
            current = depths.get(node)
            if current is not None and (max_depth is None or current <= d):
                continue
            is_new = current is None
            depths[node] = d
            if is_new:
                self._order.append(node)
            expand = max_depth is None or d < max_depth
            if not is_new and not expand:
                continue
            for triple in store.select(subject=node):
                if is_new and triple not in emitted:
                    emitted.add(triple)
                    self._list.append(triple)
                if not expand:
                    continue
                value = triple.value
                if not isinstance(value, Resource):
                    continue
                if follow is not None and triple.property not in follow:
                    continue
                queue.append((value, d + 1))

    def _refresh(self) -> None:
        """Bring the materialization current.  Caller holds the view lock."""
        if not self._materialized or self._dirty or self._overflow:
            if self._overflow:
                self._overflows += 1
            self._recompute()
            return
        events = self._events
        applied = 0
        try:
            while events:
                try:
                    action, triple = events.popleft()
                except IndexError:       # pragma: no cover - tap races drain
                    break
                self._events_seen += 1
                if action == "add":
                    self._apply_add(triple)
                    applied += 1
                    continue
                # A removal: only a cut *inside* the closure recomputes.
                if triple in self._emitted:
                    self._dirty = True
                    self._recompute()
                    return
        except BaseException:
            self._dirty = True           # half-applied event: don't trust it
            raise
        if applied:
            self._events_applied += applied
            self._publish()

    # -- reads ----------------------------------------------------------------

    def triples(self) -> List[Triple]:
        """Evaluate the view against the current store contents."""
        if not self._incremental:
            return self._legacy_triples()
        with self._lock:
            self._reads += 1
            self._refresh()
            return list(self._list)

    def resources(self) -> List[Resource]:
        """Resources in the view, root first (BFS discovery order)."""
        if not self._incremental:
            return self._legacy_resources()
        with self._lock:
            self._reads += 1
            self._refresh()
            return list(self._order)

    def snapshot(self) -> TripleStore:
        """Materialize the view into an independent store."""
        snap = TripleStore()
        snap.add_all(self.triples())
        return snap

    def __len__(self) -> int:
        """Size of the closure (no copy)."""
        if not self._incremental:
            generation = getattr(self._store, "generation", None)
            cached = self._cached_triples
            if generation is not None and cached is not None \
                    and cached[0] == generation:
                return len(cached[1])
            return len(self._legacy_triples())
        with self._lock:
            self._reads += 1
            self._refresh()
            return len(self._list)

    # -- metrics --------------------------------------------------------------

    def cache_stats(self) -> Dict[str, Any]:
        """Maintenance counters for the metrics surface."""
        with self._lock:
            return {
                "root": self.root.uri,
                "incremental": self._incremental,
                "size": len(self._list) if self._materialized else None,
                "reads": self._reads,
                "recomputes": self._recomputes,
                "events_applied": self._events_applied,
                "events_seen": self._events_seen,
                "events_queued": len(self._events),
                "overflows": self._overflows,
            }

    # -- legacy (generation-memoized full recompute) ---------------------------

    def _legacy_triples(self) -> List[Triple]:
        generation = getattr(self._store, "generation", None)
        if generation is None:
            return reachable_triples(self._store, self.root,
                                     self._follow, self._max_depth)
        cached = self._cached_triples
        if cached is not None and cached[0] == generation:
            return list(cached[1])
        self._recomputes += 1
        result = reachable_triples(self._store, self.root,
                                   self._follow, self._max_depth)
        if getattr(self._store, "generation", None) == generation:
            self._cached_triples = (generation, result)
        return list(result)

    def _legacy_resources(self) -> List[Resource]:
        generation = getattr(self._store, "generation", None)
        if generation is None:
            return reachable_resources(self._store, self.root,
                                       self._follow, self._max_depth)
        cached = self._cached_resources
        if cached is not None and cached[0] == generation:
            return list(cached[1])
        result = reachable_resources(self._store, self.root,
                                     self._follow, self._max_depth)
        if getattr(self._store, "generation", None) == generation:
            self._cached_resources = (generation, result)
        return list(result)

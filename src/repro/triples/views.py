"""Reachability views over the triple store.

Section 4.4: *"A view is specified by selecting a resource (such as a
Bundle id), where all triples that can be reached from this resource are
returned (e.g., all triples representing nested Bundles within the given
Bundle along with their Scraps)."*

:func:`reachable_triples` computes that closure.  :class:`View` wraps a
root resource and re-materializes on demand, so a view stays current as the
underlying store changes (the paper calls these "simple views").  The
materialized closure is memoized against the store's
:attr:`~repro.triples.store.TripleStore.generation` counter: repeated
reads of an unchanged store are cache hits, and any add/remove bumps the
generation and invalidates the cache on the next read.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set, Tuple

from repro.triples.store import TripleStore
from repro.triples.triple import Resource, Triple


def reachable_triples(store: TripleStore, root: Resource,
                      follow_properties: Optional[Iterable[Resource]] = None,
                      max_depth: Optional[int] = None) -> List[Triple]:
    """All triples reachable from *root* by following resource-valued triples.

    Traversal is breadth-first from *root*: every triple whose subject is a
    visited resource is in the view, and resource values of those triples
    are visited in turn.  Cycles are handled (each resource expands once).

    ``follow_properties`` restricts which properties are traversed *through*
    (their triples are still included when the subject is reachable);
    ``max_depth`` bounds how many hops from the root are expanded.
    Results are in BFS discovery order, deterministic for a given store.
    """
    allowed = set(follow_properties) if follow_properties is not None else None
    visited: Set[Resource] = {root}
    queue = deque([(root, 0)])
    result: List[Triple] = []
    emitted: Set[Triple] = set()
    while queue:
        resource, depth = queue.popleft()
        for triple in store.select(subject=resource):
            if triple not in emitted:
                emitted.add(triple)
                result.append(triple)
            value = triple.value
            if not isinstance(value, Resource):
                continue
            if allowed is not None and triple.property not in allowed:
                continue
            if max_depth is not None and depth >= max_depth:
                continue
            if value not in visited:
                visited.add(value)
                queue.append((value, depth + 1))
    return result


def reachable_resources(store: TripleStore, root: Resource,
                        follow_properties: Optional[Iterable[Resource]] = None,
                        max_depth: Optional[int] = None) -> List[Resource]:
    """The resources visited by :func:`reachable_triples`, root first."""
    allowed = set(follow_properties) if follow_properties is not None else None
    visited: Set[Resource] = {root}
    order: List[Resource] = [root]
    queue = deque([(root, 0)])
    while queue:
        resource, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for triple in store.select(subject=resource):
            value = triple.value
            if not isinstance(value, Resource):
                continue
            if allowed is not None and triple.property not in allowed:
                continue
            if value not in visited:
                visited.add(value)
                order.append(value)
                queue.append((value, depth + 1))
    return order


class View:
    """A named, re-evaluating reachability view rooted at one resource.

    ::

        view = View(store, bundle_resource)
        view.triples()    # closure vs the current contents (cached while
                          # the store generation is unchanged)
        view.snapshot()   # a detached TripleStore holding the closure

    The root and traversal options are fixed per instance, so the cache is
    keyed on the store's generation alone; a store without a ``generation``
    attribute (any duck-typed stand-in) simply recomputes every call.
    Cached lists are returned as copies — mutating a result never corrupts
    later reads.

    Thread-safety: the cache slot is a single tuple published with one
    assignment, and a result is cached only when the store generation is
    *unchanged after* the traversal — a closure computed while a writer
    raced (which may mix states) is returned to its caller but never
    pinned to a generation it does not represent.  During a bulk load the
    generation is itself pinned to the last flush on reader threads, so
    mid-ingest view reads are consistent snapshots and cache normally.
    """

    def __init__(self, store: TripleStore, root: Resource,
                 follow_properties: Optional[Iterable[Resource]] = None,
                 max_depth: Optional[int] = None) -> None:
        self._store = store
        self.root = root
        self._follow = list(follow_properties) if follow_properties is not None else None
        self._max_depth = max_depth
        self._cached_triples: Optional[Tuple[int, List[Triple]]] = None
        self._cached_resources: Optional[Tuple[int, List[Resource]]] = None

    def triples(self) -> List[Triple]:
        """Evaluate the view against the current store contents."""
        generation = getattr(self._store, "generation", None)
        if generation is None:
            return reachable_triples(self._store, self.root,
                                     self._follow, self._max_depth)
        cached = self._cached_triples
        if cached is not None and cached[0] == generation:
            return list(cached[1])
        result = reachable_triples(self._store, self.root,
                                   self._follow, self._max_depth)
        if getattr(self._store, "generation", None) == generation:
            self._cached_triples = (generation, result)
        return list(result)

    def resources(self) -> List[Resource]:
        """Resources in the view, root first."""
        generation = getattr(self._store, "generation", None)
        if generation is None:
            return reachable_resources(self._store, self.root,
                                       self._follow, self._max_depth)
        cached = self._cached_resources
        if cached is not None and cached[0] == generation:
            return list(cached[1])
        result = reachable_resources(self._store, self.root,
                                     self._follow, self._max_depth)
        if getattr(self._store, "generation", None) == generation:
            self._cached_resources = (generation, result)
        return list(result)

    def snapshot(self) -> TripleStore:
        """Materialize the view into an independent store."""
        snap = TripleStore()
        snap.add_all(self.triples())
        return snap

    def __len__(self) -> int:
        """Size of the closure (cache-hitting on an unchanged store)."""
        generation = getattr(self._store, "generation", None)
        cached = self._cached_triples
        if generation is not None and cached is not None \
                and cached[0] == generation:
            return len(cached[1])
        return len(self.triples())

"""XML persistence for triple stores.

Section 4.4: TRIM can *"persist (through XML files)"* the triple
representation.  The format is a flat statement list — close in spirit to
RDF/XML's striped form but simpler and loss-free for our typed literals::

    <?xml version='1.0' encoding='utf-8'?>
    <slim-store version="2">
      <namespace prefix="slim" uri="http://repro.example/slim#" />
      <triple>
        <subject>bundle-000001</subject>
        <property>slim:bundleName</property>
        <literal type="string">Electrolyte</literal>
      </triple>
      <triple>
        <subject>bundle-000001</subject>
        <property>slim:bundleContent</property>
        <resource>scrap-000004</resource>
      </triple>
    </slim-store>

Literal types (string/integer/float/boolean) are tagged so a save/load
round trip preserves node identity exactly — a property-tested invariant.

Format version 2 additionally escapes characters XML cannot carry
losslessly: C0 control characters, unpaired surrogates, and the
U+FFFE/U+FFFF noncharacters are rejected by parsers outright, and a
compliant parser normalizes ``\\r`` / ``\\r\\n`` to ``\\n`` on load.  All
would silently break the loss-free round trip, so every text field is
escaped on dump (``\\`` → ``\\\\``, unsafe characters → ``\\uXXXX``) and
unescaped on load.  Version-1 files (no escaping) still load unchanged.

:func:`save` is crash-safe: the document is written to a temporary file,
fsynced, and atomically renamed over the target, so a crash mid-save
leaves either the old file or the new one — never a torn mix.
:func:`save_snapshot` / :func:`load_snapshot` add a checksummed header on
top of that for the durability subsystem (:mod:`repro.triples.wal`).

Snapshot **format v3** drops XML entirely for the recovery hot path: a
binary columnar layout of length-prefixed CRC-checked segments — one
header segment (WAL group, triple count, namespace declarations), a
string *dictionary* of interned nodes (each URI/literal stored once),
then fixed-width triple rows of ``(subject-id, property-id, value-id,
sequence)`` integers.  Cold opens stop paying Python text parsing per
triple: the loader verifies each segment's checksum, decodes the
dictionary once, and either streams rows through the store's bulk path
or — for stores exposing ``restore_rows`` (the interned store) — hands
the dictionary ids straight to the intern table.  :func:`load_snapshot`
auto-detects the format from the leading bytes, so v1/v2 XML snapshots
keep loading unchanged; :func:`save_snapshot` defaults to v3 and keeps
``format=2`` as an escape hatch.

Loading is *streaming*: the readers feed the file through a pull parser
(:class:`xml.etree.ElementTree.XMLPullParser`) and clear each completed
``<triple>`` element immediately, so parse memory stays O(1) in document
size instead of materializing a full DOM — recovery of a multi-million
triple snapshot needs chunk-sized buffers, not snapshot-sized ones.
Triples are ingested through the store's bulk path
(:meth:`~repro.triples.store.TripleStore.bulk`), which also makes every
loader transactional: a parse or checksum error rolls the target store
back instead of leaving it half-populated.
"""

from __future__ import annotations

import io
import os
import re
import struct
import tempfile
import xml.etree.ElementTree as ET
import zlib
from typing import (IO, Dict, Iterable, Iterator, List, NamedTuple, Optional,
                    Tuple, Union)

from repro.errors import PersistenceError
from repro.triples.namespaces import NamespaceRegistry
from repro.triples.store import TripleStore
from repro.triples.triple import Literal, LiteralValue, Node, Resource, Triple

FORMAT_VERSION = "2"

#: First line of a text (v1/v2) snapshot file (see :func:`save_snapshot`).
SNAPSHOT_MAGIC = "#slim-snapshot"

#: Leading bytes of a binary columnar (v3) snapshot.  Eight bytes so one
#: fixed-size probe read distinguishes it from the text header, whose
#: first eight bytes are ``#slim-sn``.
SNAPSHOT_MAGIC_V3 = b"SLIMSNP3"

# v3 wire structs.  Segment framing is (kind, payload-length, CRC-32 of
# payload); triple rows are fixed-width columns of dictionary ids plus
# the insertion-sequence number.
_SEG = struct.Struct(">BII")
_ROW = struct.Struct(">IIIQ")
_VU32 = struct.Struct(">I")
_VU64 = struct.Struct(">Q")

_SEG_HEADER = ord("H")
_SEG_DICT = ord("D")
_SEG_ROWS = ord("T")
_SEG_END = ord("E")

#: Dictionary entries / triple rows per segment — bounds both writer
#: buffering and the blast radius of a single checksum.
_DICT_CHUNK = 4096
_ROWS_CHUNK = 8192

_RESOURCE_TAG = ord("r")
_LITERAL_TAG = {"string": ord("s"), "integer": ord("i"),
                "float": ord("f"), "boolean": ord("b")}
_TAG_TYPE = {tag: name for name, tag in _LITERAL_TAG.items()}

# Characters XML 1.0 cannot round-trip in element content: the C0 controls
# (minus tab and newline, which survive verbatim), carriage return (parsers
# normalize CR and CRLF to LF), unpaired surrogates and the U+FFFE/U+FFFF
# noncharacters (not XML Chars at all — expat rejects them on load), and
# our own escape character.
_UNSAFE_RE = re.compile(
    r"[\\\x00-\x08\x0b\x0c\x0e-\x1f\r\ud800-\udfff\ufffe\uffff]")
_ESCAPED_RE = re.compile(r"\\\\|\\u([0-9a-fA-F]{4})")


def _escape_text(text: str) -> str:
    """Escape backslashes and non-XML-safe characters (format v2)."""
    return _UNSAFE_RE.sub(
        lambda m: "\\\\" if m.group() == "\\" else "\\u%04x" % ord(m.group()),
        text)


def _unescape_text(text: str) -> str:
    """Invert :func:`_escape_text`."""
    def replace(match: "re.Match[str]") -> str:
        if match.group() == "\\\\":
            return "\\"
        return chr(int(match.group(1), 16))
    return _ESCAPED_RE.sub(replace, text)


class Document(NamedTuple):
    """A parsed persistence document: the store plus its metadata."""

    store: TripleStore
    namespaces: NamespaceRegistry
    version: int


def dumps(store: TripleStore,
          namespaces: Optional[NamespaceRegistry] = None, *,
          with_sequences: bool = False) -> str:
    """Serialize *store* to an XML string (UTF-8 text, one doc).

    With ``with_sequences=True`` each ``<triple>`` carries a ``seq``
    attribute recording its insertion-sequence number, so a reload
    reproduces the exact ordering state — the durability snapshots need
    this to mesh with sequence numbers replayed from the write-ahead log.
    """
    root = ET.Element("slim-store", {"version": FORMAT_VERSION})
    if namespaces is not None:
        for namespace in namespaces:
            ET.SubElement(root, "namespace",
                          {"prefix": namespace.prefix, "uri": namespace.uri})
    for triple in store:
        attrs = ({"seq": str(store.sequence_of(triple))}
                 if with_sequences else {})
        element = ET.SubElement(root, "triple", attrs)
        ET.SubElement(element, "subject").text = _escape_text(triple.subject.uri)
        ET.SubElement(element, "property").text = \
            _escape_text(triple.property.uri)
        if isinstance(triple.value, Resource):
            ET.SubElement(element, "resource").text = \
                _escape_text(triple.value.uri)
        else:
            literal = ET.SubElement(element, "literal",
                                    {"type": triple.value.type_name})
            literal.text = _escape_text(_encode_literal(triple.value.value))
    ET.indent(root)
    buffer = io.BytesIO()
    ET.ElementTree(root).write(buffer, encoding="utf-8", xml_declaration=True)
    return buffer.getvalue().decode("utf-8")


def loads_document(text: str,
                   namespaces: Optional[NamespaceRegistry] = None,
                   store: Optional[TripleStore] = None) -> Document:
    """Parse an XML string produced by :func:`dumps`.

    Namespace declarations always round-trip: they are registered into
    *namespaces* when given, else into a fresh registry; either way the
    populated registry is returned alongside the store.  *store* (which
    must be empty) receives the triples when given — through its bulk
    path, so a parse error rolls it back — else a fresh
    :class:`TripleStore` is built.
    """
    registry = namespaces if namespaces is not None else NamespaceRegistry()
    target = _load_target(store)
    with target.bulk():
        version = _parse_stream([text], registry, target)
    return Document(target, registry, version)


def loads(text: str,
          namespaces: Optional[NamespaceRegistry] = None) -> TripleStore:
    """Parse an XML string produced by :func:`dumps` into a fresh store.

    The document's namespace declarations are registered into *namespaces*
    when given; otherwise they are collected into a fresh registry that is
    re-attached to the returned store as ``store.namespaces`` — either
    way, nothing is dropped.  Use :func:`loads_document` for the explicit
    ``(store, namespaces, version)`` result.
    """
    document = loads_document(text, namespaces)
    if namespaces is None:
        document.store.namespaces = document.namespaces  # type: ignore[attr-defined]
    return document.store


def save(store: TripleStore, path: str,
         namespaces: Optional[NamespaceRegistry] = None) -> None:
    """Write *store* to *path* as XML, atomically (temp + fsync + rename)."""
    text = dumps(store, namespaces)
    _atomic_write(path, text.encode("utf-8"))


def load(path: str,
         namespaces: Optional[NamespaceRegistry] = None,
         store: Optional[TripleStore] = None) -> TripleStore:
    """Read a store previously written by :func:`save`.

    Streams the file in fixed-size chunks — peak memory is independent
    of file size.  *store* and *namespaces* behave as in
    :func:`loads_document`.
    """
    document = load_document(path, namespaces, store)
    if namespaces is None:
        document.store.namespaces = document.namespaces  # type: ignore[attr-defined]
    return document.store


def load_document(path: str,
                  namespaces: Optional[NamespaceRegistry] = None,
                  store: Optional[TripleStore] = None) -> Document:
    """Read a :class:`Document` previously written by :func:`save`."""
    registry = namespaces if namespaces is not None else NamespaceRegistry()
    target = _load_target(store)
    with _open_read(path) as handle:
        with target.bulk():
            version = _parse_stream(_file_chunks(handle, path),
                                    registry, target)
    return Document(target, registry, version)


# -- checksummed snapshots (durability subsystem) ----------------------------

def save_snapshot(store: TripleStore, path: str,
                  namespaces: Optional[NamespaceRegistry] = None,
                  group: int = 0, *, format: int = 3) -> None:
    """Atomically write a checksummed snapshot of *store* to *path*.

    The default (``format=3``) is the binary columnar layout described
    in :func:`dumps_snapshot_v3`.  ``format=2`` writes the legacy text
    form: the :func:`dumps` XML (with sequence numbers) prefixed by a
    one-line header recording the format version, the WAL group the
    snapshot covers, the payload length, and a CRC-32 of the payload::

        #slim-snapshot v2 group=17 bytes=4093 crc32=9f3c21aa

    :func:`load_snapshot` verifies all of it (and auto-detects which
    format it is reading), so a recovery never trusts a corrupt
    snapshot silently.
    """
    if format == 3:
        _atomic_write(path, dumps_snapshot_v3(store, namespaces, group=group))
        return
    if format != 2:
        raise PersistenceError(f"unsupported snapshot format: {format!r}")
    payload = dumps(store, namespaces, with_sequences=True).encode("utf-8")
    header = (f"{SNAPSHOT_MAGIC} v{FORMAT_VERSION} group={group} "
              f"bytes={len(payload)} crc32={zlib.crc32(payload):08x}\n")
    _atomic_write(path, header.encode("ascii") + payload)


def dumps_snapshot_v3(store: TripleStore,
                      namespaces: Optional[NamespaceRegistry] = None, *,
                      group: int = 0) -> bytes:
    """Serialize *store* as a binary columnar (format v3) snapshot.

    Layout: the 8-byte magic, then CRC-framed segments — ``H`` (group,
    triple count, namespace declarations), ``D`` dictionary chunks (every
    distinct node stored once as a type tag plus UTF-8 text), ``T`` row
    chunks (fixed-width ``(subject-id, property-id, value-id, sequence)``
    integers), and a zero-length ``E`` end marker.  Every string field is
    length-prefixed and encoded with ``surrogatepass``, so the format is
    loss-free for exactly the node texts the store accepts — no escaping
    layer, unlike the XML forms.
    """
    node_ids: Dict[Tuple[int, str], int] = {}
    entries: List[bytes] = []
    rows = bytearray()

    def intern(node: Node) -> int:
        if isinstance(node, Resource):
            key = (_RESOURCE_TAG, node.uri)
        else:
            tag = _LITERAL_TAG.get(node.type_name)
            if tag is None:
                raise PersistenceError(
                    f"unknown literal type: {node.type_name!r}")
            key = (tag, _encode_literal(node.value))
        node_id = node_ids.get(key)
        if node_id is None:
            node_id = len(entries)
            node_ids[key] = node_id
            entries.append(bytes((key[0],)) + _pack_vstr(key[1]))
        return node_id

    count = 0
    for triple in store:
        rows += _ROW.pack(intern(triple.subject), intern(triple.property),
                          intern(triple.value), store.sequence_of(triple))
        count += 1

    header = bytearray(_VU64.pack(group))
    header += _VU32.pack(count)
    declarations = list(namespaces) if namespaces is not None else []
    header += _VU32.pack(len(declarations))
    for namespace in declarations:
        header += _pack_vstr(namespace.prefix)
        header += _pack_vstr(namespace.uri)

    out = bytearray(SNAPSHOT_MAGIC_V3)
    _append_segment(out, _SEG_HEADER, bytes(header))
    for start in range(0, len(entries), _DICT_CHUNK):
        chunk = entries[start:start + _DICT_CHUNK]
        _append_segment(out, _SEG_DICT,
                        _VU32.pack(len(chunk)) + b"".join(chunk))
    stride = _ROW.size * _ROWS_CHUNK
    for start in range(0, len(rows), stride):
        chunk = bytes(rows[start:start + stride])
        _append_segment(out, _SEG_ROWS,
                        _VU32.pack(len(chunk) // _ROW.size) + chunk)
    _append_segment(out, _SEG_END, b"")
    return bytes(out)


def _append_segment(out: bytearray, kind: int, payload: bytes) -> None:
    out += _SEG.pack(kind, len(payload), zlib.crc32(payload))
    out += payload


def _pack_vstr(text: str) -> bytes:
    data = text.encode("utf-8", "surrogatepass")
    return _VU32.pack(len(data)) + data


def _unpack_vstr(payload: bytes, offset: int, path: str) -> Tuple[str, int]:
    end = offset + _VU32.size
    if end > len(payload):
        raise PersistenceError(f"{path}: truncated string in snapshot segment")
    (length,) = _VU32.unpack_from(payload, offset)
    offset, end = end, end + length
    if end > len(payload):
        raise PersistenceError(f"{path}: truncated string in snapshot segment")
    return payload[offset:end].decode("utf-8", "surrogatepass"), end


class Snapshot(NamedTuple):
    """A verified snapshot: the document plus the WAL group it covers."""

    document: Document
    group: int


def load_snapshot(path: str,
                  namespaces: Optional[NamespaceRegistry] = None,
                  store: Optional[TripleStore] = None) -> Snapshot:
    """Read and verify a snapshot written by :func:`save_snapshot`.

    Raises :class:`PersistenceError` on a missing/garbled header, a
    length mismatch, or a checksum mismatch.

    The payload is streamed: chunks are checksummed and fed to the pull
    parser as they are read, so verifying and loading a snapshot never
    materializes it in memory.  Length and CRC are checked at end of
    stream, *inside* the target store's bulk load — a mismatch aborts
    the bulk and rolls the store back, so a corrupt-but-well-formed
    payload can never leave triples behind.  *store* behaves as in
    :func:`loads_document`.
    """
    registry = namespaces if namespaces is not None else NamespaceRegistry()
    target = _load_target(store)
    with _open_read(path) as handle:
        probe = handle.read(len(SNAPSHOT_MAGIC_V3))
        if probe == SNAPSHOT_MAGIC_V3:
            return _load_snapshot_v3(handle, path, registry, target)
        handle.seek(0)
        header_bytes = handle.readline(_MAX_HEADER)
        if not header_bytes.endswith(b"\n"):
            raise PersistenceError(f"{path}: not a slim-snapshot (no header)")
        header = header_bytes[:-1].decode("ascii", "replace")
        fields = header.split()
        if len(fields) != 5 or fields[0] != SNAPSHOT_MAGIC:
            raise PersistenceError(
                f"{path}: not a slim-snapshot header: {header!r}")
        try:
            group = int(fields[2].removeprefix("group="))
            length = int(fields[3].removeprefix("bytes="))
            crc = int(fields[4].removeprefix("crc32="), 16)
        except ValueError as exc:
            raise PersistenceError(
                f"{path}: garbled snapshot header: {header!r}") from exc
        with target.bulk():
            version = _parse_stream(
                _verified_chunks(handle, path, length, crc),
                registry, target)
    return Snapshot(Document(target, registry, version), group)


def _load_snapshot_v3(handle: IO[bytes], path: str,
                      registry: NamespaceRegistry,
                      target: TripleStore) -> Snapshot:
    """Load a binary columnar snapshot (magic already consumed).

    Segments are verified as they are read (framing, CRC-32, internal
    lengths); the header's triple count must match the rows decoded, an
    ``E`` end marker must close the file, and every row id must resolve
    to a dictionary node of the right kind.  Any violation raises
    :class:`PersistenceError` — snapshots are written atomically, so a
    damaged one is refused outright rather than loaded partially.

    Stores exposing ``restore_rows`` (the interned store) take a fast
    path: after full validation the dictionary nodes and integer rows
    are handed over wholesale, mapping dictionary ids straight into the
    intern table.  Other stores stream ``Triple`` objects through their
    transactional bulk path.
    """
    kind, payload = _read_segment(handle, path)
    if kind != _SEG_HEADER:
        raise PersistenceError(
            f"{path}: v3 snapshot must start with a header segment")
    group, triple_count, declarations = _decode_v3_header(payload, path)
    for prefix, uri in declarations:
        registry.register(prefix, uri)

    nodes: List[Node] = []
    row_chunks: List[bytes] = []
    while True:
        kind, payload = _read_segment(handle, path)
        if kind == _SEG_END:
            if payload:
                raise PersistenceError(f"{path}: non-empty end segment")
            break
        if kind == _SEG_DICT:
            if row_chunks:
                raise PersistenceError(
                    f"{path}: dictionary segment after triple rows")
            _decode_dictionary(payload, path, nodes)
        elif kind == _SEG_ROWS:
            row_chunks.append(_checked_rows(payload, path))
        else:
            raise PersistenceError(
                f"{path}: unknown snapshot segment kind {kind:#x}")
    if handle.read(1):
        raise PersistenceError(f"{path}: trailing bytes after end segment")
    rows_seen = sum(len(chunk) // _ROW.size for chunk in row_chunks)
    if rows_seen != triple_count:
        raise PersistenceError(
            f"{path}: snapshot row count mismatch "
            f"({rows_seen} of {triple_count})")

    # Materialize the rows once, chunk by chunk: ``iter_unpack`` runs at
    # C speed into a plain list, so the million-row install loop below
    # pays list iteration instead of a Python generator resumption per
    # row.  The list is transient — it dies when this frame returns.
    rows: List[Tuple[int, int, int, int]] = []
    for chunk in row_chunks:
        rows.extend(_ROW.iter_unpack(chunk))
    row_chunks.clear()

    restore_rows = getattr(target, "restore_rows", None)
    if restore_rows is not None and not getattr(target, "_listeners", True):
        try:
            restore_rows(nodes, rows)
        except (IndexError, ValueError) as exc:
            raise PersistenceError(f"{path}: bad snapshot row: {exc}") from exc
    else:
        with target.bulk():
            for sid, pid, vid, seq in rows:
                try:
                    subject, prop, value = nodes[sid], nodes[pid], nodes[vid]
                except IndexError as exc:
                    raise PersistenceError(
                        f"{path}: triple row references an unknown "
                        "dictionary id") from exc
                if not isinstance(subject, Resource) \
                        or not isinstance(prop, Resource):
                    raise PersistenceError(
                        f"{path}: triple subject/property must be resources")
                target.restore(Triple(subject, prop, value), seq)
    return Snapshot(Document(target, registry, 3), group)


def _read_segment(handle: IO[bytes], path: str) -> Tuple[int, bytes]:
    """Read one CRC-framed segment; raise on truncation or corruption."""
    head = handle.read(_SEG.size)
    if len(head) != _SEG.size:
        raise PersistenceError(f"{path}: truncated snapshot segment header")
    kind, length, crc = _SEG.unpack(head)
    payload = handle.read(length)
    if len(payload) != length:
        raise PersistenceError(
            f"{path}: truncated snapshot segment "
            f"({len(payload)} of {length} bytes)")
    if zlib.crc32(payload) != crc:
        raise PersistenceError(f"{path}: snapshot segment checksum mismatch")
    return kind, payload


def _decode_v3_header(payload: bytes,
                      path: str) -> Tuple[int, int, List[Tuple[str, str]]]:
    fixed = _VU64.size + 2 * _VU32.size
    if len(payload) < fixed:
        raise PersistenceError(f"{path}: truncated v3 snapshot header")
    (group,) = _VU64.unpack_from(payload, 0)
    (triple_count,) = _VU32.unpack_from(payload, _VU64.size)
    (ns_count,) = _VU32.unpack_from(payload, _VU64.size + _VU32.size)
    offset = fixed
    declarations: List[Tuple[str, str]] = []
    for _ in range(ns_count):
        prefix, offset = _unpack_vstr(payload, offset, path)
        uri, offset = _unpack_vstr(payload, offset, path)
        declarations.append((prefix, uri))
    if offset != len(payload):
        raise PersistenceError(f"{path}: v3 snapshot header length mismatch")
    return group, triple_count, declarations


def _decode_dictionary(payload: bytes, path: str,
                       nodes: List[Node]) -> None:
    if len(payload) < _VU32.size:
        raise PersistenceError(f"{path}: truncated dictionary segment")
    (count,) = _VU32.unpack_from(payload, 0)
    offset = _VU32.size
    for _ in range(count):
        if offset >= len(payload):
            raise PersistenceError(f"{path}: truncated dictionary segment")
        tag = payload[offset]
        text, offset = _unpack_vstr(payload, offset + 1, path)
        if tag == _RESOURCE_TAG:
            nodes.append(Resource(text))
        else:
            type_name = _TAG_TYPE.get(tag)
            if type_name is None:
                raise PersistenceError(
                    f"{path}: unknown dictionary node tag {tag:#x}")
            nodes.append(Literal(_decode_literal(type_name, text)))
    if offset != len(payload):
        raise PersistenceError(f"{path}: dictionary segment length mismatch")


def _checked_rows(payload: bytes, path: str) -> bytes:
    if len(payload) < _VU32.size:
        raise PersistenceError(f"{path}: truncated triple segment")
    (count,) = _VU32.unpack_from(payload, 0)
    rows = payload[_VU32.size:]
    if len(rows) != count * _ROW.size:
        raise PersistenceError(f"{path}: triple segment length mismatch")
    return rows


def _verified_chunks(handle: IO[bytes], path: str, length: int,
                     crc: int) -> Iterator[bytes]:
    """Yield payload chunks, verifying byte count and CRC-32 at EOF."""
    seen = 0
    running = 0
    for chunk in _file_chunks(handle, path):
        seen += len(chunk)
        running = zlib.crc32(chunk, running)
        yield chunk
    if seen != length:
        raise PersistenceError(
            f"{path}: snapshot payload truncated ({seen} of {length} bytes)")
    if running != crc:
        raise PersistenceError(f"{path}: snapshot checksum mismatch")


# -- internals ---------------------------------------------------------------

#: Streaming read granularity; also bounds parse memory for the loaders.
_CHUNK = 64 * 1024
#: Upper bound on a plausible snapshot header line.
_MAX_HEADER = 256


def _load_target(store: Optional[TripleStore]) -> TripleStore:
    if store is None:
        return TripleStore()
    if len(store):
        raise PersistenceError("load target store must be empty")
    return store


def _open_read(path: str) -> IO[bytes]:
    try:
        return open(path, "rb")
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc


def _file_chunks(handle: IO[bytes], path: str) -> Iterator[bytes]:
    while True:
        try:
            chunk = handle.read(_CHUNK)
        except OSError as exc:
            raise PersistenceError(f"cannot read {path}: {exc}") from exc
        if not chunk:
            return
        yield chunk


def _parse_stream(chunks: Iterable[Union[str, bytes]],
                  registry: NamespaceRegistry, store: TripleStore) -> int:
    """Pull-parse a slim-store document into *store*; returns its version.

    Each completed direct child of the root is handled (namespace
    registered, triple added/restored) and then cleared from the
    in-progress tree, so memory stays bounded by one element plus one
    chunk no matter how large the document is.
    """
    parser = ET.XMLPullParser(events=("start", "end"))
    root: Optional[ET.Element] = None
    version = 1
    escaped = False
    depth = 0

    def drain() -> None:
        nonlocal root, version, escaped, depth
        for event, element in parser.read_events():
            if event == "start":
                if depth == 0:
                    if element.tag != "slim-store":
                        raise PersistenceError(
                            f"expected <slim-store> root, got <{element.tag}>")
                    try:
                        version = int(element.get("version", "1"))
                    except ValueError as exc:
                        raise PersistenceError(
                            "bad slim-store version: "
                            f"{element.get('version')!r}") from exc
                    escaped = version >= 2
                    root = element
                depth += 1
                continue
            depth -= 1
            if depth != 1:
                continue
            if element.tag == "namespace":
                prefix = element.get("prefix")
                uri = element.get("uri")
                if not prefix or not uri:
                    raise PersistenceError(
                        "namespace element missing prefix/uri")
                registry.register(prefix, uri)
            elif element.tag == "triple":
                statement = _parse_triple(element, escaped)
                seq = element.get("seq")
                if seq is None:
                    store.add(statement)
                else:
                    try:
                        store.restore(statement, int(seq))
                    except ValueError as exc:
                        raise PersistenceError(
                            f"bad seq attribute: {seq!r}") from exc
            else:
                raise PersistenceError(
                    f"unexpected element <{element.tag}>")
            assert root is not None
            root.clear()  # drop the processed child: O(1) parse memory
    try:
        for chunk in chunks:
            parser.feed(chunk)
            drain()
        parser.close()
    except ET.ParseError as exc:
        raise PersistenceError(f"malformed slim-store XML: {exc}") from exc
    drain()
    if root is None:
        raise PersistenceError("malformed slim-store XML: empty document")
    return version


def _atomic_write(path: str, data: bytes) -> None:
    """Write *data* to *path* via a unique temp file + fsync + atomic rename.

    The temp name comes from :func:`tempfile.mkstemp` (in the target's
    directory, so the rename stays atomic), not a fixed ``path + '.tmp'``
    — concurrent savers must never clobber each other's partial data or
    rename someone else's torn file into place.
    """
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    except OSError as exc:
        raise PersistenceError(f"cannot write {path}: {exc}") from exc
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError as exc:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise PersistenceError(f"cannot write {path}: {exc}") from exc
    _fsync_directory(directory)


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry (rename durability); best-effort."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _parse_triple(element: ET.Element, escaped: bool) -> Triple:
    unescape = _unescape_text if escaped else (lambda text: text)
    subject = unescape(_required_text(element, "subject"))
    prop = unescape(_required_text(element, "property"))
    resource = element.find("resource")
    literal = element.find("literal")
    if (resource is None) == (literal is None):
        raise PersistenceError(
            "triple must have exactly one of <resource> or <literal>")
    value: Union[Resource, Literal]
    if resource is not None:
        if not resource.text:
            raise PersistenceError("empty <resource> value")
        value = Resource(unescape(resource.text))
    else:
        value = Literal(_decode_literal(literal.get("type", "string"),
                                        unescape(literal.text or "")))
    return Triple(Resource(subject), Resource(prop), value)


def _required_text(element: ET.Element, tag: str) -> str:
    child = element.find(tag)
    if child is None or not child.text:
        raise PersistenceError(f"triple missing <{tag}>")
    return child.text


def _encode_literal(value: LiteralValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _decode_literal(type_name: str, text: str) -> LiteralValue:
    if type_name == "string":
        return text
    if type_name == "integer":
        try:
            return int(text)
        except ValueError as exc:
            raise PersistenceError(f"bad integer literal: {text!r}") from exc
    if type_name == "float":
        try:
            return float(text)
        except ValueError as exc:
            raise PersistenceError(f"bad float literal: {text!r}") from exc
    if type_name == "boolean":
        if text == "true":
            return True
        if text == "false":
            return False
        raise PersistenceError(f"bad boolean literal: {text!r}")
    raise PersistenceError(f"unknown literal type: {type_name!r}")

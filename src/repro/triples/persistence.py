"""XML persistence for triple stores.

Section 4.4: TRIM can *"persist (through XML files)"* the triple
representation.  The format is a flat statement list — close in spirit to
RDF/XML's striped form but simpler and loss-free for our typed literals::

    <slim-store xmlns-slim="http://repro.example/slim#" ...>
      <triple>
        <subject>bundle-000001</subject>
        <property>slim:bundleName</property>
        <literal type="string">Electrolyte</literal>
      </triple>
      <triple>
        <subject>bundle-000001</subject>
        <property>slim:bundleContent</property>
        <resource>scrap-000004</resource>
      </triple>
    </slim-store>

Literal types (string/integer/float/boolean) are tagged so a save/load
round trip preserves node identity exactly — a property-tested invariant.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET
from typing import Optional, Union

from repro.errors import PersistenceError
from repro.triples.namespaces import NamespaceRegistry
from repro.triples.store import TripleStore
from repro.triples.triple import Literal, LiteralValue, Resource, Triple

FORMAT_VERSION = "1"


def dumps(store: TripleStore,
          namespaces: Optional[NamespaceRegistry] = None) -> str:
    """Serialize *store* to an XML string (UTF-8 text, one doc)."""
    root = ET.Element("slim-store", {"version": FORMAT_VERSION})
    if namespaces is not None:
        for namespace in namespaces:
            ET.SubElement(root, "namespace",
                          {"prefix": namespace.prefix, "uri": namespace.uri})
    for triple in store:
        element = ET.SubElement(root, "triple")
        ET.SubElement(element, "subject").text = triple.subject.uri
        ET.SubElement(element, "property").text = triple.property.uri
        if isinstance(triple.value, Resource):
            ET.SubElement(element, "resource").text = triple.value.uri
        else:
            literal = ET.SubElement(element, "literal",
                                    {"type": triple.value.type_name})
            literal.text = _encode_literal(triple.value.value)
    ET.indent(root)
    buffer = io.BytesIO()
    ET.ElementTree(root).write(buffer, encoding="utf-8", xml_declaration=True)
    return buffer.getvalue().decode("utf-8")


def loads(text: str,
          namespaces: Optional[NamespaceRegistry] = None) -> TripleStore:
    """Parse an XML string produced by :func:`dumps` into a fresh store."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PersistenceError(f"malformed slim-store XML: {exc}") from exc
    if root.tag != "slim-store":
        raise PersistenceError(f"expected <slim-store> root, got <{root.tag}>")
    store = TripleStore()
    for child in root:
        if child.tag == "namespace":
            if namespaces is not None:
                prefix = child.get("prefix")
                uri = child.get("uri")
                if not prefix or not uri:
                    raise PersistenceError("namespace element missing prefix/uri")
                namespaces.register(prefix, uri)
            continue
        if child.tag != "triple":
            raise PersistenceError(f"unexpected element <{child.tag}>")
        store.add(_parse_triple(child))
    return store


def save(store: TripleStore, path: str,
         namespaces: Optional[NamespaceRegistry] = None) -> None:
    """Write *store* to *path* as XML."""
    text = dumps(store, namespaces)
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    except OSError as exc:
        raise PersistenceError(f"cannot write {path}: {exc}") from exc


def load(path: str,
         namespaces: Optional[NamespaceRegistry] = None) -> TripleStore:
    """Read a store previously written by :func:`save`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    return loads(text, namespaces)


def _parse_triple(element: ET.Element) -> Triple:
    subject = _required_text(element, "subject")
    prop = _required_text(element, "property")
    resource = element.find("resource")
    literal = element.find("literal")
    if (resource is None) == (literal is None):
        raise PersistenceError(
            "triple must have exactly one of <resource> or <literal>")
    value: Union[Resource, Literal]
    if resource is not None:
        if not resource.text:
            raise PersistenceError("empty <resource> value")
        value = Resource(resource.text)
    else:
        value = Literal(_decode_literal(literal.get("type", "string"),
                                        literal.text or ""))
    return Triple(Resource(subject), Resource(prop), value)


def _required_text(element: ET.Element, tag: str) -> str:
    child = element.find(tag)
    if child is None or not child.text:
        raise PersistenceError(f"triple missing <{tag}>")
    return child.text


def _encode_literal(value: LiteralValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _decode_literal(type_name: str, text: str) -> LiteralValue:
    if type_name == "string":
        return text
    if type_name == "integer":
        try:
            return int(text)
        except ValueError as exc:
            raise PersistenceError(f"bad integer literal: {text!r}") from exc
    if type_name == "float":
        try:
            return float(text)
        except ValueError as exc:
            raise PersistenceError(f"bad float literal: {text!r}") from exc
    if type_name == "boolean":
        if text == "true":
            return True
        if text == "false":
            return False
        raise PersistenceError(f"bad boolean literal: {text!r}")
    raise PersistenceError(f"unknown literal type: {type_name!r}")

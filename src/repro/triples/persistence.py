"""XML persistence for triple stores.

Section 4.4: TRIM can *"persist (through XML files)"* the triple
representation.  The format is a flat statement list — close in spirit to
RDF/XML's striped form but simpler and loss-free for our typed literals::

    <?xml version='1.0' encoding='utf-8'?>
    <slim-store version="2">
      <namespace prefix="slim" uri="http://repro.example/slim#" />
      <triple>
        <subject>bundle-000001</subject>
        <property>slim:bundleName</property>
        <literal type="string">Electrolyte</literal>
      </triple>
      <triple>
        <subject>bundle-000001</subject>
        <property>slim:bundleContent</property>
        <resource>scrap-000004</resource>
      </triple>
    </slim-store>

Literal types (string/integer/float/boolean) are tagged so a save/load
round trip preserves node identity exactly — a property-tested invariant.

Format version 2 additionally escapes characters XML cannot carry
losslessly: C0 control characters, unpaired surrogates, and the
U+FFFE/U+FFFF noncharacters are rejected by parsers outright, and a
compliant parser normalizes ``\\r`` / ``\\r\\n`` to ``\\n`` on load.  All
would silently break the loss-free round trip, so every text field is
escaped on dump (``\\`` → ``\\\\``, unsafe characters → ``\\uXXXX``) and
unescaped on load.  Version-1 files (no escaping) still load unchanged.

:func:`save` is crash-safe: the document is written to a temporary file,
fsynced, and atomically renamed over the target, so a crash mid-save
leaves either the old file or the new one — never a torn mix.
:func:`save_snapshot` / :func:`load_snapshot` add a checksummed header on
top of that for the durability subsystem (:mod:`repro.triples.wal`).
"""

from __future__ import annotations

import io
import os
import re
import tempfile
import xml.etree.ElementTree as ET
import zlib
from typing import NamedTuple, Optional, Union

from repro.errors import PersistenceError
from repro.triples.namespaces import NamespaceRegistry
from repro.triples.store import TripleStore
from repro.triples.triple import Literal, LiteralValue, Resource, Triple

FORMAT_VERSION = "2"

#: First line of a snapshot file (see :func:`save_snapshot`).
SNAPSHOT_MAGIC = "#slim-snapshot"

# Characters XML 1.0 cannot round-trip in element content: the C0 controls
# (minus tab and newline, which survive verbatim), carriage return (parsers
# normalize CR and CRLF to LF), unpaired surrogates and the U+FFFE/U+FFFF
# noncharacters (not XML Chars at all — expat rejects them on load), and
# our own escape character.
_UNSAFE_RE = re.compile(
    r"[\\\x00-\x08\x0b\x0c\x0e-\x1f\r\ud800-\udfff\ufffe\uffff]")
_ESCAPED_RE = re.compile(r"\\\\|\\u([0-9a-fA-F]{4})")


def _escape_text(text: str) -> str:
    """Escape backslashes and non-XML-safe characters (format v2)."""
    return _UNSAFE_RE.sub(
        lambda m: "\\\\" if m.group() == "\\" else "\\u%04x" % ord(m.group()),
        text)


def _unescape_text(text: str) -> str:
    """Invert :func:`_escape_text`."""
    def replace(match: "re.Match[str]") -> str:
        if match.group() == "\\\\":
            return "\\"
        return chr(int(match.group(1), 16))
    return _ESCAPED_RE.sub(replace, text)


class Document(NamedTuple):
    """A parsed persistence document: the store plus its metadata."""

    store: TripleStore
    namespaces: NamespaceRegistry
    version: int


def dumps(store: TripleStore,
          namespaces: Optional[NamespaceRegistry] = None, *,
          with_sequences: bool = False) -> str:
    """Serialize *store* to an XML string (UTF-8 text, one doc).

    With ``with_sequences=True`` each ``<triple>`` carries a ``seq``
    attribute recording its insertion-sequence number, so a reload
    reproduces the exact ordering state — the durability snapshots need
    this to mesh with sequence numbers replayed from the write-ahead log.
    """
    root = ET.Element("slim-store", {"version": FORMAT_VERSION})
    if namespaces is not None:
        for namespace in namespaces:
            ET.SubElement(root, "namespace",
                          {"prefix": namespace.prefix, "uri": namespace.uri})
    for triple in store:
        attrs = ({"seq": str(store.sequence_of(triple))}
                 if with_sequences else {})
        element = ET.SubElement(root, "triple", attrs)
        ET.SubElement(element, "subject").text = _escape_text(triple.subject.uri)
        ET.SubElement(element, "property").text = \
            _escape_text(triple.property.uri)
        if isinstance(triple.value, Resource):
            ET.SubElement(element, "resource").text = \
                _escape_text(triple.value.uri)
        else:
            literal = ET.SubElement(element, "literal",
                                    {"type": triple.value.type_name})
            literal.text = _escape_text(_encode_literal(triple.value.value))
    ET.indent(root)
    buffer = io.BytesIO()
    ET.ElementTree(root).write(buffer, encoding="utf-8", xml_declaration=True)
    return buffer.getvalue().decode("utf-8")


def loads_document(text: str,
                   namespaces: Optional[NamespaceRegistry] = None) -> Document:
    """Parse an XML string produced by :func:`dumps`.

    Namespace declarations always round-trip: they are registered into
    *namespaces* when given, else into a fresh registry; either way the
    populated registry is returned alongside the store.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PersistenceError(f"malformed slim-store XML: {exc}") from exc
    if root.tag != "slim-store":
        raise PersistenceError(f"expected <slim-store> root, got <{root.tag}>")
    try:
        version = int(root.get("version", "1"))
    except ValueError as exc:
        raise PersistenceError(
            f"bad slim-store version: {root.get('version')!r}") from exc
    registry = namespaces if namespaces is not None else NamespaceRegistry()
    escaped = version >= 2
    store = TripleStore()
    for child in root:
        if child.tag == "namespace":
            prefix = child.get("prefix")
            uri = child.get("uri")
            if not prefix or not uri:
                raise PersistenceError("namespace element missing prefix/uri")
            registry.register(prefix, uri)
            continue
        if child.tag != "triple":
            raise PersistenceError(f"unexpected element <{child.tag}>")
        statement = _parse_triple(child, escaped)
        seq = child.get("seq")
        if seq is None:
            store.add(statement)
        else:
            try:
                store.restore(statement, int(seq))
            except ValueError as exc:
                raise PersistenceError(f"bad seq attribute: {seq!r}") from exc
    return Document(store, registry, version)


def loads(text: str,
          namespaces: Optional[NamespaceRegistry] = None) -> TripleStore:
    """Parse an XML string produced by :func:`dumps` into a fresh store.

    The document's namespace declarations are registered into *namespaces*
    when given; otherwise they are collected into a fresh registry that is
    re-attached to the returned store as ``store.namespaces`` — either
    way, nothing is dropped.  Use :func:`loads_document` for the explicit
    ``(store, namespaces, version)`` result.
    """
    document = loads_document(text, namespaces)
    if namespaces is None:
        document.store.namespaces = document.namespaces  # type: ignore[attr-defined]
    return document.store


def save(store: TripleStore, path: str,
         namespaces: Optional[NamespaceRegistry] = None) -> None:
    """Write *store* to *path* as XML, atomically (temp + fsync + rename)."""
    text = dumps(store, namespaces)
    _atomic_write(path, text.encode("utf-8"))


def load(path: str,
         namespaces: Optional[NamespaceRegistry] = None) -> TripleStore:
    """Read a store previously written by :func:`save`."""
    return loads(_read_bytes(path).decode("utf-8"), namespaces)


def load_document(path: str,
                  namespaces: Optional[NamespaceRegistry] = None) -> Document:
    """Read a :class:`Document` previously written by :func:`save`."""
    return loads_document(_read_bytes(path).decode("utf-8"), namespaces)


# -- checksummed snapshots (durability subsystem) ----------------------------

def save_snapshot(store: TripleStore, path: str,
                  namespaces: Optional[NamespaceRegistry] = None,
                  group: int = 0) -> None:
    """Atomically write a checksummed snapshot of *store* to *path*.

    The file is the :func:`dumps` XML (with sequence numbers) prefixed by
    a one-line header recording the format version, the WAL group the
    snapshot covers, the payload length, and a CRC-32 of the payload::

        #slim-snapshot v2 group=17 bytes=4093 crc32=9f3c21aa

    :func:`load_snapshot` verifies all of it, so a recovery never trusts
    a corrupt snapshot silently.
    """
    payload = dumps(store, namespaces, with_sequences=True).encode("utf-8")
    header = (f"{SNAPSHOT_MAGIC} v{FORMAT_VERSION} group={group} "
              f"bytes={len(payload)} crc32={zlib.crc32(payload):08x}\n")
    _atomic_write(path, header.encode("ascii") + payload)


class Snapshot(NamedTuple):
    """A verified snapshot: the document plus the WAL group it covers."""

    document: Document
    group: int


def load_snapshot(path: str,
                  namespaces: Optional[NamespaceRegistry] = None) -> Snapshot:
    """Read and verify a snapshot written by :func:`save_snapshot`.

    Raises :class:`PersistenceError` on a missing/garbled header, a
    length mismatch, or a checksum mismatch.
    """
    data = _read_bytes(path)
    newline = data.find(b"\n")
    if newline < 0:
        raise PersistenceError(f"{path}: not a slim-snapshot (no header)")
    header, payload = data[:newline].decode("ascii", "replace"), data[newline + 1:]
    fields = header.split()
    if len(fields) != 5 or fields[0] != SNAPSHOT_MAGIC:
        raise PersistenceError(f"{path}: not a slim-snapshot header: {header!r}")
    try:
        group = int(fields[2].removeprefix("group="))
        length = int(fields[3].removeprefix("bytes="))
        crc = int(fields[4].removeprefix("crc32="), 16)
    except ValueError as exc:
        raise PersistenceError(f"{path}: garbled snapshot header: {header!r}") \
            from exc
    if len(payload) != length:
        raise PersistenceError(
            f"{path}: snapshot payload truncated ({len(payload)} of {length} bytes)")
    if zlib.crc32(payload) != crc:
        raise PersistenceError(f"{path}: snapshot checksum mismatch")
    return Snapshot(loads_document(payload.decode("utf-8"), namespaces), group)


# -- internals ---------------------------------------------------------------

def _atomic_write(path: str, data: bytes) -> None:
    """Write *data* to *path* via a unique temp file + fsync + atomic rename.

    The temp name comes from :func:`tempfile.mkstemp` (in the target's
    directory, so the rename stays atomic), not a fixed ``path + '.tmp'``
    — concurrent savers must never clobber each other's partial data or
    rename someone else's torn file into place.
    """
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    except OSError as exc:
        raise PersistenceError(f"cannot write {path}: {exc}") from exc
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError as exc:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise PersistenceError(f"cannot write {path}: {exc}") from exc
    _fsync_directory(directory)


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry (rename durability); best-effort."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _read_bytes(path: str) -> bytes:
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc


def _parse_triple(element: ET.Element, escaped: bool) -> Triple:
    unescape = _unescape_text if escaped else (lambda text: text)
    subject = unescape(_required_text(element, "subject"))
    prop = unescape(_required_text(element, "property"))
    resource = element.find("resource")
    literal = element.find("literal")
    if (resource is None) == (literal is None):
        raise PersistenceError(
            "triple must have exactly one of <resource> or <literal>")
    value: Union[Resource, Literal]
    if resource is not None:
        if not resource.text:
            raise PersistenceError("empty <resource> value")
        value = Resource(unescape(resource.text))
    else:
        value = Literal(_decode_literal(literal.get("type", "string"),
                                        unescape(literal.text or "")))
    return Triple(Resource(subject), Resource(prop), value)


def _required_text(element: ET.Element, tag: str) -> str:
    child = element.find(tag)
    if child is None or not child.text:
        raise PersistenceError(f"triple missing <{tag}>")
    return child.text


def _encode_literal(value: LiteralValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _decode_literal(type_name: str, text: str) -> LiteralValue:
    if type_name == "string":
        return text
    if type_name == "integer":
        try:
            return int(text)
        except ValueError as exc:
            raise PersistenceError(f"bad integer literal: {text!r}") from exc
    if type_name == "float":
        try:
            return float(text)
        except ValueError as exc:
            raise PersistenceError(f"bad float literal: {text!r}") from exc
    if type_name == "boolean":
        if text == "true":
            return True
        if text == "false":
            return False
        raise PersistenceError(f"bad boolean literal: {text!r}")
    raise PersistenceError(f"unknown literal type: {type_name!r}")

"""Sharded triple stores: hash-partitioned ingest and scatter-gather query.

The paper's SLIM store keeps all superimposed information in one TRIM
triple pool, which caps both ingest and query throughput at a single
core (and a single WAL fsync stream) no matter how many users annotate
base documents.  This module partitions the pool by *subject hash*
across N independent store instances:

- :class:`ShardedTripleStore` — presents the whole
  :class:`~repro.triples.store.TripleStore` surface (``add`` / ``remove``
  / ``select`` / ``match`` / ``count`` / ``bulk`` / ``add_listener`` /
  views / persistence iteration) over N shards.  Subject-bound
  operations route to exactly one shard; everything else scatter-gathers
  and merges by global insertion sequence.  A shared thread pool fans
  large ingests out per shard.
- :class:`ShardedDurability` — one
  :class:`~repro.triples.wal.Durability` orchestrator (own WAL directory
  + snapshot) per shard, plus a coordinator *meta-WAL* that makes
  multi-shard commit groups atomic through two-phase commit.
- :func:`recover_sharded` — rebuild a sharded durable directory,
  finishing or rolling back any transaction a crash left in doubt.

Routing
-------

A triple lives on shard ``crc32(subject.uri) % N``.  CRC-32 is stable
across processes and Python versions (unlike the salted builtin
``hash``), so a directory written by one process routes identically in
the next.  Subject-bound probes — the DMI's dominant traffic
(``value_of``, liveness checks, entity reads) — therefore touch exactly
one shard and stay flat-latency as N grows.

Global ordering
---------------

The sharded store allocates insertion-sequence numbers from one global
counter and inserts into shards via
:meth:`~repro.triples.store.TripleStore.restore`, so each shard's
sequence numbers are *globally* meaningful.  Cross-shard ``select()`` /
iteration merge per-shard results by sequence, reproducing exactly the
insertion order an unsharded store would report — the parity suite
(``tests/test_sharding.py``) pins this against a plain store over
randomized op sequences.

Query planning
--------------

The PR 1 selectivity planner needs no fork: it reads statistics through
``store.count()``, and the sharded ``count()`` returns the *sum* of the
per-shard index bucket sizes — a global selectivity estimate.  Pattern
evaluation grounds subjects as bindings propagate, so a plan's
subject-bound probes route to single shards while unbound patterns
scatter-gather; ``Query.run`` dedups merged bindings canonically, same
as before.

Two-phase commit (DESIGN.md §11)
--------------------------------

A commit group touching one shard is that shard's ordinary WAL group
commit — no coordination, one fsync.  A group touching k > 1 shards
runs 2PC:

1. **Prepare** — each participant's WAL durably stages the group's
   changes behind a ``'P'`` record carrying (txn, participant count,
   epoch); no ``'C'`` boundary yet, so a crash here recovers to
   rollback everywhere.
2. **Decide** — the coordinator appends a commit decision for txn to
   the meta-WAL and fsyncs it.  This single record is the commit point.
3. **Fence** — each participant's WAL gets its normal ``'C'`` boundary.
   A crash between decide and fence is repaired at recovery: the
   meta-WAL says *commit*, so the prepared group is fenced then.

Recovery therefore always lands on an all-shards-consistent state equal
to either the full commit or the full rollback of every in-flight
transaction — the crash matrix in ``tests/test_sharding.py`` sweeps
every window.  The *epoch* in the prepare record is the store
incarnation: a fresh meta-WAL picks an epoch above any found in stale
prepare records, so leftovers from a discarded meta-WAL can never be
mistaken for a current transaction.
"""

from __future__ import annotations

import heapq
import os
import re
import struct
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import (Callable, Dict, Iterable, Iterator, List, NamedTuple,
                    Optional, Set, Tuple)

from repro.errors import PersistenceError, TransactionError, TripleNotFoundError
from repro.triples.namespaces import NamespaceRegistry
from repro.triples.persistence import _atomic_write
from repro.triples.store import AtomicListener, ChangeListener, TripleStore
from repro.triples.triple import Literal, Node, Resource, Triple
from repro.triples.wal import (WAL_FILE, Durability, PrepareInfo,
                               RecoveryResult, _frame, _GroupCommitFlusher,
                               encode_commit, recover, scan_wal)

META_FILE = "meta.wal"
META_MAGIC = b"SLIMMETA"
SHARD_DIR_FMT = "shard-%03d"
_SHARD_DIR_RE = re.compile(r"^shard-(\d{3})$")

_FRAME = struct.Struct(">II")
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")

#: Below this many triples, a sharded ``add_all`` applies per-shard groups
#: inline — pool dispatch overhead would outweigh any fsync/CPU overlap.
_PARALLEL_MIN = 512


def shard_of(uri: str, shard_count: int) -> int:
    """The shard index owning subject *uri*: ``crc32(uri) % shard_count``.

    CRC-32 (not the salted builtin ``hash``) keeps routing stable across
    processes, so a durable directory reopens onto the same layout.
    """
    return zlib.crc32(uri.encode("utf-8", "surrogatepass")) % shard_count


class SimulatedCrash(BaseException):
    """Raised by test crash hooks to kill a 2PC mid-protocol.

    Derives from :class:`BaseException` so the coordinator's abort
    handling (which catches ``Exception``-level failures and rolls
    prepared shards back) does not treat a simulated kill as a live
    failure — a real crash gets no cleanup either.
    """


class ShardedBulkLoad:
    """Context manager bracketing a bulk load across every shard.

    Entering opens each shard's deferred-indexing bulk; a clean exit
    flushes them all (and fires the sharded store's atomic listeners at
    depth zero); an exception aborts every shard's still-pending inserts.
    Same contract as :class:`~repro.triples.store.BulkLoad`, shard-wide.
    """

    __slots__ = ("_store",)

    def __init__(self, store: "ShardedTripleStore") -> None:
        self._store = store

    def __enter__(self) -> "ShardedTripleStore":
        self._store._begin_bulk()
        return self._store

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._store._end_bulk()
        else:
            self._store._abort_bulk()
        return False


class ShardedTripleStore:
    """N hash-partitioned stores behind the single-store API.

    *shards* fixes the partition count (it also fixes the on-disk layout
    under :class:`ShardedDurability` — reopening a directory with a
    different count is rejected).  *store_factory* picks the per-shard
    implementation (:class:`~repro.triples.store.TripleStore` or
    :class:`~repro.triples.interned.InternedTripleStore` — both honour
    the contract the parity suite pins).  *concurrent* is forwarded to
    every shard.

    Mutations route by subject; reads either route (subject bound) or
    scatter-gather with a sequence-merge.  Change listeners subscribe at
    the sharded level and receive the union of every shard's events with
    their global sequence numbers.  The store-level lock only guards the
    global sequence counter and listener bookkeeping — per-shard locks
    serialize actual index mutation, which is what lets ingest fan out.
    """

    def __init__(self, shards: int = 4, concurrent: bool = False,
                 store_factory: Callable[..., TripleStore] = TripleStore,
                 max_workers: Optional[int] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self._shards: List[TripleStore] = [
            store_factory(concurrent=concurrent) for _ in range(shards)]
        self.concurrent = concurrent
        self._lock = threading.RLock()
        self._sequence = 0
        self._listeners: List[ChangeListener] = []
        self._forwarding = False
        self._atomic_depth = 0
        self._atomic_listeners: List[AtomicListener] = []
        self._in_bulk = False
        self._bulk_owner: Optional[int] = None
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # -- topology -------------------------------------------------------------

    @property
    def shards(self) -> Tuple[TripleStore, ...]:
        """The per-shard stores, in shard-index order."""
        return tuple(self._shards)

    @property
    def shard_count(self) -> int:
        """How many shards partition this store."""
        return len(self._shards)

    def shard_index(self, subject: Resource) -> int:
        """Which shard owns triples with this subject."""
        return shard_of(subject.uri, len(self._shards))

    def shard_for(self, subject: Resource) -> TripleStore:
        """The shard store owning triples with this subject."""
        return self._shards[self.shard_index(subject)]

    def route(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> Tuple[str, int]:
        """How a selection would be executed: ``('single', shard_index)``
        for subject-bound probes, ``('scatter', shard_count)`` otherwise.
        Surfaced for tests, ``explain`` output, and the routing docs."""
        if subject is not None:
            return ("single", self.shard_index(subject))
        return ("scatter", len(self._shards))

    # -- thread pool (ingest fan-out) ----------------------------------------

    def _get_pool(self) -> Optional[ThreadPoolExecutor]:
        if len(self._shards) == 1:
            return None
        with self._pool_lock:
            if self._pool is None:
                workers = self._max_workers or len(self._shards)
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="slim-shard")
            return self._pool

    def close(self, wait: bool = True) -> None:
        """Shut the ingest fan-out pool down (idempotent).

        The shards themselves hold no OS resources; durability handles
        are closed by their owners (:class:`ShardedDurability`).
        ``wait=False`` skips joining the worker threads — finalizers must
        use it, because a join inside ``__del__`` can deadlock when GC
        fires on a thread that is mid-bootstrap and already holds
        CPython's ``_shutdown_locks_lock``, which ``Thread._stop``
        (reached via the join) then re-acquires.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __del__(self) -> None:
        try:
            self.close(wait=False)
        except BaseException:
            pass

    # -- locking / atomic scopes ---------------------------------------------

    @property
    def lock(self) -> "threading.RLock":
        """The store-level lock (sequence counter + listener bookkeeping).

        This does **not** freeze the shards; multi-step consistent reads
        against one shard should hold that shard's own ``lock``.
        """
        return self._lock

    @property
    def in_atomic(self) -> bool:
        """Whether an atomic scope (bulk load or Batch) is open."""
        return self._atomic_depth > 0

    def begin_atomic(self) -> None:
        """Open an atomic scope on the sharded store (scopes nest)."""
        with self._lock:
            self._atomic_depth += 1

    def end_atomic(self) -> None:
        """Close one atomic scope; fire atomic listeners at depth zero."""
        with self._lock:
            if self._atomic_depth <= 0:
                raise TransactionError("no atomic scope to end")
            self._atomic_depth -= 1
            fire = self._atomic_depth == 0
        if fire:
            for listener in list(self._atomic_listeners):
                listener()

    def add_atomic_listener(self, listener: AtomicListener) -> Callable[[], None]:
        """Register a callback for outermost atomic-scope exit
        (same contract as the single store's)."""
        with self._lock:
            self._atomic_listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                if listener in self._atomic_listeners:
                    self._atomic_listeners.remove(listener)

        return unsubscribe

    # -- bulk loading ---------------------------------------------------------

    def bulk(self) -> ShardedBulkLoad:
        """A deferred-indexing ingest across all shards."""
        return ShardedBulkLoad(self)

    @property
    def in_bulk(self) -> bool:
        """Whether a sharded bulk load is currently active."""
        return self._in_bulk

    def _begin_bulk(self) -> None:
        with self._lock:
            if self._in_bulk:
                raise TransactionError("bulk load already active on this store")
            self._in_bulk = True
            self._bulk_owner = threading.get_ident()
            self._atomic_depth += 1
        entered: List[TripleStore] = []
        try:
            for shard in self._shards:
                shard._begin_bulk()
                entered.append(shard)
        except BaseException:
            for shard in entered:
                shard._abort_bulk()
            with self._lock:
                self._in_bulk = False
                self._bulk_owner = None
                self._atomic_depth -= 1
            raise

    def _end_bulk(self) -> None:
        for shard in self._shards:
            shard._end_bulk()
        self._finish_bulk()

    def _abort_bulk(self) -> None:
        for shard in self._shards:
            shard._abort_bulk()
        self._finish_bulk()

    def _finish_bulk(self) -> None:
        with self._lock:
            self._in_bulk = False
            self._bulk_owner = None
            self._atomic_depth -= 1
            fire = self._atomic_depth == 0
        if fire:
            for listener in list(self._atomic_listeners):
                listener()

    # -- mutation -------------------------------------------------------------

    def _next_sequence(self) -> int:
        with self._lock:
            sequence = self._sequence
            self._sequence += 1
            return sequence

    def add(self, triple: Triple) -> bool:
        """Insert *triple* on its subject's shard; ``True`` when new.

        The triple enters the shard with a globally allocated sequence
        number, so cross-shard ordering stays total.  A duplicate insert
        leaves an unused sequence behind — harmless, ordering only needs
        monotonicity, never density.

        The sequence is allocated *under the shard's lock* (an RLock, so
        the nested :meth:`TripleStore.restore` re-enters it) — racing
        writers on one shard then hand their sequences over in allocation
        order, keeping every shard's tail append-only.  Allocating first
        and inserting second would let a later sequence land before an
        earlier one and trip restore's below-tail O(n log n) rebuild on
        every race.
        """
        shard = self.shard_for(triple.subject)
        with shard._lock:
            sequence = self._next_sequence()
            return shard.restore(triple, sequence)

    def restore(self, triple: Triple, sequence: int) -> bool:
        """Insert *triple* at an explicit global sequence position
        (undo/rollback/WAL replay; see :meth:`TripleStore.restore`)."""
        with self._lock:
            self._sequence = max(self._sequence, sequence + 1)
        return self.shard_for(triple.subject).restore(triple, sequence)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return how many were new.

        Routing happens in one pass that also allocates the global
        sequence block; the per-shard groups are then applied through
        each shard's own fast path.  Large batches fan the per-shard
        groups out across the ingest thread pool, so one shard's WAL and
        index work overlaps another's — inside a :meth:`bulk` load each
        group is a pending-buffer append riding the deferred-index path.
        """
        count = len(self._shards)
        groups: List[List[Tuple[Triple, int]]] = [[] for _ in range(count)]
        total = 0
        with self._lock:
            sequence = self._sequence
            for t in triples:
                groups[shard_of(t.subject.uri, count)].append((t, sequence))
                sequence += 1
                total += 1
            self._sequence = sequence
        busy = [(self._shards[i], group)
                for i, group in enumerate(groups) if group]
        pool = self._get_pool() if total >= _PARALLEL_MIN else None
        if pool is None or len(busy) < 2:
            return sum(self._apply_group(shard, group)
                       for shard, group in busy)
        futures = [pool.submit(self._apply_group, shard, group)
                   for shard, group in busy]
        return sum(f.result() for f in futures)

    @staticmethod
    def _apply_group(shard: TripleStore, group: List[Tuple[Triple, int]]) -> int:
        added = 0
        for t, sequence in group:
            if shard.restore(t, sequence):
                added += 1
        return added

    def remove(self, triple: Triple) -> None:
        """Delete *triple*; raise :class:`TripleNotFoundError` if absent."""
        self.shard_for(triple.subject).remove(triple)

    def discard(self, triple: Triple) -> bool:
        """Delete *triple* if present; return whether it was."""
        return self.shard_for(triple.subject).discard(triple)

    def remove_matching(self, subject: Optional[Resource] = None,
                        property: Optional[Resource] = None,
                        value: Optional[Node] = None) -> int:
        """Delete every matching triple; subject-bound removals touch one
        shard, the rest sweep all shards.  Returns the total count."""
        if subject is not None:
            return self.shard_for(subject).remove_matching(
                subject, property, value)
        return sum(shard.remove_matching(subject, property, value)
                   for shard in self._shards)

    def clear(self) -> None:
        """Delete every triple on every shard (listeners see each removal)."""
        for shard in self._shards:
            shard.clear()

    # -- selection ------------------------------------------------------------

    def match(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> Iterator[Triple]:
        """Yield matching triples: routed to one shard when the subject is
        fixed, scatter-gathered (shard-index order) otherwise."""
        if subject is not None:
            yield from self.shard_for(subject).match(subject, property, value)
            return
        for shard in self._shards:
            yield from shard.match(subject, property, value)

    def select(self, subject: Optional[Resource] = None,
               property: Optional[Resource] = None,
               value: Optional[Node] = None) -> List[Triple]:
        """Matching triples in global insertion order.

        Subject-bound selections are a single shard's (already globally
        ordered) result; scatter-gather merges the per-shard sorted runs
        by sequence number — k sorted runs, O(n log k), no full re-sort.
        """
        if subject is not None:
            return self.shard_for(subject).select(subject, property, value)
        runs: List[List[Tuple[int, Triple]]] = []
        for shard in self._shards:
            hits = shard.select(subject, property, value)
            if hits:
                runs.append([(self._sequence_or(shard, t), t) for t in hits])
        if not runs:
            return []
        if len(runs) == 1:
            return [t for _, t in runs[0]]
        return [t for _, t in heapq.merge(*runs)]

    @staticmethod
    def _sequence_or(shard: TripleStore, triple: Triple) -> int:
        # A racing removal can drop a hit between the shard's select and
        # this lookup (concurrent mode); order it first, as the plain
        # store's concurrent select does, rather than raise.
        try:
            return shard.sequence_of(triple)
        except TripleNotFoundError:
            return -1

    def one(self, subject: Optional[Resource] = None,
            property: Optional[Resource] = None,
            value: Optional[Node] = None) -> Optional[Triple]:
        """The single matching triple, ``None`` if none; raises
        :class:`LookupError` when more than one matches."""
        found: Optional[Triple] = None
        for triple in self.match(subject, property, value):
            if found is not None:
                raise LookupError(
                    f"expected at most one triple for "
                    f"({subject}, {property}, {value})")
            found = triple
        return found

    def value_of(self, subject: Resource, property: Resource) -> Optional[Node]:
        """The value of a single-valued property, or ``None``."""
        hit = self.one(subject=subject, property=property)
        return None if hit is None else hit.value

    def literal_of(self, subject: Resource, property: Resource):
        """The Python value of a single-valued literal property, or ``None``."""
        node = self.value_of(subject, property)
        if node is None:
            return None
        if not isinstance(node, Literal):
            raise LookupError(
                f"{subject} {property} holds a resource, not a literal")
        return node.value

    def values_of(self, subject: Resource, property: Resource) -> List[Node]:
        """All values of a property on *subject*, in insertion order."""
        return [t.value for t in self.select(subject=subject,
                                             property=property)]

    # -- statistics (read by the query planner) -------------------------------

    @property
    def generation(self) -> int:
        """Sum of the shard generations: bumps on every mutation anywhere,
        so view caches keyed on it stay exactly as safe as before."""
        return sum(shard.generation for shard in self._shards)

    def generation_of(self, subject: Resource) -> int:
        """The owning shard's generation counter — the invalidation token
        for subject-routed reads.  A write to any *other* shard leaves it
        untouched, so caches keyed on it survive unrelated traffic; a 2PC
        multi-shard commit bumps exactly the written shards' counters."""
        return self.shard_for(subject).generation_of(subject)

    @property
    def generation_vector(self) -> Tuple[int, ...]:
        """Per-shard generation counters, in shard order.

        The stamp for unbound (scatter-gather) reads: any write anywhere
        changes one slot, invalidating exactly the entries whose answer
        could have changed.  Each slot goes through its shard's read
        barrier, so a bulk owner reading the vector flushes first.
        """
        return tuple(shard.generation_of() for shard in self._shards)

    @property
    def sequence_ceiling(self) -> int:
        """The next global insertion-sequence number."""
        return self._sequence

    def count(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> int:
        """Matching-triple count: one shard's exact bucket size when the
        subject is bound, the sum over shards otherwise — which is what
        makes per-shard statistics feed a *global* selectivity estimate
        for the planner without any planner changes."""
        if subject is not None:
            return self.shard_for(subject).count(subject, property, value)
        return sum(shard.count(subject, property, value)
                   for shard in self._shards)

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self.shard_for(triple.subject)

    def _merged_items(self) -> Iterator[Tuple[int, Triple]]:
        runs = []
        for shard in self._shards:
            items = [(self._sequence_or(shard, t), t) for t in shard]
            if items:
                runs.append(items)
        return heapq.merge(*runs)

    def __iter__(self) -> Iterator[Triple]:
        return (t for _, t in self._merged_items())

    def sequence_of(self, triple: Triple) -> int:
        """The global insertion-sequence number of a present triple."""
        return self.shard_for(triple.subject).sequence_of(triple)

    def subjects(self) -> List[Resource]:
        """Distinct subjects, in first-appearance (global) order."""
        seen: Dict[Resource, None] = {}
        for triple in self:
            seen.setdefault(triple.subject, None)
        return list(seen)

    def properties(self) -> List[Resource]:
        """Distinct properties, in first-appearance (global) order."""
        seen: Dict[Resource, None] = {}
        for triple in self:
            seen.setdefault(triple.property, None)
        return list(seen)

    def resources(self) -> List[Resource]:
        """Every resource mentioned anywhere, first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self:
            seen.setdefault(triple.subject, None)
            seen.setdefault(triple.property, None)
            if isinstance(triple.value, Resource):
                seen.setdefault(triple.value, None)
        return list(seen)

    def estimated_bytes(self) -> int:
        """Rough in-memory footprint: sum of the shard estimates."""
        return sum(shard.estimated_bytes() for shard in self._shards)

    # -- listeners ------------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> Callable[[], None]:
        """Register a change listener for events from *every* shard.

        Forwarding taps onto the shard stores attach lazily on the first
        subscription, so an unobserved sharded store pays no per-mutation
        fan-out cost.  Sequence numbers in events are global.
        """
        with self._lock:
            if not self._forwarding:
                self._forwarding = True
                for shard in self._shards:
                    shard.add_listener(self._forward)
            self._listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                if listener in self._listeners:
                    self._listeners.remove(listener)

        return unsubscribe

    def _forward(self, action: str, triple: Triple, sequence: int) -> None:
        for listener in list(self._listeners):
            listener(action, triple, sequence)

    # -- recovery support -----------------------------------------------------

    def _resync_sequence(self) -> None:
        """Advance the global counter past every shard's ceiling —
        required after recovery loads shards with logged sequences."""
        with self._lock:
            ceiling = max((shard.sequence_ceiling for shard in self._shards),
                          default=0)
            self._sequence = max(self._sequence, ceiling)


# -- the coordinator meta-WAL -------------------------------------------------

class MetaScan(NamedTuple):
    """Decoded state of a coordinator meta-WAL."""

    epoch: int                  #: store incarnation (0 = no epoch record)
    shard_count: int            #: layout the epoch record pinned
    decisions: Dict[int, bool]  #: txn -> committed?
    finished: Set[int]          #: txns whose every participant is fenced
    txn_floor: int              #: highest txn number ever issued
    valid_end: int              #: offset past the last valid record
    total_bytes: int            #: file size on disk


def _scan_meta(path: str) -> MetaScan:
    """Read a meta-WAL, stopping (like :func:`scan_wal`) at the first
    torn or corrupt record.  A missing file scans as empty."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return MetaScan(0, 0, {}, set(), 0, 0, 0)
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    total = len(data)
    if data[:len(META_MAGIC)] != META_MAGIC:
        return MetaScan(0, 0, {}, set(), 0, 0, total)
    epoch = 0
    shard_count = 0
    decisions: Dict[int, bool] = {}
    finished: Set[int] = set()
    txn_floor = 0
    offset = len(META_MAGIC)
    valid_end = offset
    while offset + _FRAME.size <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        kind = payload[:1]
        try:
            if kind == b"E" and len(payload) == 1 + 8 + 4 + 8:
                (epoch,) = _U64.unpack_from(payload, 1)
                (shard_count,) = _U32.unpack_from(payload, 9)
                (floor,) = _U64.unpack_from(payload, 13)
                txn_floor = max(txn_floor, floor)
            elif kind == b"T" and len(payload) == 1 + 8 + 1:
                (txn,) = _U64.unpack_from(payload, 1)
                decisions[txn] = payload[9] == 1
                txn_floor = max(txn_floor, txn)
            elif kind == b"F" and len(payload) == 1 + 8:
                (txn,) = _U64.unpack_from(payload, 1)
                finished.add(txn)
            else:
                break
        except struct.error:
            break
        offset = end
        valid_end = end
    return MetaScan(epoch, shard_count, decisions, finished, txn_floor,
                    valid_end, total)


def _meta_header(epoch: int, shard_count: int, txn_floor: int) -> bytes:
    record = (b"E" + _U64.pack(epoch) + _U32.pack(shard_count)
              + _U64.pack(txn_floor))
    return META_MAGIC + _frame(record)


class _MetaLog:
    """The coordinator's decision log for multi-shard transactions.

    Appends checksummed frames in the WAL's framing: an epoch record
    pinning (epoch, shard layout, txn floor), per-transaction decision
    records (the 2PC commit point — fsynced), and advisory *finished*
    records (not fsynced; they only let compaction know a decision can
    be dropped).  Compaction atomically rewrites the file down to a
    fresh epoch record carrying the current txn floor, and only runs
    when every decided transaction is finished — so no decision that a
    shard repair might still need can ever be lost.
    """

    #: Compact once this many decisions have accumulated (all finished).
    COMPACT_DECISIONS = 64

    def __init__(self, path: str, shard_count: int, fsync: bool = True,
                 epoch_floor: int = 0) -> None:
        self.path = path
        self._fsync = fsync
        self._lock = threading.RLock()
        self.sync_count = 0
        scan = _scan_meta(path)
        if scan.epoch == 0:
            # Fresh (or unreadable) meta-WAL: start an incarnation above
            # both anything the old file pinned and any epoch found in
            # stale shard prepare records, so leftovers can never match.
            self.epoch = max(scan.epoch, epoch_floor) + 1
            self.shard_count = shard_count
            self._txn = scan.txn_floor
            _atomic_write(path, _meta_header(self.epoch, shard_count,
                                             self._txn))
            self.decisions: Dict[int, bool] = {}
            self.finished: Set[int] = set()
            valid_end = len(_meta_header(self.epoch, shard_count, self._txn))
        else:
            self.epoch = scan.epoch
            self.shard_count = scan.shard_count
            self._txn = scan.txn_floor
            self.decisions = dict(scan.decisions)
            self.finished = set(scan.finished)
            valid_end = scan.valid_end
            if shard_count != scan.shard_count:
                raise PersistenceError(
                    f"{path}: layout has {scan.shard_count} shard(s), "
                    f"store was opened with {shard_count} — resharding an "
                    f"existing directory is not supported")
        try:
            self._file = open(path, "r+b")
            self._file.truncate(valid_end)
            self._file.seek(valid_end)
        except OSError as exc:
            raise PersistenceError(
                f"cannot open meta-WAL {path}: {exc}") from exc

    def next_txn(self) -> int:
        """Allocate the next coordinator transaction number."""
        with self._lock:
            self._txn += 1
            return self._txn

    def decide(self, txn: int, commit: bool) -> None:
        """Durably record the commit/abort decision — the 2PC commit point."""
        payload = b"T" + _U64.pack(txn) + (b"\x01" if commit else b"\x00")
        self._append(payload, durable=True)
        with self._lock:
            self.decisions[txn] = commit

    def finish(self, txn: int) -> None:
        """Record that every participant is fenced (advisory, no fsync)."""
        self._append(b"F" + _U64.pack(txn), durable=False)
        with self._lock:
            self.finished.add(txn)

    def maybe_compact(self) -> None:
        """Drop fully-finished decisions by rewriting the log atomically."""
        with self._lock:
            if self._file is None:
                return
            if len(self.decisions) < self.COMPACT_DECISIONS:
                return
            if any(txn not in self.finished for txn in self.decisions):
                return
            header = _meta_header(self.epoch, self.shard_count, self._txn)
            _atomic_write(self.path, header)
            self._file.close()
            try:
                self._file = open(self.path, "r+b")
                self._file.seek(len(header))
            except OSError as exc:
                self._file = None
                raise PersistenceError(
                    f"cannot reopen meta-WAL {self.path}: {exc}") from exc
            self.decisions.clear()
            self.finished.clear()

    def close(self) -> None:
        """Flush and close (idempotent)."""
        with self._lock:
            file, self._file = self._file, None
        if file is not None:
            try:
                file.flush()
            finally:
                file.close()

    def __del__(self) -> None:
        try:
            self.close()
        except BaseException:
            pass

    def _append(self, payload: bytes, durable: bool) -> None:
        with self._lock:
            if self._file is None:
                raise PersistenceError(f"meta-WAL {self.path} is closed")
            try:
                self._file.write(_frame(payload))
                self._file.flush()
                if durable and self._fsync:
                    os.fsync(self._file.fileno())
                    self.sync_count += 1
            except OSError as exc:
                raise PersistenceError(
                    f"cannot append to meta-WAL {self.path}: {exc}") from exc


# -- recovery -----------------------------------------------------------------

def _repair_shard_wal(path: str, decisions: Dict[int, bool],
                      epoch: int) -> bool:
    """Resolve a prepared-but-unfenced tail group in one shard WAL.

    When the coordinator decided *commit* for the prepared transaction
    (and the prepare's epoch matches the live incarnation), the fence is
    finished here: the boundary record is appended so ordinary recovery
    replays the group.  Every other case — no decision, abort decision,
    stale epoch — is left alone; plain recovery discards unfenced tails,
    which *is* the rollback.  Returns whether a fence was written.
    Idempotent: a repaired WAL has no prepared tail on the next scan.
    """
    scan = scan_wal(path)
    prepared = scan.prepared
    if prepared is None:
        return False
    info = prepared.info
    if info.epoch != epoch or not decisions.get(info.txn, False):
        return False
    group = scan.last_group + 1
    try:
        with open(path, "r+b") as handle:
            handle.truncate(prepared.end_offset)
            handle.seek(prepared.end_offset)
            handle.write(_frame(encode_commit(group)))
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as exc:
        raise PersistenceError(f"cannot repair WAL {path}: {exc}") from exc
    return True


class ShardedRecoveryResult(NamedTuple):
    """What :func:`recover_sharded` reconstructed and how."""

    store: ShardedTripleStore        #: the recovered sharded store
    shards: List[RecoveryResult]     #: per-shard recovery detail
    repaired: int                    #: prepared groups fenced from meta-WAL
    epoch: int                       #: coordinator epoch found (0 if none)
    namespaces: NamespaceRegistry    #: registry with every declaration


def shard_directories(directory: str) -> List[str]:
    """The ``shard-NNN`` subdirectories under a sharded durable root,
    in shard-index order.  Empty when *directory* is not sharded."""
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return []
    matches = sorted(e for e in entries if _SHARD_DIR_RE.match(e))
    return [os.path.join(directory, e) for e in matches]


def is_sharded_directory(directory: str) -> bool:
    """Whether *directory* holds a sharded durable layout."""
    return bool(shard_directories(directory)) or \
        os.path.exists(os.path.join(directory, META_FILE))


def recover_sharded(directory: str,
                    namespaces: Optional[NamespaceRegistry] = None,
                    concurrent: bool = False,
                    store_factory: Callable[..., TripleStore] = TripleStore
                    ) -> ShardedRecoveryResult:
    """Rebuild the sharded durable state under *directory*.

    Reads the coordinator meta-WAL, finishes the fence of every prepared
    group whose transaction was decided *commit* (and leaves every other
    in-doubt group for ordinary recovery to discard — the rollback),
    then recovers each shard directory into a fresh
    :class:`ShardedTripleStore`.  The resulting store is consistent:
    every in-flight multi-shard transaction is either fully applied or
    fully absent, on all shards alike.
    """
    dirs = shard_directories(directory)
    if not dirs:
        raise PersistenceError(
            f"{directory!r} holds no shard directories (not a sharded "
            f"durable root)")
    meta = _scan_meta(os.path.join(directory, META_FILE))
    store = ShardedTripleStore(len(dirs), concurrent=concurrent,
                               store_factory=store_factory)
    registry = namespaces if namespaces is not None else NamespaceRegistry()
    repaired = 0
    results: List[RecoveryResult] = []
    for shard, shard_dir in zip(store.shards, dirs):
        if meta.epoch:
            if _repair_shard_wal(os.path.join(shard_dir, WAL_FILE),
                                 meta.decisions, meta.epoch):
                repaired += 1
        results.append(recover(shard_dir, store=shard, namespaces=registry))
    store._resync_sequence()
    return ShardedRecoveryResult(store, results, repaired, meta.epoch,
                                 registry)


# -- the sharded durability orchestrator --------------------------------------

class ShardedDurability:
    """Crash-safe persistence for a :class:`ShardedTripleStore`.

    Layout under *directory*::

        meta.wal        coordinator epoch + 2PC decision records
        shard-000/      snapshot.slim + wal.log   (one Durability each)
        shard-001/      ...

    Attaching recovers existing state (finishing or rolling back any
    in-doubt transaction first), then logs every mutation through the
    owning shard's WAL.  :meth:`commit` closes a durable group: one
    ordinary WAL group commit when a single shard is dirty, two-phase
    commit across the participants otherwise.  :meth:`commit_for` is the
    partitioned fast path — it durably commits only the shard owning one
    subject, so independent writers on different shards overlap their
    fsyncs instead of serializing on one log.

    *sync* and *commit_every* carry the
    :class:`~repro.triples.wal.Durability` semantics to the coordinator:
    ``'group'``/``'async'`` run commits on a background flusher shared
    by all committers, and *commit_every* auto-commits outside atomic
    scopes.  Compaction is per shard, at each shard's own cadence.
    """

    _SYNC_MODES = ("inline", "group", "async")

    def __init__(self, store: ShardedTripleStore, directory: str,
                 namespaces: Optional[NamespaceRegistry] = None,
                 compact_every: int = 64, fsync: bool = True,
                 commit_every: Optional[int] = None,
                 sync: str = "inline") -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        if commit_every is not None and commit_every < 1:
            raise ValueError("commit_every must be >= 1 or None")
        if sync not in self._SYNC_MODES:
            raise ValueError(f"sync must be one of {self._SYNC_MODES}")
        self.directory = directory
        self.namespaces = namespaces
        self.compact_every = compact_every
        self.commit_every = commit_every
        self.sync = sync
        self._store = store
        count = store.shard_count
        existing = shard_directories(directory)
        if existing and len(existing) != count:
            raise PersistenceError(
                f"{directory!r} holds {len(existing)} shard(s), store was "
                f"opened with {count} — resharding is not supported")
        os.makedirs(directory, exist_ok=True)
        shard_dirs = [os.path.join(directory, SHARD_DIR_FMT % i)
                      for i in range(count)]
        # A fresh meta-WAL must pick an epoch above any stale prepare
        # record a discarded incarnation left in the shard WALs.
        epoch_floor = 0
        for shard_dir in shard_dirs:
            scan = scan_wal(os.path.join(shard_dir, WAL_FILE))
            if scan.prepared is not None:
                epoch_floor = max(epoch_floor, scan.prepared.info.epoch)
        self._meta = _MetaLog(os.path.join(directory, META_FILE),
                              shard_count=count, fsync=fsync,
                              epoch_floor=epoch_floor)
        #: How many in-doubt groups recovery fenced to completion.
        self.repaired = 0
        for shard_dir in shard_dirs:
            os.makedirs(shard_dir, exist_ok=True)
            if _repair_shard_wal(os.path.join(shard_dir, WAL_FILE),
                                 self._meta.decisions, self._meta.epoch):
                self.repaired += 1
        self._durs: List[Durability] = []
        try:
            for shard, shard_dir in zip(store.shards, shard_dirs):
                # Per-shard orchestrators recover their shard and log its
                # changes; the coordinator owns all commit decisions, so
                # auto-grouping and background sync stay disabled here.
                self._durs.append(Durability(
                    shard, shard_dir, namespaces=namespaces,
                    compact_every=compact_every, fsync=fsync,
                    commit_every=None, sync="inline"))
        except BaseException:
            for dur in self._durs:
                dur.close()
            self._meta.close()
            raise
        store._resync_sequence()
        self._meta_lock = threading.Lock()
        self._shard_locks = [threading.Lock() for _ in range(count)]
        self._inline_commits = 0
        self._closed = False
        self._flusher: Optional[_GroupCommitFlusher] = None
        #: Test instrumentation: called as ``hook(stage, txn, index)`` at
        #: each 2PC protocol step; raising :class:`SimulatedCrash` kills
        #: the coordinator mid-protocol with no cleanup, like a real
        #: crash.  ``None`` outside the crash-injection suite.
        self.crash_hook: Optional[Callable[[str, int, Optional[int]], None]] = None
        self._unsubscribe = store.add_listener(self._on_change)
        self._unsubscribe_atomic = store.add_atomic_listener(
            self._on_atomic_end)
        try:
            self._meta.maybe_compact()
            if sync != "inline":
                self._flusher = _GroupCommitFlusher(self,
                                                    ack=(sync == "group"))
        except BaseException:
            self._unsubscribe()
            self._unsubscribe_atomic()
            for dur in self._durs:
                dur.close()
            self._meta.close()
            raise

    # -- observability --------------------------------------------------------

    @property
    def shard_durabilities(self) -> Tuple[Durability, ...]:
        """The per-shard orchestrators, in shard-index order."""
        return tuple(self._durs)

    @property
    def recovered(self) -> List[Optional[RecoveryResult]]:
        """Per-shard recovery results (``None`` for fresh shards)."""
        return [dur.recovered for dur in self._durs]

    @property
    def epoch(self) -> int:
        """The coordinator epoch (store incarnation)."""
        return self._meta.epoch

    @property
    def group(self) -> int:
        """Total committed WAL groups across every shard."""
        return sum(dur.group for dur in self._durs)

    @property
    def pending_changes(self) -> int:
        """Changes logged since the last commit, across every shard."""
        return sum(dur.pending_changes for dur in self._durs)

    @property
    def commits_requested(self) -> int:
        """Commit calls that reached a WAL (any sync mode)."""
        flusher = self._flusher
        coordinator = self._inline_commits + (flusher.requested
                                              if flusher else 0)
        return coordinator + sum(dur.commits_requested for dur in self._durs)

    @property
    def fsync_count(self) -> int:
        """Group-commit fsyncs across every shard WAL plus the meta-WAL."""
        return (sum(dur.fsync_count for dur in self._durs)
                + self._meta.sync_count)

    # -- committing -----------------------------------------------------------

    def commit(self, wait: Optional[bool] = None) -> bool:
        """Close the current group; ``False`` when nothing changed.

        Groups whose changes live on one shard commit as that shard's
        ordinary WAL group.  Multi-shard groups run two-phase commit:
        prepare every participant, fsync the decision into the meta-WAL,
        fence every participant.  *wait* follows
        :meth:`Durability.commit` under ``sync='group'``/``'async'``.
        """
        if self._closed:
            raise PersistenceError("sharded durability handle is closed")
        if self._flusher is None:
            changed = self._flush_group()
            if changed:
                with self._meta_lock:
                    self._inline_commits += 1
                self._maybe_compact()
            return changed
        if self.pending_changes == 0:
            return False
        if wait is None:
            wait = self.sync == "group"
        self._flusher.request(wait=wait)
        return True

    def commit_for(self, subject: Resource) -> bool:
        """Durably commit only the shard owning *subject*.

        The partitioned fast path: a writer whose batch touched one
        subject's shard pays one WAL group commit there, concurrently
        with other writers committing other shards — no coordinator
        serialization, which is where the multi-writer ingest speedup
        comes from (``benchmarks/test_trim_sharding.py``).  Changes other
        writers put on the *same* shard since its last commit join the
        group, exactly like racing committers on a single WAL.
        """
        if self._closed:
            raise PersistenceError("sharded durability handle is closed")
        index = self._store.shard_index(subject)
        with self._shard_locks[index]:
            return self._durs[index].commit()

    def compact(self) -> None:
        """Fold every shard's log into a fresh snapshot."""
        if self._closed:
            raise PersistenceError("sharded durability handle is closed")
        for lock, dur in zip(self._shard_locks, self._durs):
            with lock:
                dur.compact()
        with self._meta._lock:
            self._meta.maybe_compact()

    def close(self) -> None:
        """Detach from the store and close every log (idempotent).

        Safe to call from finalizers; a background flusher is drained
        first and its stashed error (if any) re-raised after all
        resources are released.
        """
        self._close(join=True)

    def _close(self, join: bool) -> None:
        if self._closed:
            return
        self._closed = True
        self._unsubscribe()
        self._unsubscribe_atomic()
        errors: List[BaseException] = []
        if self._flusher is not None:
            try:
                self._flusher.close(join=join)
            except BaseException as exc:
                errors.append(exc)
        for dur in self._durs:
            try:
                dur._close(join=join)
            except BaseException as exc:
                errors.append(exc)
        try:
            self._meta.close()
        except BaseException as exc:
            errors.append(exc)
        if errors:
            raise errors[0]

    def __del__(self) -> None:
        # Never join threads from a finalizer (see TripleStore pool and
        # _GroupCommitFlusher close docstrings for the GC deadlock).
        try:
            self._close(join=False)
        except BaseException:
            pass

    def abandon(self) -> None:
        """Make a "crashed" coordinator inert, as if its process died.

        A dead process writes nothing more, so neither may this object
        or its finalizers: every shard :class:`~repro.triples.wal.Durability`
        is abandoned (buffers dropped, file handles released where the
        last durable write left them) and the meta-WAL handle closed
        without flushing.  The directory then looks like a hard kill mid
        2PC and must go through :func:`recover_sharded`.  This is the
        crash-simulation primitive behind the crash matrix in
        ``tests/test_sharding.py`` and the replay harness
        (:mod:`repro.replay`).  Only valid under ``sync='inline'``.
        """
        if self._flusher is not None:
            raise PersistenceError(
                "abandon() requires sync='inline' — a background flusher "
                "cannot be killed deterministically")
        self._closed = True
        self._unsubscribe()
        self._unsubscribe_atomic()
        for shard_durability in self._durs:
            shard_durability.abandon()
        meta_file, self._meta._file = self._meta._file, None
        if meta_file is not None:
            try:
                meta_file.close()
            except OSError:
                pass

    # -- internals ------------------------------------------------------------

    def _crash(self, stage: str, txn: int, index: Optional[int] = None) -> None:
        hook = self.crash_hook
        if hook is not None:
            hook(stage, txn, index)

    def _flush_group(self) -> bool:
        """One coordinated group commit; ``True`` if anything was dirty.

        Takes the coordinator lock, then every shard lock in index order
        (excluding concurrent :meth:`commit_for` calls), then runs either
        the single-shard fast path or the 2PC protocol.
        """
        with self._meta_lock:
            for lock in self._shard_locks:
                lock.acquire()
            try:
                participants = [dur for dur in self._durs
                                if dur.pending_changes > 0]
                if not participants:
                    return False
                if len(participants) == 1:
                    return participants[0]._flush_group()
                self._two_phase_commit(participants)
                return True
            finally:
                for lock in reversed(self._shard_locks):
                    lock.release()

    def _two_phase_commit(self, participants: List[Durability]) -> None:
        txn = self._meta.next_txn()
        info = PrepareInfo(txn, len(participants), self._meta.epoch)
        prepared: List[Durability] = []
        try:
            if self.crash_hook is None and len(participants) > 1:
                pool = self._store._get_pool()
            else:
                # Crash-injection runs serially so every inter-step
                # window is a deterministic kill point.
                pool = None
            if pool is None:
                for i, dur in enumerate(participants):
                    dur._wal.prepare(info)
                    prepared.append(dur)
                    self._crash("prepare", txn, i)
            else:
                futures = [pool.submit(dur._wal.prepare, info)
                           for dur in participants]
                prepared = list(participants)
                for future in futures:
                    future.result()
        except SimulatedCrash:
            raise
        except BaseException:
            # Phase-1 failure: record the abort (so a concurrent crash
            # still resolves to rollback), then roll every prepared WAL
            # back; their buffers stay intact for a retry.
            try:
                self._meta.decide(txn, commit=False)
            finally:
                for dur in prepared:
                    try:
                        dur._wal.abort_prepared()
                    except PersistenceError:
                        pass  # that WAL failed closed; recovery discards
            raise
        self._crash("decide", txn)
        self._meta.decide(txn, commit=True)   # <- the commit point
        self._crash("decided", txn)
        pool = (self._store._get_pool()
                if self.crash_hook is None and len(participants) > 1 else None)
        if pool is None:
            for i, dur in enumerate(participants):
                dur._wal.fence()
                with dur._meta_lock:
                    dur._groups_since_snapshot += 1
                self._crash("fence", txn, i)
        else:
            futures = [pool.submit(dur._wal.fence) for dur in participants]
            for future in futures:
                future.result()
            for dur in participants:
                with dur._meta_lock:
                    dur._groups_since_snapshot += 1
        self._meta.finish(txn)
        self._crash("finish", txn)
        self._meta.maybe_compact()

    def _maybe_compact(self) -> None:
        """Per-shard compaction at each shard's own cadence; never blocks
        on a busy shard (same contract as :meth:`Durability._maybe_compact`)."""
        for lock, dur in zip(self._shard_locks, self._durs):
            if not lock.acquire(blocking=False):
                continue
            try:
                dur._maybe_compact()
            finally:
                lock.release()

    def _on_change(self, action: str, triple: Triple, sequence: int) -> None:
        if self.commit_every is not None \
                and not self._store.in_atomic \
                and self.pending_changes >= self.commit_every:
            self.commit(wait=False)

    def _on_atomic_end(self) -> None:
        if self._closed or self.commit_every is None:
            return
        if self.pending_changes >= self.commit_every \
                and not self._store.in_atomic:
            self.commit(wait=False)

"""Sharded triple stores: hash-partitioned ingest and scatter-gather query.

The paper's SLIM store keeps all superimposed information in one TRIM
triple pool, which caps both ingest and query throughput at a single
core (and a single WAL fsync stream) no matter how many users annotate
base documents.  This module partitions the pool by *subject hash*
across N independent store instances:

- :class:`ShardedTripleStore` — presents the whole
  :class:`~repro.triples.store.TripleStore` surface (``add`` / ``remove``
  / ``select`` / ``match`` / ``count`` / ``bulk`` / ``add_listener`` /
  views / persistence iteration) over N shards.  Subject-bound
  operations route to exactly one shard; everything else scatter-gathers
  and merges by global insertion sequence.  A shared thread pool fans
  large ingests out per shard.
- :class:`ShardedDurability` — one
  :class:`~repro.triples.wal.Durability` orchestrator (own WAL directory
  + snapshot) per shard, plus a coordinator *meta-WAL* that makes
  multi-shard commit groups atomic through two-phase commit.
- :func:`recover_sharded` — rebuild a sharded durable directory,
  finishing or rolling back any transaction a crash left in doubt.

Routing
-------

A triple lives on the shard its subject's slot maps to:
``map.slots[crc32(subject.uri) % len(map.slots)]``, where the
:class:`ShardMap` slot table (64 slots per shard) is versioned data
persisted in the meta-WAL, not code.  The version-1 layout is
``slots[i] = i % N``, which is bit-identical to the original
``crc32 % N`` arithmetic — directories written before maps existed
reopen under their implicit v1 map with no migration.  CRC-32 is
stable across processes and Python versions (unlike the salted builtin
``hash``), so a directory written by one process routes identically in
the next.  Subject-bound probes — the DMI's dominant traffic
(``value_of``, liveness checks, entity reads) — therefore touch exactly
one shard and stay flat-latency as N grows.  ``reshard(new_count)``
bumps the map version and live-migrates the affected slots' subjects
(DESIGN.md §14); :func:`split_offline` rewrites cold directories and is
the shrink path.

Global ordering
---------------

The sharded store allocates insertion-sequence numbers from one global
counter and inserts into shards via
:meth:`~repro.triples.store.TripleStore.restore`, so each shard's
sequence numbers are *globally* meaningful.  Cross-shard ``select()`` /
iteration merge per-shard results by sequence, reproducing exactly the
insertion order an unsharded store would report — the parity suite
(``tests/test_sharding.py``) pins this against a plain store over
randomized op sequences.

Query planning
--------------

The PR 1 selectivity planner needs no fork: it reads statistics through
``store.count()``, and the sharded ``count()`` returns the *sum* of the
per-shard index bucket sizes — a global selectivity estimate.  Pattern
evaluation grounds subjects as bindings propagate, so a plan's
subject-bound probes route to single shards while unbound patterns
scatter-gather; ``Query.run`` dedups merged bindings canonically, same
as before.

Two-phase commit (DESIGN.md §11)
--------------------------------

A commit group touching one shard is that shard's ordinary WAL group
commit — no coordination, one fsync.  A group touching k > 1 shards
runs 2PC:

1. **Prepare** — each participant's WAL durably stages the group's
   changes behind a ``'P'`` record carrying (txn, participant count,
   epoch); no ``'C'`` boundary yet, so a crash here recovers to
   rollback everywhere.
2. **Decide** — the coordinator appends a commit decision for txn to
   the meta-WAL and fsyncs it.  This single record is the commit point.
3. **Fence** — each participant's WAL gets its normal ``'C'`` boundary.
   A crash between decide and fence is repaired at recovery: the
   meta-WAL says *commit*, so the prepared group is fenced then.

Recovery therefore always lands on an all-shards-consistent state equal
to either the full commit or the full rollback of every in-flight
transaction — the crash matrix in ``tests/test_sharding.py`` sweeps
every window.  The *epoch* in the prepare record is the store
incarnation: a fresh meta-WAL picks an epoch above any found in stale
prepare records, so leftovers from a discarded meta-WAL can never be
mistaken for a current transaction.
"""

from __future__ import annotations

import heapq
import os
import re
import shutil
import struct
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import (Callable, Dict, Iterable, Iterator, List, NamedTuple,
                    Optional, Set, Tuple)

from repro.errors import PersistenceError, TransactionError, TripleNotFoundError
from repro.triples.namespaces import NamespaceRegistry
from repro.triples.persistence import _atomic_write
from repro.triples.store import AtomicListener, ChangeListener, TripleStore
from repro.triples.triple import Literal, Node, Resource, Triple
from repro.triples.wal import (WAL_FILE, Durability, PrepareInfo,
                               RecoveryResult, _frame, _GroupCommitFlusher,
                               encode_commit, recover, scan_wal)

META_FILE = "meta.wal"
META_MAGIC = b"SLIMMETA"
SHARD_DIR_FMT = "shard-%03d"
_SHARD_DIR_RE = re.compile(r"^shard-(\d{3})$")

_FRAME = struct.Struct(">II")
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")

#: Below this many triples, a sharded ``add_all`` applies per-shard groups
#: inline — pool dispatch overhead would outweigh any fsync/CPU overlap.
_PARALLEL_MIN = 512


def shard_of(uri: str, shard_count: int) -> int:
    """The shard index owning subject *uri*: ``crc32(uri) % shard_count``.

    CRC-32 (not the salted builtin ``hash``) keeps routing stable across
    processes, so a durable directory reopens onto the same layout.
    """
    return zlib.crc32(uri.encode("utf-8", "surrogatepass")) % shard_count


#: Slots allocated per shard when a map is first laid out.  The slot
#: table is the unit of migration: growing from N to M shards reassigns
#: whole slots, so N*64 slots support growth to 64x the original count
#: before a table rebuild (offline split) is needed.
SLOTS_PER_SHARD = 64


class ShardMap:
    """A versioned slot table mapping subject hashes to shard indices.

    Routing is ``slots[crc32(uri) % len(slots)]``.  Version 1 lays the
    table out as ``slots[i] = i % N`` over ``N * SLOTS_PER_SHARD``
    slots, which makes it *exactly* equivalent to the legacy
    ``crc32(uri) % N`` routing (``N`` divides the slot count), so
    directories written before maps existed route identically under
    their implicit version-1 map.  :meth:`rebalanced` produces the
    next version, reassigning the minimum number of slots needed to
    level the table over a new shard count — resharding moves only the
    subjects whose slot changed owner.
    """

    __slots__ = ("version", "slots", "shard_count")

    def __init__(self, version: int, slots: Tuple[int, ...],
                 shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if len(slots) < shard_count:
            raise ValueError("slot table smaller than shard count")
        self.version = version
        self.slots = tuple(slots)
        self.shard_count = shard_count

    @classmethod
    def initial(cls, shard_count: int) -> "ShardMap":
        """The version-1 map: legacy ``crc32 % N`` parity by layout."""
        slots = tuple(i % shard_count
                      for i in range(shard_count * SLOTS_PER_SHARD))
        return cls(1, slots, shard_count)

    def slot_of(self, uri: str) -> int:
        """Which slot the subject hash lands in."""
        return zlib.crc32(uri.encode("utf-8", "surrogatepass")) \
            % len(self.slots)

    def shard_for_uri(self, uri: str) -> int:
        """The shard index owning subject *uri* under this map."""
        return self.slots[self.slot_of(uri)]

    def rebalanced(self, new_count: int) -> "ShardMap":
        """The next-version map levelled over *new_count* shards.

        Deterministic and movement-minimal: every shard keeps as many of
        its current slots as its new target size allows; only the excess
        (and any slot pointing past the new count, when shrinking) is
        reassigned, in slot order, to the under-target shards.
        """
        n_slots = len(self.slots)
        if not 1 <= new_count <= n_slots:
            raise ValueError(
                f"new shard count must be in 1..{n_slots} for this slot "
                f"table (rebuild it with an offline split to go higher)")
        base, extra = divmod(n_slots, new_count)
        target = [base + (1 if i < extra else 0) for i in range(new_count)]
        slots = list(self.slots)
        counts = [0] * new_count
        excess: List[int] = []
        for slot, owner in enumerate(slots):
            if owner < new_count and counts[owner] < target[owner]:
                counts[owner] += 1
            else:
                excess.append(slot)
        moves = iter(excess)
        for shard in range(new_count):
            while counts[shard] < target[shard]:
                slots[next(moves)] = shard
                counts[shard] += 1
        return ShardMap(self.version + 1, tuple(slots), new_count)

    def diff(self, other: "ShardMap") -> Dict[int, Tuple[int, int]]:
        """``{slot: (from_shard, to_shard)}`` for slots that change owner."""
        return {slot: (mine, theirs)
                for slot, (mine, theirs)
                in enumerate(zip(self.slots, other.slots))
                if mine != theirs}

    def encode(self) -> bytes:
        """The meta-WAL ``'M'`` record payload for this map."""
        return (b"M" + _U64.pack(self.version) + _U32.pack(self.shard_count)
                + _U32.pack(len(self.slots))
                + struct.pack(">%dH" % len(self.slots), *self.slots))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ShardMap)
                and self.version == other.version
                and self.shard_count == other.shard_count
                and self.slots == other.slots)

    def __repr__(self) -> str:
        return (f"ShardMap(version={self.version}, "
                f"shards={self.shard_count}, slots={len(self.slots)})")


class MigrationPlan(NamedTuple):
    """A persisted migration intent (the meta-WAL ``'G'`` record)."""

    target_version: int            #: map version the migration installs
    target_count: int              #: shard count after the migration
    moves: Dict[int, Tuple[int, int]]  #: slot -> (donor, recipient)

    def target_map(self, current: ShardMap) -> ShardMap:
        """The map this migration installs, reconstructed from *current*."""
        slots = list(current.slots)
        for slot, (_, to) in self.moves.items():
            slots[slot] = to
        return ShardMap(self.target_version, tuple(slots), self.target_count)

    def encode(self) -> bytes:
        """The meta-WAL ``'G'`` record payload for this plan."""
        out = [b"G", _U64.pack(self.target_version),
               _U32.pack(self.target_count), _U32.pack(len(self.moves))]
        for slot in sorted(self.moves):
            frm, to = self.moves[slot]
            out.append(_U32.pack(slot) + _U32.pack(frm) + _U32.pack(to))
        return b"".join(out)


class _ActiveMigration:
    """In-memory routing state while a migration drains.

    ``moves`` is the slot reassignment being applied; ``moved`` holds
    the subject URIs whose triples already live on their recipient
    shard.  A subject in a migrating slot routes to the donor until its
    URI enters ``moved``, then to the recipient — the flip happens
    while both shards' store locks are held, so lock-validated writers
    never straddle it.
    """

    __slots__ = ("target", "moves", "moved")

    def __init__(self, target: ShardMap,
                 moves: Dict[int, Tuple[int, int]]) -> None:
        self.target = target
        self.moves = dict(moves)
        self.moved: Set[str] = set()


class SimulatedCrash(BaseException):
    """Raised by test crash hooks to kill a 2PC mid-protocol.

    Derives from :class:`BaseException` so the coordinator's abort
    handling (which catches ``Exception``-level failures and rolls
    prepared shards back) does not treat a simulated kill as a live
    failure — a real crash gets no cleanup either.
    """


class ShardedBulkLoad:
    """Context manager bracketing a bulk load across every shard.

    Entering opens each shard's deferred-indexing bulk; a clean exit
    flushes them all (and fires the sharded store's atomic listeners at
    depth zero); an exception aborts every shard's still-pending inserts.
    Same contract as :class:`~repro.triples.store.BulkLoad`, shard-wide.
    """

    __slots__ = ("_store",)

    def __init__(self, store: "ShardedTripleStore") -> None:
        self._store = store

    def __enter__(self) -> "ShardedTripleStore":
        self._store._begin_bulk()
        return self._store

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._store._end_bulk()
        else:
            self._store._abort_bulk()
        return False


class ShardedTripleStore:
    """N hash-partitioned stores behind the single-store API.

    *shards* fixes the partition count (it also fixes the on-disk layout
    under :class:`ShardedDurability` — reopening a directory with a
    different count is rejected).  *store_factory* picks the per-shard
    implementation (:class:`~repro.triples.store.TripleStore` or
    :class:`~repro.triples.interned.InternedTripleStore` — both honour
    the contract the parity suite pins).  *concurrent* is forwarded to
    every shard.

    Mutations route by subject; reads either route (subject bound) or
    scatter-gather with a sequence-merge.  Change listeners subscribe at
    the sharded level and receive the union of every shard's events with
    their global sequence numbers.  The store-level lock only guards the
    global sequence counter and listener bookkeeping — per-shard locks
    serialize actual index mutation, which is what lets ingest fan out.
    """

    def __init__(self, shards: int = 4, concurrent: bool = False,
                 store_factory: Callable[..., TripleStore] = TripleStore,
                 max_workers: Optional[int] = None,
                 shard_map: Optional[ShardMap] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if shard_map is not None and shard_map.shard_count > shards:
            raise ValueError(
                f"shard map routes to {shard_map.shard_count} shard(s) but "
                f"only {shards} were created")
        self._shards: List[TripleStore] = [
            store_factory(concurrent=concurrent) for _ in range(shards)]
        self._map = shard_map if shard_map is not None \
            else ShardMap.initial(shards)
        self._migration: Optional[_ActiveMigration] = None
        self._store_factory = store_factory
        self.concurrent = concurrent
        self._lock = threading.RLock()
        self._sequence = 0
        self._listeners: List[ChangeListener] = []
        self._forwarding = False
        self._atomic_depth = 0
        self._atomic_listeners: List[AtomicListener] = []
        self._in_bulk = False
        self._bulk_owner: Optional[int] = None
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # -- topology -------------------------------------------------------------

    @property
    def shards(self) -> Tuple[TripleStore, ...]:
        """The per-shard stores, in shard-index order."""
        return tuple(self._shards)

    @property
    def shard_count(self) -> int:
        """How many shards partition this store."""
        return len(self._shards)

    @property
    def shard_map(self) -> ShardMap:
        """The versioned slot table routing subjects to shards."""
        return self._map

    @property
    def map_version(self) -> int:
        """The current shard-map version (bumps on every reshard)."""
        return self._map.version

    @property
    def migration_active(self) -> bool:
        """Whether a reshard migration is currently draining."""
        return self._migration is not None

    def _route_uri(self, uri: str) -> int:
        """The shard index owning *uri* right now.

        Reads ``_migration`` *before* ``_map`` so lock-free readers stay
        correct across a finalize (which installs the new map first,
        then clears the migration): seeing the new map with the old
        migration routes moved subjects to their recipients; seeing
        neither update routes by the still-valid old state.
        """
        mig = self._migration
        m = self._map
        slot = zlib.crc32(uri.encode("utf-8", "surrogatepass")) \
            % len(m.slots)
        if mig is not None:
            move = mig.moves.get(slot)
            if move is not None:
                return move[1] if uri in mig.moved else move[0]
        return m.slots[slot]

    def shard_index(self, subject: Resource) -> int:
        """Which shard owns triples with this subject."""
        return self._route_uri(subject.uri)

    def shard_for(self, subject: Resource) -> TripleStore:
        """The shard store owning triples with this subject."""
        return self._shards[self._route_uri(subject.uri)]

    def _acquire_shard(self, uri: str) -> TripleStore:
        """Acquire and return the owning shard's lock, route-validated.

        Any routing change for *uri* (a migration moving its subject, or
        a finalize swapping the map) happens while its owning shard's
        store lock is held, so re-checking the route under the lock
        closes the window where a writer lands a triple on a shard the
        map no longer points at.  Caller must release ``shard._lock``.
        """
        while True:
            shard = self._shards[self._route_uri(uri)]
            shard._lock.acquire()
            if self._shards[self._route_uri(uri)] is shard:
                return shard
            shard._lock.release()

    def _route_read(self, subject: Resource
                    ) -> Tuple[TripleStore, Optional[TripleStore]]:
        """(primary, secondary) shards for a lock-free subject read.

        Outside a migration the secondary is ``None``.  While the
        subject's slot is migrating, both the donor and the recipient
        are returned — mid-move, a subject's triples are guaranteed to
        be present on at least one of them (inserted on the recipient
        before being removed from the donor), so merging the two with
        sequence-dedup never misses and never double-counts.
        """
        mig = self._migration
        m = self._map
        uri = subject.uri
        slot = zlib.crc32(uri.encode("utf-8", "surrogatepass")) \
            % len(m.slots)
        if mig is not None:
            move = mig.moves.get(slot)
            if move is not None:
                return self._shards[move[0]], self._shards[move[1]]
        return self._shards[m.slots[slot]], None

    def route(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> Tuple[str, int]:
        """How a selection would be executed: ``('single', shard_index)``
        for subject-bound probes, ``('scatter', shard_count)`` otherwise.
        Surfaced for tests, ``explain`` output, and the routing docs."""
        if subject is not None:
            return ("single", self.shard_index(subject))
        return ("scatter", len(self._shards))

    # -- thread pool (ingest fan-out) ----------------------------------------

    def _get_pool(self) -> Optional[ThreadPoolExecutor]:
        if len(self._shards) == 1:
            return None
        with self._pool_lock:
            if self._pool is None:
                workers = self._max_workers or len(self._shards)
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="slim-shard")
            return self._pool

    def close(self, wait: bool = True) -> None:
        """Shut the ingest fan-out pool down (idempotent).

        The shards themselves hold no OS resources; durability handles
        are closed by their owners (:class:`ShardedDurability`).
        ``wait=False`` skips joining the worker threads — finalizers must
        use it, because a join inside ``__del__`` can deadlock when GC
        fires on a thread that is mid-bootstrap and already holds
        CPython's ``_shutdown_locks_lock``, which ``Thread._stop``
        (reached via the join) then re-acquires.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __del__(self) -> None:
        try:
            self.close(wait=False)
        except BaseException:
            pass

    # -- locking / atomic scopes ---------------------------------------------

    @property
    def lock(self) -> "threading.RLock":
        """The store-level lock (sequence counter + listener bookkeeping).

        This does **not** freeze the shards; multi-step consistent reads
        against one shard should hold that shard's own ``lock``.
        """
        return self._lock

    @property
    def in_atomic(self) -> bool:
        """Whether an atomic scope (bulk load or Batch) is open."""
        return self._atomic_depth > 0

    def begin_atomic(self) -> None:
        """Open an atomic scope on the sharded store (scopes nest)."""
        with self._lock:
            self._atomic_depth += 1

    def end_atomic(self) -> None:
        """Close one atomic scope; fire atomic listeners at depth zero."""
        with self._lock:
            if self._atomic_depth <= 0:
                raise TransactionError("no atomic scope to end")
            self._atomic_depth -= 1
            fire = self._atomic_depth == 0
        if fire:
            for listener in list(self._atomic_listeners):
                listener()

    def add_atomic_listener(self, listener: AtomicListener) -> Callable[[], None]:
        """Register a callback for outermost atomic-scope exit
        (same contract as the single store's)."""
        with self._lock:
            self._atomic_listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                if listener in self._atomic_listeners:
                    self._atomic_listeners.remove(listener)

        return unsubscribe

    # -- bulk loading ---------------------------------------------------------

    def bulk(self) -> ShardedBulkLoad:
        """A deferred-indexing ingest across all shards."""
        return ShardedBulkLoad(self)

    @property
    def in_bulk(self) -> bool:
        """Whether a sharded bulk load is currently active."""
        return self._in_bulk

    def _begin_bulk(self) -> None:
        with self._lock:
            if self._in_bulk:
                raise TransactionError("bulk load already active on this store")
            self._in_bulk = True
            self._bulk_owner = threading.get_ident()
            self._atomic_depth += 1
        entered: List[TripleStore] = []
        try:
            for shard in self._shards:
                shard._begin_bulk()
                entered.append(shard)
        except BaseException:
            for shard in entered:
                shard._abort_bulk()
            with self._lock:
                self._in_bulk = False
                self._bulk_owner = None
                self._atomic_depth -= 1
            raise

    def _end_bulk(self) -> None:
        for shard in self._shards:
            shard._end_bulk()
        self._finish_bulk()

    def _abort_bulk(self) -> None:
        for shard in self._shards:
            shard._abort_bulk()
        self._finish_bulk()

    def _finish_bulk(self) -> None:
        with self._lock:
            self._in_bulk = False
            self._bulk_owner = None
            self._atomic_depth -= 1
            fire = self._atomic_depth == 0
        if fire:
            for listener in list(self._atomic_listeners):
                listener()

    # -- mutation -------------------------------------------------------------

    def _next_sequence(self) -> int:
        with self._lock:
            sequence = self._sequence
            self._sequence += 1
            return sequence

    def add(self, triple: Triple) -> bool:
        """Insert *triple* on its subject's shard; ``True`` when new.

        The triple enters the shard with a globally allocated sequence
        number, so cross-shard ordering stays total.  A duplicate insert
        leaves an unused sequence behind — harmless, ordering only needs
        monotonicity, never density.

        The sequence is allocated *under the shard's lock* (an RLock, so
        the nested :meth:`TripleStore.restore` re-enters it) — racing
        writers on one shard then hand their sequences over in allocation
        order, keeping every shard's tail append-only.  Allocating first
        and inserting second would let a later sequence land before an
        earlier one and trip restore's below-tail O(n log n) rebuild on
        every race.
        """
        shard = self._acquire_shard(triple.subject.uri)
        try:
            sequence = self._next_sequence()
            return shard.restore(triple, sequence)
        finally:
            shard._lock.release()

    def restore(self, triple: Triple, sequence: int) -> bool:
        """Insert *triple* at an explicit global sequence position
        (undo/rollback/WAL replay; see :meth:`TripleStore.restore`)."""
        with self._lock:
            self._sequence = max(self._sequence, sequence + 1)
        shard = self._acquire_shard(triple.subject.uri)
        try:
            return shard.restore(triple, sequence)
        finally:
            shard._lock.release()

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return how many were new.

        Routing happens in one pass that also allocates the global
        sequence block; the per-shard groups are then applied through
        each shard's own fast path.  Large batches fan the per-shard
        groups out across the ingest thread pool, so one shard's WAL and
        index work overlaps another's — inside a :meth:`bulk` load each
        group is a pending-buffer append riding the deferred-index path.
        """
        count = len(self._shards)
        routed_map = self._map
        groups: List[List[Tuple[Triple, int]]] = [[] for _ in range(count)]
        total = 0
        with self._lock:
            sequence = self._sequence
            for t in triples:
                groups[self._route_uri(t.subject.uri)].append((t, sequence))
                sequence += 1
                total += 1
            self._sequence = sequence
        busy = [(self._shards[i], group)
                for i, group in enumerate(groups) if group]
        pool = self._get_pool() if total >= _PARALLEL_MIN else None
        if pool is None or len(busy) < 2:
            return sum(self._apply_group(shard, group, routed_map)
                       for shard, group in busy)
        futures = [pool.submit(self._apply_group, shard, group, routed_map)
                   for shard, group in busy]
        return sum(f.result() for f in futures)

    def _apply_group(self, shard: TripleStore,
                     group: List[Tuple[Triple, int]],
                     routed_map: ShardMap) -> int:
        added = 0
        for i, (t, sequence) in enumerate(group):
            # The group was routed in one pass; a migration starting (or
            # finalizing) since then can invalidate those routes, so the
            # moment one is detected the rest of the group re-routes
            # per-triple under lock validation.  Triples already landed
            # on a now-donor shard are swept up by the drain loop, which
            # only finalizes once every donor is verifiably empty.
            if self._migration is not None or self._map is not routed_map:
                for t2, seq2 in group[i:]:
                    added += self._routed_restore(t2, seq2)
                return added
            if shard.restore(t, sequence):
                added += 1
        return added

    def _routed_restore(self, triple: Triple, sequence: int) -> int:
        shard = self._acquire_shard(triple.subject.uri)
        try:
            return 1 if shard.restore(triple, sequence) else 0
        finally:
            shard._lock.release()

    def remove(self, triple: Triple) -> None:
        """Delete *triple*; raise :class:`TripleNotFoundError` if absent."""
        shard = self._acquire_shard(triple.subject.uri)
        try:
            shard.remove(triple)
        finally:
            shard._lock.release()

    def discard(self, triple: Triple) -> bool:
        """Delete *triple* if present; return whether it was."""
        shard = self._acquire_shard(triple.subject.uri)
        try:
            return shard.discard(triple)
        finally:
            shard._lock.release()

    def remove_matching(self, subject: Optional[Resource] = None,
                        property: Optional[Resource] = None,
                        value: Optional[Node] = None) -> int:
        """Delete every matching triple; subject-bound removals touch one
        shard, the rest sweep all shards.  Returns the total count."""
        if subject is not None:
            shard = self._acquire_shard(subject.uri)
            try:
                return shard.remove_matching(subject, property, value)
            finally:
                shard._lock.release()
        return sum(shard.remove_matching(subject, property, value)
                   for shard in self._shards)

    def clear(self) -> None:
        """Delete every triple on every shard (listeners see each removal)."""
        for shard in self._shards:
            shard.clear()

    # -- selection ------------------------------------------------------------

    def match(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> Iterator[Triple]:
        """Yield matching triples: routed to one shard when the subject is
        fixed, scatter-gathered (shard-index order) otherwise.

        While a migration drains, a migrating subject's triples may
        transiently exist on both its donor and recipient shard, so
        those probes (and the scatter sweep) dedup before yielding."""
        if subject is not None:
            primary, secondary = self._route_read(subject)
            if secondary is None:
                yield from primary.match(subject, property, value)
                return
            seen = set()
            for shard in (primary, secondary):
                for t in shard.match(subject, property, value):
                    if t not in seen:
                        seen.add(t)
                        yield t
            return
        # Scatter.  The shard list is visited in index order; growth
        # migrations only move subjects donor -> higher-index recipient,
        # so a subject moved mid-sweep is either deduped (read on its
        # donor first) or picked up on its recipient later — never lost.
        # ``seen`` records every yield so dedup stays correct even when
        # a migration begins mid-sweep.
        version = self._map.version
        careful = self._migration is not None
        seen: Set[Triple] = set()
        for shard in self._shards:
            careful = (careful or self._migration is not None
                       or self._map.version != version)
            hits: Optional[List[Triple]] = None
            if careful:
                with shard._lock:
                    hits = list(shard.match(subject, property, value))
            else:
                try:
                    for t in shard.match(subject, property, value):
                        if t not in seen:
                            seen.add(t)
                            yield t
                    continue
                except RuntimeError:
                    # A migration started under us and moved a subject
                    # out of this shard's indexes mid-iteration; re-read
                    # the shard consistently under its lock (everything
                    # already yielded from it is in ``seen``).
                    careful = True
                    with shard._lock:
                        hits = list(shard.match(subject, property, value))
            for t in hits:
                if t not in seen:
                    seen.add(t)
                    yield t

    def select(self, subject: Optional[Resource] = None,
               property: Optional[Resource] = None,
               value: Optional[Node] = None) -> List[Triple]:
        """Matching triples in global insertion order.

        Subject-bound selections are a single shard's (already globally
        ordered) result; scatter-gather merges the per-shard sorted runs
        by sequence number — k sorted runs, O(n log k), no full re-sort.
        Mid-migration duplicates (a subject present on its donor and its
        recipient) collapse in the merge: both copies carry the same
        global sequence number.
        """
        if subject is not None:
            primary, secondary = self._route_read(subject)
            hits = primary.select(subject, property, value)
            if secondary is not None:
                present = set(hits)
                extra = [t for t in secondary.select(subject, property, value)
                         if t not in present]
                if extra:
                    if hits:
                        hits = hits + extra
                        hits.sort(key=lambda t: max(
                            self._sequence_or(primary, t),
                            self._sequence_or(secondary, t)))
                    else:
                        hits = extra
            return hits
        runs: List[List[Tuple[int, Triple]]] = []
        for shard in self._shards:
            if self._migration is not None:
                with shard._lock:
                    hits = shard.select(subject, property, value)
                    run = [(self._sequence_or(shard, t), t) for t in hits]
            else:
                try:
                    hits = shard.select(subject, property, value)
                except RuntimeError:   # migration moved a subject mid-read
                    with shard._lock:
                        hits = shard.select(subject, property, value)
                run = [(self._sequence_or(shard, t), t) for t in hits]
            if run:
                runs.append(run)
        if not runs:
            return []
        if len(runs) == 1:
            return [t for _, t in runs[0]]
        return self._merge_runs(runs)

    @staticmethod
    def _merge_runs(runs: List[List[Tuple[int, Triple]]]) -> List[Triple]:
        """Merge per-shard (sequence, triple) runs, dropping mid-move
        duplicates (same triple, same sequence, two shards)."""
        out: List[Triple] = []
        last_seq = -1
        last_t: Optional[Triple] = None
        for seq, t in heapq.merge(*runs, key=lambda item: item[0]):
            if seq == last_seq and t == last_t:
                continue
            out.append(t)
            last_seq, last_t = seq, t
        return out

    @staticmethod
    def _sequence_or(shard: TripleStore, triple: Triple) -> int:
        # A racing removal can drop a hit between the shard's select and
        # this lookup (concurrent mode); order it first, as the plain
        # store's concurrent select does, rather than raise.
        try:
            return shard.sequence_of(triple)
        except TripleNotFoundError:
            return -1

    def one(self, subject: Optional[Resource] = None,
            property: Optional[Resource] = None,
            value: Optional[Node] = None) -> Optional[Triple]:
        """The single matching triple, ``None`` if none; raises
        :class:`LookupError` when more than one matches."""
        found: Optional[Triple] = None
        for triple in self.match(subject, property, value):
            if found is not None:
                raise LookupError(
                    f"expected at most one triple for "
                    f"({subject}, {property}, {value})")
            found = triple
        return found

    def value_of(self, subject: Resource, property: Resource) -> Optional[Node]:
        """The value of a single-valued property, or ``None``."""
        hit = self.one(subject=subject, property=property)
        return None if hit is None else hit.value

    def literal_of(self, subject: Resource, property: Resource):
        """The Python value of a single-valued literal property, or ``None``."""
        node = self.value_of(subject, property)
        if node is None:
            return None
        if not isinstance(node, Literal):
            raise LookupError(
                f"{subject} {property} holds a resource, not a literal")
        return node.value

    def values_of(self, subject: Resource, property: Resource) -> List[Node]:
        """All values of a property on *subject*, in insertion order."""
        return [t.value for t in self.select(subject=subject,
                                             property=property)]

    # -- statistics (read by the query planner) -------------------------------

    @property
    def generation(self) -> int:
        """Sum of the shard generations: bumps on every mutation anywhere,
        so view caches keyed on it stay exactly as safe as before."""
        return sum(shard.generation for shard in self._shards)

    def generation_of(self, subject: Resource) -> int:
        """The owning shard's generation counter — the invalidation token
        for subject-routed reads.  A write to any *other* shard leaves it
        untouched, so caches keyed on it survive unrelated traffic; a 2PC
        multi-shard commit bumps exactly the written shards' counters.
        Mid-migration, a migrating subject stamps with the *sum* of its
        donor's and recipient's counters — it changes when either side
        does, so cache entries can never go stale across the move."""
        primary, secondary = self._route_read(subject)
        if secondary is None:
            return primary.generation_of(subject)
        return (primary.generation_of(subject)
                + secondary.generation_of(subject))

    @property
    def generation_vector(self) -> Tuple[int, ...]:
        """Per-shard generation counters, in shard order.

        The stamp for unbound (scatter-gather) reads: any write anywhere
        changes one slot, invalidating exactly the entries whose answer
        could have changed.  Each slot goes through its shard's read
        barrier, so a bulk owner reading the vector flushes first.
        """
        return tuple(shard.generation_of() for shard in self._shards)

    @property
    def sequence_ceiling(self) -> int:
        """The next global insertion-sequence number."""
        return self._sequence

    def count(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> int:
        """Matching-triple count: one shard's exact bucket size when the
        subject is bound, the sum over shards otherwise — which is what
        makes per-shard statistics feed a *global* selectivity estimate
        for the planner without any planner changes."""
        if subject is not None:
            primary, secondary = self._route_read(subject)
            if secondary is None:
                return primary.count(subject, property, value)
            # Mid-move both shards may hold copies; the deduped select
            # is the exact answer (migration windows are bounded).
            return len(self.select(subject, property, value))
        return sum(shard.count(subject, property, value)
                   for shard in self._shards)

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        if self._migration is None:
            return sum(len(shard) for shard in self._shards)
        return sum(1 for _ in self)

    def __contains__(self, triple: Triple) -> bool:
        primary, secondary = self._route_read(triple.subject)
        if triple in primary:
            return True
        return secondary is not None and triple in secondary

    def _merged_items(self) -> Iterator[Tuple[int, Triple]]:
        runs = []
        for shard in self._shards:
            if self._migration is not None:
                with shard._lock:
                    items = [(self._sequence_or(shard, t), t) for t in shard]
            else:
                try:
                    items = [(self._sequence_or(shard, t), t) for t in shard]
                except RuntimeError:   # migration moved a subject mid-read
                    with shard._lock:
                        items = [(self._sequence_or(shard, t), t)
                                 for t in shard]
            if items:
                runs.append(items)
        # Keyed merge: mid-migration a moved triple can appear in two
        # runs with the same sequence, and equal bare tuples would try
        # to order the triples themselves.
        last_seq = -1
        last_t: Optional[Triple] = None
        for seq, t in heapq.merge(*runs, key=lambda item: item[0]):
            if seq == last_seq and t == last_t:
                continue
            yield seq, t
            last_seq, last_t = seq, t

    def __iter__(self) -> Iterator[Triple]:
        return (t for _, t in self._merged_items())

    def sequence_of(self, triple: Triple) -> int:
        """The global insertion-sequence number of a present triple."""
        primary, secondary = self._route_read(triple.subject)
        try:
            return primary.sequence_of(triple)
        except TripleNotFoundError:
            if secondary is None:
                raise
            return secondary.sequence_of(triple)

    def subjects(self) -> List[Resource]:
        """Distinct subjects, in first-appearance (global) order."""
        seen: Dict[Resource, None] = {}
        for triple in self:
            seen.setdefault(triple.subject, None)
        return list(seen)

    def properties(self) -> List[Resource]:
        """Distinct properties, in first-appearance (global) order."""
        seen: Dict[Resource, None] = {}
        for triple in self:
            seen.setdefault(triple.property, None)
        return list(seen)

    def resources(self) -> List[Resource]:
        """Every resource mentioned anywhere, first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self:
            seen.setdefault(triple.subject, None)
            seen.setdefault(triple.property, None)
            if isinstance(triple.value, Resource):
                seen.setdefault(triple.value, None)
        return list(seen)

    def estimated_bytes(self) -> int:
        """Rough in-memory footprint: sum of the shard estimates."""
        return sum(shard.estimated_bytes() for shard in self._shards)

    # -- listeners ------------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> Callable[[], None]:
        """Register a change listener for events from *every* shard.

        Forwarding taps onto the shard stores attach lazily on the first
        subscription, so an unobserved sharded store pays no per-mutation
        fan-out cost.  Sequence numbers in events are global.
        """
        with self._lock:
            if not self._forwarding:
                self._forwarding = True
                for shard in self._shards:
                    shard.add_listener(self._forward)
            self._listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                if listener in self._listeners:
                    self._listeners.remove(listener)

        return unsubscribe

    def _forward(self, action: str, triple: Triple, sequence: int) -> None:
        for listener in list(self._listeners):
            listener(action, triple, sequence)

    # -- recovery support -----------------------------------------------------

    def _resync_sequence(self) -> None:
        """Advance the global counter past every shard's ceiling —
        required after recovery loads shards with logged sequences."""
        with self._lock:
            ceiling = max((shard.sequence_ceiling for shard in self._shards),
                          default=0)
            self._sequence = max(self._sequence, ceiling)

    # -- resharding (live migration) ------------------------------------------

    def _install_map(self, shard_map: ShardMap,
                     migration: Optional[_ActiveMigration] = None) -> None:
        """Adopt a persisted map (and open migration) — recovery path."""
        if shard_map.shard_count > len(self._shards):
            raise ValueError(
                f"map routes to {shard_map.shard_count} shard(s), store has "
                f"{len(self._shards)}")
        self._map = shard_map
        self._migration = migration

    def _grow_shards(self, new_total: int) -> None:
        """Append fresh (empty) shards up to *new_total*.

        New shards join the forwarding fan-out immediately; the ingest
        pool is retired so the next fan-out sizes itself to the new
        count.  Routing is untouched — nothing points at the new shards
        until a migration (or a map install) says so.
        """
        with self._lock:
            while len(self._shards) < new_total:
                shard = self._store_factory(concurrent=self.concurrent)
                if self._forwarding:
                    shard.add_listener(self._forward)
                self._shards.append(shard)
        self.close(wait=True)

    def _begin_migration(self, target: ShardMap,
                         moves: Dict[int, Tuple[int, int]]
                         ) -> _ActiveMigration:
        """Install migration routing state.  Routing is initially
        unchanged (every migrating slot still routes to its donor), so a
        plain assignment is enough — no locks needed."""
        if self._migration is not None:
            raise TransactionError("a shard migration is already active")
        if target.shard_count > len(self._shards):
            raise ValueError("grow the shard list before migrating onto it")
        migration = _ActiveMigration(target, moves)
        self._migration = migration
        return migration

    def _migration_pending(self, limit: int) -> Dict[Tuple[int, int],
                                                     List[str]]:
        """Up to *limit* subject URIs still on their donor shards,
        grouped by (donor, recipient) pair.  Empty when drained."""
        mig = self._migration
        if mig is None:
            return {}
        donors: Dict[int, Dict[int, int]] = {}
        for slot, (frm, to) in mig.moves.items():
            donors.setdefault(frm, {})[slot] = to
        out: Dict[Tuple[int, int], List[str]] = {}
        n = 0
        for frm, slot_map in sorted(donors.items()):
            donor = self._shards[frm]
            with donor._lock:
                subjects = list(donor._by_subject.keys())
            for subject in subjects:
                uri = subject.uri
                to = slot_map.get(self._map.slot_of(uri))
                if to is None:
                    continue
                out.setdefault((frm, to), []).append(uri)
                n += 1
                if n >= limit:
                    return out
        return out

    def _move_subjects_locked(self, frm: int, to: int,
                              uris: List[str]) -> int:
        """Move the given subjects' triples donor -> recipient.

        Caller holds **both** shards' store locks.  Per subject: insert
        every triple on the recipient (original sequences, so global
        order survives), flip the subject's route, then remove from the
        donor — lock-free readers see the subject on at least one side
        at every instant.  Returns how many subjects moved triples.
        """
        mig = self._migration
        if mig is None:
            raise TransactionError("no active migration")
        donor, recipient = self._shards[frm], self._shards[to]
        moved = 0
        for uri in uris:
            subject = Resource(uri)
            hits = donor.select(subject=subject)
            if not hits:
                mig.moved.add(uri)
                continue
            pairs = [(t, donor.sequence_of(t)) for t in hits]
            recipient.restore_all(pairs)
            mig.moved.add(uri)
            for t, _ in pairs:
                donor.discard(t)
            moved += 1
        return moved

    def _migration_drained_locked(self) -> bool:
        """Whether every donor is empty of migrating subjects.

        Caller holds every shard's store lock.  Checks both the indexed
        membership and any bulk-pending buffers — pending inserts are
        invisible to the drain loop, so finalizing past them would
        strand their flush on a de-routed shard.
        """
        mig = self._migration
        if mig is None:
            return True
        donors: Dict[int, Set[int]] = {}
        for slot, (frm, _) in mig.moves.items():
            donors.setdefault(frm, set()).add(slot)
        for frm, slots in donors.items():
            donor = self._shards[frm]
            for subject in donor._by_subject:
                if self._map.slot_of(subject.uri) in slots \
                        and donor._by_subject.get(subject):
                    return False
            if donor._pending is not None:
                for t, _ in donor._pending:
                    if self._map.slot_of(t.subject.uri) in slots:
                        return False
        return True

    def _try_finish_migration(self) -> bool:
        """Finalize if every donor is drained: swap the map in, clear the
        migration.  Holds every shard lock so no writer can race the
        cutover; returns ``False`` (caller keeps draining) otherwise."""
        with self._lock:
            locks = [shard._lock for shard in self._shards]
        for lock in locks:
            lock.acquire()
        try:
            mig = self._migration
            if mig is None:
                return True
            if not self._migration_drained_locked():
                return False
            # Map first, then migration: lock-free readers load the
            # migration before the map (see _route_uri), so either
            # snapshot they observe routes moved subjects correctly.
            self._map = mig.target
            self._migration = None
            return True
        finally:
            for lock in reversed(locks):
                lock.release()

    def reshard(self, new_count: int, batch_subjects: int = 256) -> int:
        """Grow (or shrink) the in-memory partition count live.

        Produces the rebalanced next-version map, migrates affected
        subjects in bounded batches (readers and writers keep running —
        writers re-validate routes under shard locks, readers follow
        moved subjects through the migration state), then swaps the new
        map in.  Returns the new map version.

        Durable stores must go through
        :meth:`ShardedDurability.reshard` (via
        :meth:`TrimManager.reshard`) so the migration rides the 2PC
        machinery; calling this on a store with durability attached
        raises.
        """
        if getattr(self, "_durability_attached", False):
            raise TransactionError(
                "this store is durable — use TrimManager.reshard() / "
                "ShardedDurability.reshard() so the migration is "
                "crash-consistent")
        if self._in_bulk:
            raise TransactionError("cannot reshard during a bulk load")
        target = self._map.rebalanced(new_count)
        moves = self._map.diff(target)
        if new_count > len(self._shards):
            self._grow_shards(new_count)
        self._begin_migration(target, moves)
        while True:
            batch = self._migration_pending(batch_subjects)
            if not batch:
                if self._try_finish_migration():
                    break
                time.sleep(0.001)
                continue
            for (frm, to), uris in batch.items():
                first, second = sorted((frm, to))
                with self._shards[first]._lock, self._shards[second]._lock:
                    self._move_subjects_locked(frm, to, uris)
        return self._map.version


# -- the coordinator meta-WAL -------------------------------------------------

class MetaScan(NamedTuple):
    """Decoded state of a coordinator meta-WAL."""

    epoch: int                  #: store incarnation (0 = no epoch record)
    shard_count: int            #: layout the epoch record pinned
    decisions: Dict[int, bool]  #: txn -> committed?
    finished: Set[int]          #: txns whose every participant is fenced
    txn_floor: int              #: highest txn number ever issued
    valid_end: int              #: offset past the last valid record
    total_bytes: int            #: file size on disk
    map: Optional[ShardMap] = None           #: latest 'M' record, if any
    migration: Optional[MigrationPlan] = None  #: open 'G' record, if any

    def live_shard_count(self) -> int:
        """The shard count the directory is currently laid out for:
        the open migration's target, else the map's count, else the
        legacy epoch-record count."""
        if self.migration is not None:
            return self.migration.target_count
        if self.map is not None:
            return self.map.shard_count
        return self.shard_count


def _scan_meta(path: str) -> MetaScan:
    """Read a meta-WAL, stopping (like :func:`scan_wal`) at the first
    torn or corrupt record.  A missing file scans as empty."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return MetaScan(0, 0, {}, set(), 0, 0, 0)
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    total = len(data)
    if data[:len(META_MAGIC)] != META_MAGIC:
        return MetaScan(0, 0, {}, set(), 0, 0, total)
    epoch = 0
    shard_count = 0
    decisions: Dict[int, bool] = {}
    finished: Set[int] = set()
    txn_floor = 0
    shard_map: Optional[ShardMap] = None
    migration: Optional[MigrationPlan] = None
    offset = len(META_MAGIC)
    valid_end = offset
    while offset + _FRAME.size <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        kind = payload[:1]
        try:
            if kind == b"E" and len(payload) == 1 + 8 + 4 + 8:
                (epoch,) = _U64.unpack_from(payload, 1)
                (shard_count,) = _U32.unpack_from(payload, 9)
                (floor,) = _U64.unpack_from(payload, 13)
                txn_floor = max(txn_floor, floor)
            elif kind == b"T" and len(payload) == 1 + 8 + 1:
                (txn,) = _U64.unpack_from(payload, 1)
                decisions[txn] = payload[9] == 1
                txn_floor = max(txn_floor, txn)
            elif kind == b"F" and len(payload) == 1 + 8:
                (txn,) = _U64.unpack_from(payload, 1)
                finished.add(txn)
            elif kind == b"M" and len(payload) >= 1 + 8 + 4 + 4:
                (version,) = _U64.unpack_from(payload, 1)
                (count,) = _U32.unpack_from(payload, 9)
                (n_slots,) = _U32.unpack_from(payload, 13)
                if len(payload) != 17 + 2 * n_slots:
                    break
                slots = struct.unpack_from(">%dH" % n_slots, payload, 17)
                shard_map = ShardMap(version, slots, count)
                # A map at (or past) an open migration's target version
                # is the migration's durable completion record.
                if migration is not None \
                        and version >= migration.target_version:
                    migration = None
            elif kind == b"G" and len(payload) >= 1 + 8 + 4 + 4:
                (version,) = _U64.unpack_from(payload, 1)
                (count,) = _U32.unpack_from(payload, 9)
                (n_moves,) = _U32.unpack_from(payload, 13)
                if len(payload) != 17 + 12 * n_moves:
                    break
                moves: Dict[int, Tuple[int, int]] = {}
                pos = 17
                for _ in range(n_moves):
                    (slot,) = _U32.unpack_from(payload, pos)
                    (frm,) = _U32.unpack_from(payload, pos + 4)
                    (to,) = _U32.unpack_from(payload, pos + 8)
                    moves[slot] = (frm, to)
                    pos += 12
                migration = MigrationPlan(version, count, moves)
            else:
                break
        except struct.error:
            break
        offset = end
        valid_end = end
    return MetaScan(epoch, shard_count, decisions, finished, txn_floor,
                    valid_end, total, shard_map, migration)


def _meta_header(epoch: int, shard_count: int, txn_floor: int,
                 shard_map: Optional[ShardMap] = None) -> bytes:
    record = (b"E" + _U64.pack(epoch) + _U32.pack(shard_count)
              + _U64.pack(txn_floor))
    header = META_MAGIC + _frame(record)
    if shard_map is not None:
        header += _frame(shard_map.encode())
    return header


class _MetaLog:
    """The coordinator's decision log for multi-shard transactions.

    Appends checksummed frames in the WAL's framing: an epoch record
    pinning (epoch, shard layout, txn floor), per-transaction decision
    records (the 2PC commit point — fsynced), and advisory *finished*
    records (not fsynced; they only let compaction know a decision can
    be dropped).  Compaction atomically rewrites the file down to a
    fresh epoch record carrying the current txn floor, and only runs
    when every decided transaction is finished — so no decision that a
    shard repair might still need can ever be lost.
    """

    #: Compact once this many decisions have accumulated (all finished).
    COMPACT_DECISIONS = 64

    def __init__(self, path: str, shard_count: int, fsync: bool = True,
                 epoch_floor: int = 0,
                 initial_map: Optional[ShardMap] = None) -> None:
        self.path = path
        self._fsync = fsync
        self._lock = threading.RLock()
        self.sync_count = 0
        scan = _scan_meta(path)
        if scan.epoch == 0:
            # Fresh (or unreadable) meta-WAL: start an incarnation above
            # both anything the old file pinned and any epoch found in
            # stale shard prepare records, so leftovers can never match.
            self.epoch = max(scan.epoch, epoch_floor) + 1
            self.shard_count = shard_count
            self._txn = scan.txn_floor
            self.map = initial_map if initial_map is not None \
                else ShardMap.initial(shard_count)
            self.migration: Optional[MigrationPlan] = None
            header = _meta_header(self.epoch, shard_count, self._txn,
                                  self.map)
            _atomic_write(path, header)
            self.decisions: Dict[int, bool] = {}
            self.finished: Set[int] = set()
            valid_end = len(header)
        else:
            self.epoch = scan.epoch
            # Directories written before shard maps existed carry no 'M'
            # record; their routing is exactly the implicit version-1
            # map (see ShardMap.initial).
            self.map = scan.map if scan.map is not None \
                else ShardMap.initial(scan.shard_count)
            self.migration = scan.migration
            self.shard_count = scan.live_shard_count()
            self._txn = scan.txn_floor
            self.decisions = dict(scan.decisions)
            self.finished = set(scan.finished)
            valid_end = scan.valid_end
            if shard_count != self.shard_count:
                status = (f"a migration to {self.shard_count} shard(s) is "
                          f"in progress" if scan.migration is not None
                          else f"laid out for {self.shard_count} shard(s)")
                raise PersistenceError(
                    f"{path}: {status} at map version {self.map.version}, "
                    f"but the store was opened with shard_count="
                    f"{shard_count}.  Reopen with shards="
                    f"{self.shard_count}, grow it live with "
                    f"TrimManager.reshard({shard_count}) / "
                    f"ShardedDurability.reshard({shard_count}), or rewrite "
                    f"it offline with `python -m repro shards split <dir> "
                    f"--shards {shard_count}`")
        try:
            self._file = open(path, "r+b")
            self._file.truncate(valid_end)
            self._file.seek(valid_end)
        except OSError as exc:
            raise PersistenceError(
                f"cannot open meta-WAL {path}: {exc}") from exc

    def next_txn(self) -> int:
        """Allocate the next coordinator transaction number."""
        with self._lock:
            self._txn += 1
            return self._txn

    def decide(self, txn: int, commit: bool) -> None:
        """Durably record the commit/abort decision — the 2PC commit point."""
        payload = b"T" + _U64.pack(txn) + (b"\x01" if commit else b"\x00")
        self._append(payload, durable=True)
        with self._lock:
            self.decisions[txn] = commit

    def finish(self, txn: int) -> None:
        """Record that every participant is fenced (advisory, no fsync)."""
        self._append(b"F" + _U64.pack(txn), durable=False)
        with self._lock:
            self.finished.add(txn)

    def begin_migration(self, plan: MigrationPlan) -> None:
        """Durably record a reshard's intent (the ``'G'`` record).

        From this record on, every recovery knows which slots are in
        flight and to which recipients — until a map record at the
        plan's target version supersedes it, reopening the directory
        resumes (and completes) the migration.
        """
        with self._lock:
            if self.migration is not None:
                raise TransactionError(
                    "a shard migration is already recorded as in progress")
            self._append(plan.encode(), durable=True)
            self.migration = plan
            self.shard_count = plan.target_count

    def write_map(self, shard_map: ShardMap) -> None:
        """Durably install a new shard map (the ``'M'`` record).

        Written at reshard finalize; at (or past) an open migration's
        target version it doubles as the migration's completion record.
        """
        with self._lock:
            self._append(shard_map.encode(), durable=True)
            self.map = shard_map
            self.shard_count = shard_map.shard_count
            if self.migration is not None \
                    and shard_map.version >= self.migration.target_version:
                self.migration = None

    def maybe_compact(self) -> None:
        """Drop fully-finished decisions by rewriting the log atomically."""
        with self._lock:
            if self._file is None:
                return
            if self.migration is not None:
                # An open 'G' record must survive verbatim until its
                # closing 'M' lands; compaction waits the migration out.
                return
            if len(self.decisions) < self.COMPACT_DECISIONS:
                return
            if any(txn not in self.finished for txn in self.decisions):
                return
            header = _meta_header(self.epoch, self.shard_count, self._txn,
                                  self.map)
            _atomic_write(self.path, header)
            self._file.close()
            try:
                self._file = open(self.path, "r+b")
                self._file.seek(len(header))
            except OSError as exc:
                self._file = None
                raise PersistenceError(
                    f"cannot reopen meta-WAL {self.path}: {exc}") from exc
            self.decisions.clear()
            self.finished.clear()

    def close(self) -> None:
        """Flush and close (idempotent)."""
        with self._lock:
            file, self._file = self._file, None
        if file is not None:
            try:
                file.flush()
            finally:
                file.close()

    def __del__(self) -> None:
        try:
            self.close()
        except BaseException:
            pass

    def _append(self, payload: bytes, durable: bool) -> None:
        with self._lock:
            if self._file is None:
                raise PersistenceError(f"meta-WAL {self.path} is closed")
            try:
                self._file.write(_frame(payload))
                self._file.flush()
                if durable and self._fsync:
                    os.fsync(self._file.fileno())
                    self.sync_count += 1
            except OSError as exc:
                raise PersistenceError(
                    f"cannot append to meta-WAL {self.path}: {exc}") from exc


# -- recovery -----------------------------------------------------------------

def _repair_shard_wal(path: str, decisions: Dict[int, bool],
                      epoch: int) -> bool:
    """Resolve a prepared-but-unfenced tail group in one shard WAL.

    When the coordinator decided *commit* for the prepared transaction
    (and the prepare's epoch matches the live incarnation), the fence is
    finished here: the boundary record is appended so ordinary recovery
    replays the group.  Every other case — no decision, abort decision,
    stale epoch — is left alone; plain recovery discards unfenced tails,
    which *is* the rollback.  Returns whether a fence was written.
    Idempotent: a repaired WAL has no prepared tail on the next scan.
    """
    scan = scan_wal(path)
    prepared = scan.prepared
    if prepared is None:
        return False
    info = prepared.info
    if info.epoch != epoch or not decisions.get(info.txn, False):
        return False
    group = scan.last_group + 1
    try:
        with open(path, "r+b") as handle:
            handle.truncate(prepared.end_offset)
            handle.seek(prepared.end_offset)
            handle.write(_frame(encode_commit(group)))
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as exc:
        raise PersistenceError(f"cannot repair WAL {path}: {exc}") from exc
    return True


def _recover_shards(store: ShardedTripleStore, dirs: List[str],
                    registry: NamespaceRegistry) -> List[RecoveryResult]:
    """Recover each shard directory into its shard, in parallel.

    Shards never share files or stores, so per-shard recovery is
    embarrassingly parallel; on a multi-shard store the work fans out
    over the store's shard pool (snapshot decode overlaps another
    shard's disk reads).  The registry is the one shared structure —
    :meth:`NamespaceRegistry.register` is thread-safe.  Results come
    back in shard order; the first failure propagates after the
    remaining workers finish, so no thread outlives this call.
    """
    pairs = list(zip(store.shards, dirs))
    pool = store._get_pool() if len(pairs) > 1 else None
    if pool is None:
        return [recover(shard_dir, store=shard, namespaces=registry)
                for shard, shard_dir in pairs]
    futures = [pool.submit(recover, shard_dir, store=shard,
                           namespaces=registry)
               for shard, shard_dir in pairs]
    results: List[RecoveryResult] = []
    error: Optional[BaseException] = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if error is None:
                error = exc
    if error is not None:
        raise error
    return results


class ShardedRecoveryResult(NamedTuple):
    """What :func:`recover_sharded` reconstructed and how."""

    store: ShardedTripleStore        #: the recovered sharded store
    shards: List[RecoveryResult]     #: per-shard recovery detail
    repaired: int                    #: prepared groups fenced from meta-WAL
    epoch: int                       #: coordinator epoch found (0 if none)
    namespaces: NamespaceRegistry    #: registry with every declaration
    map_version: int = 1             #: shard-map version in force
    migration_open: bool = False     #: a reshard was mid-flight at crash
    #: Wall-clock seconds per recovery stage: ``repair_s`` (meta-WAL
    #: decision fences, always serial), ``shards_s`` (per-shard snapshot
    #: + delta + WAL recovery, fanned out over the shard pool) and
    #: ``routing_s`` (migration routing rebuild).  ``None`` on results
    #: built before timing existed.
    stage_seconds: Optional[Dict[str, float]] = None


def shard_directories(directory: str) -> List[str]:
    """The ``shard-NNN`` subdirectories under a sharded durable root,
    in shard-index order.  Empty when *directory* is not sharded."""
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return []
    matches = sorted(e for e in entries if _SHARD_DIR_RE.match(e))
    return [os.path.join(directory, e) for e in matches]


def is_sharded_directory(directory: str) -> bool:
    """Whether *directory* holds a sharded durable layout."""
    return bool(shard_directories(directory)) or \
        os.path.exists(os.path.join(directory, META_FILE))


def recover_sharded(directory: str,
                    namespaces: Optional[NamespaceRegistry] = None,
                    concurrent: bool = False,
                    store_factory: Callable[..., TripleStore] = TripleStore
                    ) -> ShardedRecoveryResult:
    """Rebuild the sharded durable state under *directory*.

    Reads the coordinator meta-WAL, finishes the fence of every prepared
    group whose transaction was decided *commit* (and leaves every other
    in-doubt group for ordinary recovery to discard — the rollback),
    then recovers each shard directory into a fresh
    :class:`ShardedTripleStore`.  The resulting store is consistent:
    every in-flight multi-shard transaction is either fully applied or
    fully absent, on all shards alike.

    Decision repair is single-threaded and strictly ordered (it mutates
    shard WAL tails based on the one coordinator log); the per-shard
    snapshot/delta/WAL recovery that follows touches only its own shard
    and directory, so it fans out over the store's shard pool.  Results
    are collected in shard order regardless of completion order.
    """
    dirs = shard_directories(directory)
    if not dirs:
        raise PersistenceError(
            f"{directory!r} holds no shard directories (not a sharded "
            f"durable root)")
    meta = _scan_meta(os.path.join(directory, META_FILE))
    shard_map = meta.map if meta.map is not None \
        else ShardMap.initial(len(dirs))
    # A crash between the 'G' record and the recipient-directory
    # creation leaves fewer dirs than the migration target; size the
    # store for whichever is larger and recover the dirs that exist.
    count = max(len(dirs), meta.live_shard_count())
    store = ShardedTripleStore(count, concurrent=concurrent,
                               store_factory=store_factory)
    registry = namespaces if namespaces is not None else NamespaceRegistry()
    repaired = 0
    started = time.perf_counter()
    if meta.epoch:
        for shard_dir in dirs:
            if _repair_shard_wal(os.path.join(shard_dir, WAL_FILE),
                                 meta.decisions, meta.epoch):
                repaired += 1
    repaired_at = time.perf_counter()
    results = _recover_shards(store, dirs, registry)
    store._resync_sequence()
    shards_at = time.perf_counter()
    migration = None
    if meta.migration is not None:
        # Rebuild the in-flight routing state: a subject already on a
        # recipient shard (for its migrating slot) committed its move
        # before the crash, so it routes there; everything else still
        # routes to its donor.  Recovery already made each batch
        # all-or-nothing, so membership is unambiguous.
        target = meta.migration.target_map(shard_map)
        migration = _ActiveMigration(target, meta.migration.moves)
        for slot, (_, to) in meta.migration.moves.items():
            recipient = store.shards[to]
            for subject in recipient._by_subject:
                uri = subject.uri
                if shard_map.slot_of(uri) == slot:
                    migration.moved.add(uri)
    store._install_map(shard_map, migration)
    stage_seconds = {
        "repair_s": round(repaired_at - started, 6),
        "shards_s": round(shards_at - repaired_at, 6),
        "routing_s": round(time.perf_counter() - shards_at, 6),
    }
    return ShardedRecoveryResult(store, results, repaired, meta.epoch,
                                 registry, shard_map.version,
                                 meta.migration is not None,
                                 stage_seconds)


# -- the sharded durability orchestrator --------------------------------------

class ShardedDurability:
    """Crash-safe persistence for a :class:`ShardedTripleStore`.

    Layout under *directory*::

        meta.wal        coordinator epoch + 2PC decision records
        shard-000/      snapshot.slim + wal.log   (one Durability each)
        shard-001/      ...

    Attaching recovers existing state (finishing or rolling back any
    in-doubt transaction first), then logs every mutation through the
    owning shard's WAL.  :meth:`commit` closes a durable group: one
    ordinary WAL group commit when a single shard is dirty, two-phase
    commit across the participants otherwise.  :meth:`commit_for` is the
    partitioned fast path — it durably commits only the shard owning one
    subject, so independent writers on different shards overlap their
    fsyncs instead of serializing on one log.

    *sync* and *commit_every* carry the
    :class:`~repro.triples.wal.Durability` semantics to the coordinator:
    ``'group'``/``'async'`` run commits on a background flusher shared
    by all committers, and *commit_every* auto-commits outside atomic
    scopes.  Compaction is per shard, at each shard's own cadence.
    """

    _SYNC_MODES = ("inline", "group", "async")

    def __init__(self, store: ShardedTripleStore, directory: str,
                 namespaces: Optional[NamespaceRegistry] = None,
                 compact_every: int = 64, fsync: bool = True,
                 commit_every: Optional[int] = None,
                 sync: str = "inline",
                 delta_ratio: float = 0.5) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        if commit_every is not None and commit_every < 1:
            raise ValueError("commit_every must be >= 1 or None")
        if sync not in self._SYNC_MODES:
            raise ValueError(f"sync must be one of {self._SYNC_MODES}")
        if delta_ratio < 0:
            raise ValueError("delta_ratio must be >= 0")
        self.directory = directory
        self.namespaces = namespaces
        self.compact_every = compact_every
        self.commit_every = commit_every
        self.sync = sync
        self.delta_ratio = delta_ratio
        self._fsync = fsync
        self._store = store
        count = store.shard_count
        existing = shard_directories(directory)
        if existing and len(existing) != count:
            scan = _scan_meta(os.path.join(directory, META_FILE))
            resumable = (scan.migration is not None
                         and scan.live_shard_count() == count
                         and len(existing) < count)
            if not resumable:
                live = scan.live_shard_count() or len(existing)
                raise PersistenceError(
                    f"{directory!r} is laid out for {live} shard(s) but the "
                    f"store was opened with shard_count={count}.  Reopen "
                    f"with shards={live}, grow it live with "
                    f"TrimManager.reshard({count}) / "
                    f"ShardedDurability.reshard({count}), or rewrite it "
                    f"offline with `python -m repro shards split "
                    f"{directory} --shards {count}`")
        os.makedirs(directory, exist_ok=True)
        shard_dirs = [os.path.join(directory, SHARD_DIR_FMT % i)
                      for i in range(count)]
        # A fresh meta-WAL must pick an epoch above any stale prepare
        # record a discarded incarnation left in the shard WALs.
        epoch_floor = 0
        for shard_dir in shard_dirs:
            scan = scan_wal(os.path.join(shard_dir, WAL_FILE))
            if scan.prepared is not None:
                epoch_floor = max(epoch_floor, scan.prepared.info.epoch)
        self._meta = _MetaLog(os.path.join(directory, META_FILE),
                              shard_count=count, fsync=fsync,
                              epoch_floor=epoch_floor,
                              initial_map=store.shard_map
                              if store.map_version > 1 else None)
        #: How many in-doubt groups recovery fenced to completion.
        self.repaired = 0
        for shard_dir in shard_dirs:
            os.makedirs(shard_dir, exist_ok=True)
            if _repair_shard_wal(os.path.join(shard_dir, WAL_FILE),
                                 self._meta.decisions, self._meta.epoch):
                self.repaired += 1
        self._durs: List[Durability] = []
        try:
            self._durs = self._attach_shards(store, shard_dirs)
        except BaseException:
            for dur in self._durs:
                dur.close()
            self._meta.close()
            raise
        store._resync_sequence()
        # Adopt the persisted map (a reopened directory may be several
        # reshards past the implicit version-1 layout the store was
        # constructed with) and, when a crash left a migration open,
        # rebuild its routing state for the resume below.
        migration = None
        if self._meta.migration is not None:
            plan = self._meta.migration
            target = plan.target_map(self._meta.map)
            migration = _ActiveMigration(target, plan.moves)
            for slot, (_, to) in plan.moves.items():
                recipient = store.shards[to]
                for subject in recipient._by_subject:
                    if self._meta.map.slot_of(subject.uri) == slot:
                        migration.moved.add(subject.uri)
        store._install_map(self._meta.map, migration)
        store._durability_attached = True
        self._meta_lock = threading.Lock()
        self._shard_locks = [threading.Lock() for _ in range(count)]
        self._inline_commits = 0
        self._closed = False
        self._2pc_pool: Optional[ThreadPoolExecutor] = None
        self._2pc_pool_lock = threading.Lock()
        #: Whether attaching found (and completed) an interrupted reshard.
        self.resumed_migration = False
        self._flusher: Optional[_GroupCommitFlusher] = None
        #: Test instrumentation: called as ``hook(stage, txn, index)`` at
        #: each 2PC protocol step; raising :class:`SimulatedCrash` kills
        #: the coordinator mid-protocol with no cleanup, like a real
        #: crash.  ``None`` outside the crash-injection suite.
        self.crash_hook: Optional[Callable[[str, int, Optional[int]], None]] = None
        self._unsubscribe = store.add_listener(self._on_change)
        self._unsubscribe_atomic = store.add_atomic_listener(
            self._on_atomic_end)
        try:
            if migration is not None:
                # Finish what the crashed incarnation started: drain the
                # remaining subjects batch by batch (each batch is its
                # own 2PC transaction) and write the closing map record.
                self._drain_migration(batch_subjects=256)
                self.resumed_migration = True
            self._meta.maybe_compact()
            if sync != "inline":
                self._flusher = _GroupCommitFlusher(self,
                                                    ack=(sync == "group"))
        except BaseException:
            self._unsubscribe()
            self._unsubscribe_atomic()
            for dur in self._durs:
                dur.close()
            self._meta.close()
            raise

    def _attach_shards(self, store: ShardedTripleStore,
                       shard_dirs: List[str]) -> List[Durability]:
        """Build one per-shard :class:`Durability`, fanned out over the
        shard pool.

        Each orchestrator recovers its own shard directory and logs that
        shard's changes; the coordinator owns all commit decisions, so
        auto-grouping and background sync stay disabled per shard.
        Construction order does not matter (every shard touches only its
        own files), but the returned list is in shard-index order.  On
        any failure the orchestrators that did come up are closed before
        the first error propagates — no WAL handle leaks.
        """
        def build(shard: TripleStore, shard_dir: str) -> Durability:
            return Durability(shard, shard_dir,
                              namespaces=self.namespaces,
                              compact_every=self.compact_every,
                              fsync=self._fsync, commit_every=None,
                              sync="inline", delta_ratio=self.delta_ratio)

        pairs = list(zip(store.shards, shard_dirs))
        pool = store._get_pool() if len(pairs) > 1 else None
        if pool is None:
            durs: List[Durability] = []
            try:
                for shard, shard_dir in pairs:
                    durs.append(build(shard, shard_dir))
            except BaseException:
                for dur in durs:
                    dur.close()
                raise
            return durs
        futures = [pool.submit(build, shard, shard_dir)
                   for shard, shard_dir in pairs]
        built: List[Optional[Durability]] = []
        error: Optional[BaseException] = None
        for future in futures:
            try:
                built.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
                built.append(None)
        if error is not None:
            for dur in built:
                if dur is not None:
                    dur.close()
            raise error
        return [dur for dur in built if dur is not None]

    # -- observability --------------------------------------------------------

    @property
    def shard_durabilities(self) -> Tuple[Durability, ...]:
        """The per-shard orchestrators, in shard-index order."""
        return tuple(self._durs)

    @property
    def recovered(self) -> List[Optional[RecoveryResult]]:
        """Per-shard recovery results (``None`` for fresh shards)."""
        return [dur.recovered for dur in self._durs]

    @property
    def epoch(self) -> int:
        """The coordinator epoch (store incarnation)."""
        return self._meta.epoch

    @property
    def group(self) -> int:
        """Total committed WAL groups across every shard."""
        return sum(dur.group for dur in self._durs)

    @property
    def pending_changes(self) -> int:
        """Changes logged since the last commit, across every shard."""
        return sum(dur.pending_changes for dur in self._durs)

    @property
    def commits_requested(self) -> int:
        """Commit calls that reached a WAL (any sync mode)."""
        flusher = self._flusher
        coordinator = self._inline_commits + (flusher.requested
                                              if flusher else 0)
        return coordinator + sum(dur.commits_requested for dur in self._durs)

    @property
    def fsync_count(self) -> int:
        """Group-commit fsyncs across every shard WAL plus the meta-WAL."""
        return (sum(dur.fsync_count for dur in self._durs)
                + self._meta.sync_count)

    # -- committing -----------------------------------------------------------

    def commit(self, wait: Optional[bool] = None) -> bool:
        """Close the current group; ``False`` when nothing changed.

        Groups whose changes live on one shard commit as that shard's
        ordinary WAL group.  Multi-shard groups run two-phase commit:
        prepare every participant, fsync the decision into the meta-WAL,
        fence every participant.  *wait* follows
        :meth:`Durability.commit` under ``sync='group'``/``'async'``.
        """
        if self._closed:
            raise PersistenceError("sharded durability handle is closed")
        if self._flusher is None:
            changed = self._flush_group()
            if changed:
                with self._meta_lock:
                    self._inline_commits += 1
                self._maybe_compact()
            return changed
        if self.pending_changes == 0:
            return False
        if wait is None:
            wait = self.sync == "group"
        self._flusher.request(wait=wait)
        return True

    def commit_for(self, subject: Resource) -> bool:
        """Durably commit only the shard owning *subject*.

        The partitioned fast path: a writer whose batch touched one
        subject's shard pays one WAL group commit there, concurrently
        with other writers committing other shards — no coordinator
        serialization, which is where the multi-writer ingest speedup
        comes from (``benchmarks/test_trim_sharding.py``).  Changes other
        writers put on the *same* shard since its last commit join the
        group, exactly like racing committers on a single WAL.
        """
        if self._closed:
            raise PersistenceError("sharded durability handle is closed")
        index = self._store.shard_index(subject)
        with self._shard_locks[index]:
            return self._durs[index].commit()

    def compact(self) -> None:
        """Fold every shard's log into a fresh snapshot."""
        if self._closed:
            raise PersistenceError("sharded durability handle is closed")
        for lock, dur in zip(list(self._shard_locks), list(self._durs)):
            with lock:
                dur.compact()
        with self._meta._lock:
            self._meta.maybe_compact()

    # -- resharding -----------------------------------------------------------

    @property
    def map_version(self) -> int:
        """The persisted shard-map version."""
        return self._meta.map.version

    @property
    def shard_map(self) -> ShardMap:
        """The persisted shard map."""
        return self._meta.map

    def reshard(self, new_count: int, batch_subjects: int = 256,
                wait: bool = True) -> "ReshardJob":
        """Grow the shard count live, migrating subjects under 2PC.

        The rebalanced next-version map is computed, the recipient
        directories and durability handles are created, and the
        migration intent lands durably in the meta-WAL (the ``'G'``
        record) *before* any subject moves — a crash at any later point
        reopens into an automatic resume.  Subjects then drain from
        donors to recipients in bounded batches; each batch buffers the
        moves into both WALs and commits them as one two-phase
        transaction (prepare both, decision in the meta-WAL, fence),
        with both shards' store locks and WAL locks held across the
        window so racing writers and per-shard commits can never split
        a half-moved subject.  Readers and writers never block for the
        whole migration — only for the batch touching their shard.
        Finalizing writes the new map record, the migration's durable
        completion.

        ``wait=False`` runs the drain on a background thread; the
        returned :class:`ReshardJob` exposes progress and ``join()``.
        Live resharding only grows; use ``python -m repro shards
        split`` offline to shrink.
        """
        if self._closed:
            raise PersistenceError("sharded durability handle is closed")
        store = self._store
        current = self._meta.map.shard_count
        if new_count == current:
            return ReshardJob(self, batch_subjects, done=True)
        if new_count < current:
            raise PersistenceError(
                f"live resharding only grows ({current} -> {new_count} "
                f"shrinks); rewrite the directory offline with `python -m "
                f"repro shards split {self.directory} --shards {new_count}`")
        if self._meta.migration is not None \
                or store.migration_active:
            raise TransactionError("a shard migration is already in progress")
        if store.in_bulk:
            raise TransactionError("cannot reshard during a bulk load")
        target = self._meta.map.rebalanced(new_count)
        plan = MigrationPlan(target.version, new_count,
                             self._meta.map.diff(target))
        # Durable intent first: once the 'G' record is down, any crash
        # resumes the migration on reopen (with shards=new_count) —
        # recipient directories are recreated there if missing.
        self._meta.begin_migration(plan)
        self._crash("reshard-begin", 0)
        self._grow(new_count)
        self._crash("reshard-grown", 0)
        store._begin_migration(target, plan.moves)
        job = ReshardJob(self, batch_subjects)
        if wait:
            job.run()
        else:
            thread = threading.Thread(target=job.run, daemon=True,
                                      name="slim-reshard")
            job._thread = thread
            thread.start()
        return job

    def _grow(self, new_count: int) -> None:
        """Create recipient shards, directories, and durability handles."""
        store = self._store
        store._grow_shards(new_count)
        with self._meta_lock:
            for i in range(len(self._durs), new_count):
                shard_dir = os.path.join(self.directory, SHARD_DIR_FMT % i)
                os.makedirs(shard_dir, exist_ok=True)
                self._durs.append(Durability(
                    store.shards[i], shard_dir, namespaces=self.namespaces,
                    compact_every=self.compact_every, fsync=self._fsync,
                    commit_every=None, sync="inline",
                    delta_ratio=self.delta_ratio))
                self._shard_locks.append(threading.Lock())
        # Retire the 2PC pool so the next one sizes to the new count.
        with self._2pc_pool_lock:
            pool, self._2pc_pool = self._2pc_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _drain_migration(self, batch_subjects: int) -> Tuple[int, int]:
        """Move every pending subject, then finalize.  Returns
        (batches, subjects_moved)."""
        store = self._store
        batches = moved = 0
        while True:
            batch = store._migration_pending(batch_subjects)
            if not batch:
                if self._finalize_migration():
                    return batches, moved
                time.sleep(0.001)
                continue
            for (frm, to), uris in batch.items():
                moved += self._migrate_batch(frm, to, uris)
                batches += 1

    def _migrate_batch(self, frm: int, to: int, uris: List[str]) -> int:
        """Move one bounded batch of subjects and 2PC-commit it.

        Lock order is the store tier first (both shards, ascending),
        then the durability tier (both shard WAL locks, ascending) —
        the same order every writer and committer uses, so there is no
        cycle.  The WAL locks are held from *before* the first move
        event is buffered until the fence completes: a racing
        ``commit_for`` on the donor can therefore never durably commit
        the removals without the recipient's inserts.
        """
        store = self._store
        first, second = sorted((frm, to))
        store.begin_atomic()   # defers commit_every auto-commits
        try:
            with store.shards[first]._lock, store.shards[second]._lock:
                with self._shard_locks[first], self._shard_locks[second]:
                    moved = store._move_subjects_locked(frm, to, uris)
                    participants = [dur for dur in
                                    (self._durs[frm], self._durs[to])
                                    if dur.pending_changes > 0]
                    if len(participants) == 2:
                        self._two_phase_commit(participants, use_pool=False)
                    elif participants:
                        participants[0]._flush_group()
            return moved
        finally:
            store.end_atomic()

    def _finalize_migration(self) -> bool:
        """Write the closing map record and swap routing, if drained.

        Holds every shard's store lock: the emptiness re-check, the
        durable map record, and the in-memory cutover happen in one
        critical section no writer can interleave.
        """
        store = self._store
        with store._lock:
            locks = [shard._lock for shard in store._shards]
        for lock in locks:
            lock.acquire()
        try:
            migration = store._migration
            if migration is None:
                return True
            if not store._migration_drained_locked():
                return False
            self._crash("reshard-final", 0)
            self._meta.write_map(migration.target)
            self._crash("reshard-installed", 0)
            store._map = migration.target
            store._migration = None
            return True
        finally:
            for lock in reversed(locks):
                lock.release()

    def close(self) -> None:
        """Detach from the store and close every log (idempotent).

        Safe to call from finalizers; a background flusher is drained
        first and its stashed error (if any) re-raised after all
        resources are released.
        """
        self._close(join=True)

    def _close(self, join: bool) -> None:
        if self._closed:
            return
        self._closed = True
        self._unsubscribe()
        self._unsubscribe_atomic()
        errors: List[BaseException] = []
        if self._flusher is not None:
            try:
                self._flusher.close(join=join)
            except BaseException as exc:
                errors.append(exc)
        with self._2pc_pool_lock:
            pool, self._2pc_pool = self._2pc_pool, None
        if pool is not None:
            pool.shutdown(wait=join)
        for dur in self._durs:
            try:
                dur._close(join=join)
            except BaseException as exc:
                errors.append(exc)
        try:
            self._meta.close()
        except BaseException as exc:
            errors.append(exc)
        if errors:
            raise errors[0]

    def __del__(self) -> None:
        # Never join threads from a finalizer (see TripleStore pool and
        # _GroupCommitFlusher close docstrings for the GC deadlock).
        try:
            self._close(join=False)
        except BaseException:
            pass

    def abandon(self) -> None:
        """Make a "crashed" coordinator inert, as if its process died.

        A dead process writes nothing more, so neither may this object
        or its finalizers: every shard :class:`~repro.triples.wal.Durability`
        is abandoned (buffers dropped, file handles released where the
        last durable write left them) and the meta-WAL handle closed
        without flushing.  The directory then looks like a hard kill mid
        2PC and must go through :func:`recover_sharded`.  This is the
        crash-simulation primitive behind the crash matrix in
        ``tests/test_sharding.py`` and the replay harness
        (:mod:`repro.replay`).  Only valid under ``sync='inline'``.
        """
        if self._flusher is not None:
            raise PersistenceError(
                "abandon() requires sync='inline' — a background flusher "
                "cannot be killed deterministically")
        self._closed = True
        self._unsubscribe()
        self._unsubscribe_atomic()
        for shard_durability in self._durs:
            shard_durability.abandon()
        meta_file, self._meta._file = self._meta._file, None
        if meta_file is not None:
            try:
                meta_file.close()
            except OSError:
                pass

    # -- internals ------------------------------------------------------------

    def _crash(self, stage: str, txn: int, index: Optional[int] = None) -> None:
        hook = self.crash_hook
        if hook is not None:
            hook(stage, txn, index)

    def _flush_group(self) -> bool:
        """One coordinated group commit; ``True`` if anything was dirty.

        Takes the coordinator lock, then every shard lock in index order
        (excluding concurrent :meth:`commit_for` calls), then runs either
        the single-shard fast path or the 2PC protocol.
        """
        with self._meta_lock:
            for lock in self._shard_locks:
                lock.acquire()
            try:
                participants = [dur for dur in self._durs
                                if dur.pending_changes > 0]
                if not participants:
                    return False
                if len(participants) == 1:
                    return participants[0]._flush_group()
                self._two_phase_commit(participants)
                return True
            finally:
                for lock in reversed(self._shard_locks):
                    lock.release()

    def _get_2pc_pool(self) -> ThreadPoolExecutor:
        """The dedicated prepare/fence fan-out pool.

        2PC must never borrow the store's ingest pool: during a
        migration every ingest worker can be parked on a store lock the
        migrating batch holds, and a group commit queued behind them
        (while holding every WAL lock the batch needs) would deadlock
        the triangle.  This pool only ever runs WAL calls, which take
        no store locks.
        """
        with self._2pc_pool_lock:
            if self._2pc_pool is None:
                self._2pc_pool = ThreadPoolExecutor(
                    max_workers=len(self._durs),
                    thread_name_prefix="slim-2pc")
            return self._2pc_pool

    def _two_phase_commit(self, participants: List[Durability],
                          use_pool: bool = True) -> None:
        txn = self._meta.next_txn()
        info = PrepareInfo(txn, len(participants), self._meta.epoch)
        prepared: List[Durability] = []
        try:
            if use_pool and self.crash_hook is None and len(participants) > 1:
                pool = self._get_2pc_pool()
            else:
                # Crash-injection runs serially so every inter-step
                # window is a deterministic kill point.
                pool = None
            if pool is None:
                for i, dur in enumerate(participants):
                    dur._wal.prepare(info)
                    prepared.append(dur)
                    self._crash("prepare", txn, i)
            else:
                futures = [pool.submit(dur._wal.prepare, info)
                           for dur in participants]
                prepared = list(participants)
                for future in futures:
                    future.result()
        except SimulatedCrash:
            raise
        except BaseException:
            # Phase-1 failure: record the abort (so a concurrent crash
            # still resolves to rollback), then roll every prepared WAL
            # back; their buffers stay intact for a retry.
            try:
                self._meta.decide(txn, commit=False)
            finally:
                for dur in prepared:
                    try:
                        dur._wal.abort_prepared()
                    except PersistenceError:
                        pass  # that WAL failed closed; recovery discards
            raise
        self._crash("decide", txn)
        self._meta.decide(txn, commit=True)   # <- the commit point
        self._crash("decided", txn)
        pool = (self._get_2pc_pool()
                if use_pool and self.crash_hook is None
                and len(participants) > 1 else None)
        if pool is None:
            for i, dur in enumerate(participants):
                dur._wal.fence()
                with dur._meta_lock:
                    dur._groups_since_snapshot += 1
                self._crash("fence", txn, i)
        else:
            futures = [pool.submit(dur._wal.fence) for dur in participants]
            for future in futures:
                future.result()
            for dur in participants:
                with dur._meta_lock:
                    dur._groups_since_snapshot += 1
        self._meta.finish(txn)
        self._crash("finish", txn)
        self._meta.maybe_compact()

    def _maybe_compact(self) -> None:
        """Per-shard compaction at each shard's own cadence; never blocks
        on a busy shard (same contract as :meth:`Durability._maybe_compact`)."""
        for lock, dur in zip(list(self._shard_locks), list(self._durs)):
            if not lock.acquire(blocking=False):
                continue
            try:
                dur._maybe_compact()
            finally:
                lock.release()

    def _on_change(self, action: str, triple: Triple, sequence: int) -> None:
        if self.commit_every is not None \
                and not self._store.in_atomic \
                and self.pending_changes >= self.commit_every:
            self.commit(wait=False)

    def _on_atomic_end(self) -> None:
        if self._closed or self.commit_every is None:
            return
        if self.pending_changes >= self.commit_every \
                and not self._store.in_atomic:
            self.commit(wait=False)


class ReshardJob:
    """Handle on a live migration started by :meth:`ShardedDurability.reshard`.

    With ``wait=True`` (the default) the job has already run by the time
    the caller sees it; with ``wait=False`` it drains on a background
    thread and :meth:`join` blocks until the closing map record is
    durable.  ``subjects_moved``/``batches`` are progress counters, and
    ``error`` carries a background failure (also re-raised by ``join``).
    """

    def __init__(self, durability: "ShardedDurability", batch_subjects: int,
                 done: bool = False) -> None:
        self._durability = durability
        self._batch_subjects = batch_subjects
        self._thread: Optional[threading.Thread] = None
        self.done = done
        self.batches = 0
        self.subjects_moved = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        """Drain the migration to completion (idempotent once done)."""
        if self.done:
            return
        try:
            self.batches, self.subjects_moved = \
                self._durability._drain_migration(self._batch_subjects)
            self.done = True
        except BaseException as exc:
            self.error = exc
            if self._thread is None:
                raise

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for a background drain to finish; re-raise its error."""
        if self._thread is not None:
            self._thread.join(timeout)
        if self.error is not None:
            raise self.error


def split_offline(directory: str, new_count: int,
                  namespaces: Optional[NamespaceRegistry] = None,
                  out: Optional[str] = None) -> ShardMap:
    """Rewrite a cold sharded directory for *new_count* shards.

    The offline fallback for what :meth:`ShardedDurability.reshard` does
    live — and the only path that *shrinks*.  The directory is recovered
    in full, rebuilt shard by shard under a fresh version-bumped map
    with the even initial layout (slot table sized to the new count, so
    a later live grow is not capped by the old table), committed,
    compacted, and either written to *out* or swapped into place.  The
    in-place swap keeps the original under ``<directory>.split-old``
    until the rebuilt tree is durable, then removes it; a crash mid-swap
    leaves one intact directory at one of the two names.  Returns the
    new map.
    """
    if new_count < 1:
        raise ValueError("new_count must be >= 1")
    result = recover_sharded(directory, namespaces=namespaces)
    try:
        if result.migration_open:
            raise PersistenceError(
                f"{directory!r} has a live migration in progress; reopen it "
                f"with shards={result.store.shard_count} to let the "
                f"migration resume and finish before splitting offline")
        old_map = result.store.shard_map
        target = ShardMap(old_map.version + 1,
                          ShardMap.initial(new_count).slots, new_count)
        in_place = out is None
        dest = directory + ".split-tmp" if in_place else out
        if os.path.exists(dest) and os.listdir(dest):
            raise PersistenceError(f"split destination {dest!r} is not empty")
        os.makedirs(dest, exist_ok=True)
        new_store = ShardedTripleStore(new_count, shard_map=target)
        dur = ShardedDurability(new_store, dest, namespaces=result.namespaces,
                                commit_every=None, sync="inline")
        try:
            with new_store.bulk():
                for sequence, triple in result.store._merged_items():
                    new_store.restore(triple, sequence)
            dur.commit()
            dur.compact()
        finally:
            dur.close()
            new_store.close()
    finally:
        result.store.close()
    if in_place:
        old = directory + ".split-old"
        if os.path.exists(old):
            shutil.rmtree(old)
        os.rename(directory, old)
        os.rename(dest, directory)
        shutil.rmtree(old)
    return target

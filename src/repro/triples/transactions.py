"""Batches and undo/redo over a triple store.

The paper's DMI exposes create/update/delete operations that each expand to
several triple-level changes (an ``Update_bundlePos`` removes one triple
and adds another).  A :class:`Batch` groups those changes so a failed DMI
operation can roll back to a consistent state, and :class:`UndoLog` gives
the superimposed application user-level undo — the digital counterpart of
scribbling out an entry on a paper bundle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import TransactionError
from repro.triples.store import TripleStore
from repro.triples.triple import Triple


@dataclass(frozen=True)
class Change:
    """One recorded store mutation: ``action`` is ``'add'`` or ``'remove'``.

    ``sequence`` is the insertion-sequence number the triple held when the
    change was recorded, so inverting a removal puts the triple back at
    its *original* position — ``select()`` order and persisted files match
    the pre-change state exactly after an undo/rollback/redo cycle.
    """

    action: str
    triple: Triple
    sequence: int = -1

    def inverted(self) -> "Change":
        """The change that undoes this one."""
        return Change("remove" if self.action == "add" else "add",
                      self.triple, self.sequence)


def _apply(store: TripleStore, change: Change) -> None:
    if change.action == "add":
        if change.sequence >= 0:
            store.restore(change.triple, change.sequence)
        else:
            store.add(change.triple)
    else:
        store.discard(change.triple)


class Batch:
    """Context manager grouping store changes with rollback on error.

    ::

        with Batch(store) as batch:
            store.add(t1)
            store.remove(t2)
            # raising here rolls both back

    On normal exit the batch commits (changes stay) and its change list is
    available via :attr:`changes`.  Batches do not nest on one store.

    The batch rides the store's bulk-ingest fast path when the store
    offers one (``store.bulk()``): adds made inside the batch defer index
    maintenance and listener fan-out until the batch's first selection,
    removal, or exit.  The rollback contract is unchanged — on a normal
    exit the deferred inserts flush (and are recorded as changes) before
    ``__exit__`` returns; on an exception, still-pending inserts are
    rolled back by the bulk abort and everything already flushed is
    inverted by :meth:`rollback`.  A batch cannot open while a bulk load
    someone else owns is active on the store.

    A batch is an *atomic scope* on stores that track one
    (``begin_atomic``/``end_atomic``): durability layers suppress
    mid-batch auto-commits and group-commit at scope exit instead, so a
    crash can never recover a half-applied batch — the rollback
    inversions land in the same WAL group as the changes they revert.
    """

    def __init__(self, store: TripleStore, bulk: bool = True) -> None:
        self._store = store
        self._changes: List[Change] = []
        self._unsubscribe = None
        self._use_bulk = bulk and hasattr(store, "bulk")
        self._bulk = None
        self._atomic = False

    def __enter__(self) -> "Batch":
        if self._unsubscribe is not None:
            raise TransactionError("batch already active")
        if getattr(self._store, "in_bulk", False):
            raise TransactionError(
                "batch cannot open inside an active bulk load")
        begin_atomic = getattr(self._store, "begin_atomic", None)
        if begin_atomic is not None:
            begin_atomic()
            self._atomic = True
        self._unsubscribe = self._store.add_listener(self._record)
        if self._use_bulk:
            self._bulk = self._store.bulk()
            self._bulk.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._unsubscribe is None:
            raise TransactionError("batch exited without entering")
        try:
            if self._bulk is not None:
                # Flushes deferred inserts (success) — recording them via
                # the listener — or silently rolls them back (error).
                self._bulk.__exit__(exc_type, exc, tb)
                self._bulk = None
            self._unsubscribe()
            self._unsubscribe = None
            if exc_type is not None:
                self.rollback()
        finally:
            if self._atomic:
                self._atomic = False
                self._store.end_atomic()
        return False  # never swallow exceptions

    def _record(self, action: str, triple: Triple, sequence: int) -> None:
        self._changes.append(Change(action, triple, sequence))

    @property
    def changes(self) -> List[Change]:
        """The mutations recorded so far, oldest first."""
        return list(self._changes)

    def rollback(self) -> None:
        """Undo every recorded change (newest first), then forget them."""
        for change in reversed(self._changes):
            _apply(self._store, change.inverted())
        self._changes.clear()


class UndoLog:
    """Linear undo/redo of grouped mutations on one store.

    Attach the log, mutate the store (directly or through a DMI), and call
    :meth:`checkpoint` after each user-level operation.  :meth:`undo`
    reverts the most recent group; :meth:`redo` re-applies it.  A new
    mutation after an undo discards the redo tail, as editors do.
    """

    def __init__(self, store: TripleStore) -> None:
        self._store = store
        self._pending: List[Change] = []
        self._undo_stack: List[List[Change]] = []
        self._redo_stack: List[List[Change]] = []
        self._replaying = False
        self._unsubscribe = store.add_listener(self._record)

    def detach(self) -> None:
        """Stop observing the store (pending changes are discarded)."""
        self._unsubscribe()
        self._pending.clear()

    def _record(self, action: str, triple: Triple, sequence: int) -> None:
        if self._replaying:
            return
        self._pending.append(Change(action, triple, sequence))
        self._redo_stack.clear()

    def checkpoint(self) -> bool:
        """Close the current group; return False if nothing changed."""
        if not self._pending:
            return False
        self._undo_stack.append(self._pending)
        self._pending = []
        return True

    @property
    def can_undo(self) -> bool:
        """Whether a checkpointed group is available to undo."""
        return bool(self._undo_stack)

    @property
    def can_redo(self) -> bool:
        """Whether an undone group is available to redo."""
        return bool(self._redo_stack)

    def undo(self) -> None:
        """Revert the latest checkpointed group."""
        if self._pending:
            raise TransactionError("checkpoint before undoing")
        if not self._undo_stack:
            raise TransactionError("nothing to undo")
        group = self._undo_stack.pop()
        self._replaying = True
        try:
            for change in reversed(group):
                _apply(self._store, change.inverted())
        finally:
            self._replaying = False
        self._redo_stack.append(group)

    def redo(self) -> None:
        """Re-apply the most recently undone group."""
        if not self._redo_stack:
            raise TransactionError("nothing to redo")
        group = self._redo_stack.pop()
        self._replaying = True
        try:
            for change in group:
                _apply(self._store, change)
        finally:
            self._replaying = False
        self._undo_stack.append(group)

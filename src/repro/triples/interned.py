"""An interned (dictionary-encoded) triple store.

Section 6: *"In applications of our SLIM Store technology beyond SLIMPad,
some data sets are quite large and we are developing alternative
implementation mechanisms."*  This is that alternative: node payloads are
interned once into integer ids, statements are stored as id-triples, and
the three field indexes map ids to statement sets.  Repeated URIs (the
common case — every triple repeats property names, every instance repeats
its subject) are stored once.

:class:`InternedTripleStore` implements the same core surface as
:class:`~repro.triples.store.TripleStore` (add/remove/match/select/len/
contains/iter/estimated_bytes), so TRIM-level code and the ablation bench
can swap it in.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import TripleNotFoundError
from repro.triples.triple import Node, Resource, Triple

_Key = Tuple[int, int, int]


class InternedTripleStore:
    """Set of triples over an interning node table."""

    def __init__(self) -> None:
        self._node_ids: Dict[Node, int] = {}
        self._nodes: List[Node] = []
        self._statements: Dict[_Key, int] = {}    # key -> insertion seq
        self._sequence = 0
        self._by_subject: Dict[int, Set[_Key]] = {}
        self._by_property: Dict[int, Set[_Key]] = {}
        self._by_value: Dict[int, Set[_Key]] = {}

    # -- interning ---------------------------------------------------------------

    def _intern(self, node: Node) -> int:
        node_id = self._node_ids.get(node)
        if node_id is None:
            node_id = len(self._nodes)
            self._node_ids[node] = node_id
            self._nodes.append(node)
        return node_id

    def _lookup(self, node: Node) -> Optional[int]:
        return self._node_ids.get(node)

    def _key_of(self, triple: Triple) -> _Key:
        return (self._intern(triple.subject), self._intern(triple.property),
                self._intern(triple.value))

    def _triple_of(self, key: _Key) -> Triple:
        subject = self._nodes[key[0]]
        prop = self._nodes[key[1]]
        value = self._nodes[key[2]]
        assert isinstance(subject, Resource) and isinstance(prop, Resource)
        return Triple(subject, prop, value)

    # -- mutation ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert; returns whether the triple was new."""
        key = self._key_of(triple)
        if key in self._statements:
            return False
        self._statements[key] = self._sequence
        self._sequence += 1
        self._by_subject.setdefault(key[0], set()).add(key)
        self._by_property.setdefault(key[1], set()).add(key)
        self._by_value.setdefault(key[2], set()).add(key)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many; returns how many were new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> None:
        """Delete; raises :class:`TripleNotFoundError` when absent.

        Interned nodes are retained (tombstone-free removal of statements;
        node-table compaction is a rebuild, as in real dictionary-encoded
        stores).
        """
        key = (self._lookup(triple.subject), self._lookup(triple.property),
               self._lookup(triple.value))
        if None in key or key not in self._statements:  # type: ignore[comparison-overlap]
            raise TripleNotFoundError(f"triple not in store: {triple}")
        del self._statements[key]  # type: ignore[arg-type]
        for index, node_id in ((self._by_subject, key[0]),
                               (self._by_property, key[1]),
                               (self._by_value, key[2])):
            bucket = index.get(node_id)
            if bucket is not None:
                bucket.discard(key)  # type: ignore[arg-type]
                if not bucket:
                    del index[node_id]

    def discard(self, triple: Triple) -> bool:
        """Delete if present; returns whether it was."""
        try:
            self.remove(triple)
            return True
        except TripleNotFoundError:
            return False

    # -- selection -------------------------------------------------------------------

    def match(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> Iterator[Triple]:
        """Yield triples matching the fixed fields (``None`` = wildcard)."""
        buckets: List[Set[_Key]] = []
        for node, index in ((subject, self._by_subject),
                            (property, self._by_property),
                            (value, self._by_value)):
            if node is None:
                continue
            node_id = self._lookup(node)
            if node_id is None:
                return
            buckets.append(index.get(node_id, set()))
        if not buckets:
            candidates: Iterable[_Key] = list(self._statements)
        else:
            candidates = set.intersection(*buckets) if len(buckets) > 1 \
                else buckets[0]
        for key in candidates:
            yield self._triple_of(key)

    def select(self, subject: Optional[Resource] = None,
               property: Optional[Resource] = None,
               value: Optional[Node] = None) -> List[Triple]:
        """Materialized :meth:`match`, in insertion order."""
        keys = [self._key_of(t) for t in self.match(subject, property, value)]
        keys.sort(key=self._statements.__getitem__)
        return [self._triple_of(key) for key in keys]

    # -- inspection ----------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._statements)

    def __contains__(self, triple: Triple) -> bool:
        key = (self._lookup(triple.subject), self._lookup(triple.property),
               self._lookup(triple.value))
        return None not in key and key in self._statements  # type: ignore[comparison-overlap]

    def __iter__(self) -> Iterator[Triple]:
        return (self._triple_of(key) for key in self._statements)

    def node_count(self) -> int:
        """How many distinct nodes the intern table holds."""
        return len(self._nodes)

    def estimated_bytes(self) -> int:
        """Footprint: each node's payload once + fixed per-statement cost.

        Comparable with ``TripleStore.estimated_bytes`` (same payload
        accounting, same per-entry overhead constants) so the ablation
        bench can report the savings of interning.
        """
        total = 0
        for node in self._nodes:
            if isinstance(node, Resource):
                total += len(node.uri)
            else:
                total += len(str(node.value))
            total += 16  # intern-table slot
        per_statement = 3 * 8 + 48   # three int ids + container slots
        total += len(self._statements) * per_statement
        total += 3 * len(self._statements) * 8  # index entries
        return total

"""An interned (dictionary-encoded) triple store.

Section 6: *"In applications of our SLIM Store technology beyond SLIMPad,
some data sets are quite large and we are developing alternative
implementation mechanisms."*  This is that alternative: node payloads are
interned once into integer ids, statements are stored as id-triples, and
the field indexes map ids to statement sets.  Repeated URIs (the common
case — every triple repeats property names, every instance repeats its
subject) are stored once.

:class:`InternedTripleStore` implements the same core surface as
:class:`~repro.triples.store.TripleStore` (add/restore/remove/match/select/
one/value_of/values_of/count/clear/len/contains/iter/estimated_bytes, the
:attr:`generation` counter, and per-mutation change listeners with
sequence numbers), so TRIM-level code, the query planner, cached views,
the undo log, the write-ahead log, and the ablation bench can swap it in.
The shared contract is pinned by ``tests/test_triples_store_parity.py``
— including the concurrency contract: lock-guarded mutations, lock-free
snapshot reads during bulk loads, and the opt-in copy-on-write
``concurrent=True`` mode (see the ``store`` module docstring and
DESIGN.md §10).  One invariant specific to this implementation: reader
threads never touch the intern table's write path — ``_intern`` runs
only under the store lock, readers use ``_lookup``.
"""

from __future__ import annotations

import threading
from typing import (Callable, Dict, Iterable, Iterator, List, Optional, Set,
                    Tuple)

from repro.errors import TransactionError, TripleNotFoundError
from repro.triples.store import AtomicListener, BulkLoad, ChangeListener

from repro.triples.triple import Literal, Node, Resource, Triple

_Key = Tuple[int, int, int]

_EMPTY: "frozenset[_Key]" = frozenset()


class InternedTripleStore:
    """Set of triples over an interning node table."""

    def __init__(self, concurrent: bool = False) -> None:
        self._node_ids: Dict[Node, int] = {}
        self._nodes: List[Node] = []
        self._statements: Dict[_Key, int] = {}    # key -> insertion seq
        self._sequence = 0
        self._generation = 0
        self._by_subject: Dict[int, Set[_Key]] = {}
        self._by_property: Dict[int, Set[_Key]] = {}
        self._by_value: Dict[int, Set[_Key]] = {}
        # Compound indexes over id pairs, mirroring TripleStore's.
        self._by_subject_property: Dict[Tuple[int, int], Set[_Key]] = {}
        self._by_property_value: Dict[Tuple[int, int], Set[_Key]] = {}
        self._listeners: List[ChangeListener] = []
        self.concurrent = concurrent
        self._lock = threading.RLock()
        # Bulk-load state, mirroring TripleStore's (see BulkLoad): pending
        # entries carry the original Triple so flush-time listener fan-out
        # never re-materializes nodes.  The map mirrors the list for O(1)
        # owner-thread membership and dedup.
        self._pending: Optional[List[Tuple[_Key, Triple, int]]] = None
        self._pending_map: Dict[_Key, int] = {}
        self._bulk_owner: Optional[int] = None
        self._bulk_seq_mark = 0
        self._atomic_depth = 0
        self._atomic_listeners: List[AtomicListener] = []

    # -- locking / atomic scopes ---------------------------------------------

    @property
    def lock(self) -> "threading.RLock":
        """The store's mutation lock (same contract as
        :attr:`TripleStore.lock`)."""
        return self._lock

    @property
    def in_atomic(self) -> bool:
        """Whether an atomic scope (bulk load or Batch) is open."""
        return self._atomic_depth > 0

    def begin_atomic(self) -> None:
        """Open an atomic scope (same contract as
        :meth:`TripleStore.begin_atomic`)."""
        with self._lock:
            self._atomic_depth += 1

    def end_atomic(self) -> None:
        """Close one atomic scope; fire atomic listeners at depth zero."""
        with self._lock:
            if self._atomic_depth <= 0:
                raise TransactionError("no atomic scope to end")
            self._atomic_depth -= 1
            fire = self._atomic_depth == 0
        if fire:
            self._fire_atomic_end()

    def add_atomic_listener(self, listener: AtomicListener) -> Callable[[], None]:
        """Register a callback for outermost atomic-scope exit (same
        contract as :meth:`TripleStore.add_atomic_listener`)."""
        with self._lock:
            self._atomic_listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                if listener in self._atomic_listeners:
                    self._atomic_listeners.remove(listener)

        return unsubscribe

    def _fire_atomic_end(self) -> None:
        for listener in list(self._atomic_listeners):
            listener()

    # -- bulk loading ------------------------------------------------------------

    def bulk(self) -> BulkLoad:
        """A deferred-indexing ingest context (see
        :class:`~repro.triples.store.BulkLoad`); same contract as
        :meth:`TripleStore.bulk`, pinned by the parity suite."""
        return BulkLoad(self)

    @property
    def in_bulk(self) -> bool:
        """Whether a :meth:`bulk` load is currently active."""
        return self._pending is not None

    def _begin_bulk(self) -> None:
        with self._lock:
            if self._pending is not None:
                raise TransactionError("bulk load already active on this store")
            self._pending = []
            self._pending_map = {}
            self._bulk_owner = threading.get_ident()
            self._bulk_seq_mark = self._sequence
            self._atomic_depth += 1

    def _end_bulk(self) -> None:
        with self._lock:
            self._flush_bulk()
            self._pending = None
            self._bulk_owner = None
            self._atomic_depth -= 1
            fire = self._atomic_depth == 0
        if fire:
            self._fire_atomic_end()

    def _abort_bulk(self) -> None:
        with self._lock:
            # Pending inserts never reached the statement map or indexes.
            # Aborted inserts keep their interned nodes — same tombstone-
            # free policy as remove(); the sequence counter rolls back.
            self._pending = None
            self._pending_map = {}
            self._bulk_owner = None
            self._sequence = self._bulk_seq_mark
            self._atomic_depth -= 1
            fire = self._atomic_depth == 0
        if fire:
            self._fire_atomic_end()

    def _is_bulk_owner(self) -> bool:
        return self._bulk_owner == threading.get_ident()

    def _read_barrier(self) -> None:
        """Owner-thread reads flush pending inserts first; other threads
        read the last-flush snapshot (see ``store._read_barrier``)."""
        if self._pending and self._is_bulk_owner():
            with self._lock:
                self._flush_bulk()

    def _flush_bulk(self) -> None:
        """Publish every pending insert: statement map first, then the
        indexes, then generation and listener fan-out — in insertion
        order.  Callers hold the store lock.  (Same publication ordering
        rationale as ``TripleStore._flush_bulk``.)"""
        pending = self._pending
        if not pending:
            self._bulk_seq_mark = self._sequence
            return
        self._pending = []
        self._pending_map = {}
        statements = self._statements
        tail = next(reversed(statements.values())) if statements else -1
        need_sort = False
        for key, _, sequence in pending:
            statements[key] = sequence
            if sequence < tail:
                need_sort = True
            else:
                tail = sequence
        if need_sort:
            self._statements = dict(
                sorted(statements.items(), key=lambda item: item[1]))
        if self.concurrent:
            self._publish_indexed(pending)
        else:
            by_s, by_p, by_v = (self._by_subject, self._by_property,
                                self._by_value)
            by_sp, by_pv = self._by_subject_property, self._by_property_value
            for key, _, _ in pending:
                by_s.setdefault(key[0], set()).add(key)
                by_p.setdefault(key[1], set()).add(key)
                by_v.setdefault(key[2], set()).add(key)
                by_sp.setdefault((key[0], key[1]), set()).add(key)
                by_pv.setdefault((key[1], key[2]), set()).add(key)
        self._generation += len(pending)
        self._bulk_seq_mark = self._sequence
        if self._listeners:
            for _, t, sequence in pending:
                self._notify("add", t, sequence)

    def _publish_indexed(self, pending: List[Tuple[_Key, Triple, int]]) -> None:
        """Copy-on-write index maintenance for ``concurrent=True`` (same
        atomic bucket publication as ``TripleStore._publish_indexed``)."""
        for index, key_of in (
                (self._by_subject, lambda k: k[0]),
                (self._by_property, lambda k: k[1]),
                (self._by_value, lambda k: k[2]),
                (self._by_subject_property, lambda k: (k[0], k[1])),
                (self._by_property_value, lambda k: (k[1], k[2]))):
            additions: Dict = {}
            for key, _, _ in pending:
                additions.setdefault(key_of(key), []).append(key)
            for index_key, keys in additions.items():
                old = index.get(index_key)
                index[index_key] = set(keys) if old is None else old.union(keys)

    # -- interning ---------------------------------------------------------------

    def _intern(self, node: Node) -> int:
        # Mutators only, under the store lock: the id allocation is a
        # check-then-act and the _nodes append must pair with it.
        node_id = self._node_ids.get(node)
        if node_id is None:
            node_id = len(self._nodes)
            self._nodes.append(node)
            self._node_ids[node] = node_id
        return node_id

    def _lookup(self, node: Node) -> Optional[int]:
        return self._node_ids.get(node)

    def _key_of(self, triple: Triple) -> _Key:
        return (self._intern(triple.subject), self._intern(triple.property),
                self._intern(triple.value))

    def _triple_of(self, key: _Key) -> Triple:
        subject = self._nodes[key[0]]
        prop = self._nodes[key[1]]
        value = self._nodes[key[2]]
        assert isinstance(subject, Resource) and isinstance(prop, Resource)
        return Triple(subject, prop, value)

    # -- mutation ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert; returns whether the triple was new."""
        with self._lock:
            key = self._key_of(triple)
            if key in self._statements:
                return False
            if self._pending is not None:
                if key in self._pending_map:
                    return False
                sequence = self._sequence
                self._sequence += 1
                self._pending_map[key] = sequence
                self._pending.append((key, triple, sequence))
                return True
            sequence = self._insert_key(key)
            self._notify("add", triple, sequence)
            return True

    def restore(self, triple: Triple, sequence: int) -> bool:
        """Insert at a specific insertion-sequence position.

        Same contract as :meth:`TripleStore.restore`: re-adds the triple
        with its original sequence number so ordering survives undo/redo
        and WAL replay; a no-op when already present.
        """
        with self._lock:
            key = self._key_of(triple)
            if key in self._statements:
                return False
            if self._pending is not None:
                if key in self._pending_map:
                    return False
                self._pending_map[key] = sequence
                self._pending.append((key, triple, sequence))
                self._sequence = max(self._sequence, sequence + 1)
                return True
            out_of_order = bool(self._statements) and \
                sequence < next(reversed(self._statements.values()))
            self._insert_key(key, sequence)
            if out_of_order:
                self._statements = dict(
                    sorted(self._statements.items(), key=lambda item: item[1]))
            self._notify("add", triple, sequence)
            return True

    def restore_rows(self, nodes: List[Node],
                     rows: Iterable[Tuple[int, int, int, int]]) -> int:
        """Bulk-restore dictionary-encoded rows (binary snapshot fast path).

        The v3 snapshot loader hands over its decoded string dictionary
        and integer ``(subject-id, property-id, value-id, sequence)``
        rows wholesale; the dictionary maps straight into the intern
        table (on a fresh store snapshot ids and intern ids coincide, so
        no per-triple node hashing happens at all).  All-or-nothing: the
        statement map and all five indexes are built in local containers
        and installed only after every row has decoded — a bad row (id
        out of bounds, literal where a resource belongs) raises
        ``IndexError``/``ValueError`` and leaves the store untouched.

        Only valid on an empty store with no active bulk load and no
        change listeners (recovery runs before any attach); returns the
        number of statements restored.
        """
        with self._lock:
            if self._statements or self._pending is not None:
                raise TransactionError(
                    "restore_rows requires an empty, idle store")
            if self._listeners:
                raise TransactionError(
                    "restore_rows cannot notify change listeners")
            ids = [self._intern(node) for node in nodes]
            resource = [isinstance(node, Resource) for node in nodes]
            statements: Dict[_Key, int] = {}
            by_s: Dict[int, Set[_Key]] = {}
            by_p: Dict[int, Set[_Key]] = {}
            by_v: Dict[int, Set[_Key]] = {}
            by_sp: Dict[Tuple[int, int], Set[_Key]] = {}
            by_pv: Dict[Tuple[int, int], Set[_Key]] = {}
            tail = -1
            top = -1
            need_sort = False
            for sid, pid, vid, sequence in rows:
                if not (resource[sid] and resource[pid]):
                    raise ValueError(
                        "triple subject/property must be resources")
                key = (ids[sid], ids[pid], ids[vid])
                statements[key] = sequence
                if sequence < tail:
                    need_sort = True
                else:
                    tail = sequence
                if sequence > top:
                    top = sequence
                by_s.setdefault(key[0], set()).add(key)
                by_p.setdefault(key[1], set()).add(key)
                by_v.setdefault(key[2], set()).add(key)
                by_sp.setdefault((key[0], key[1]), set()).add(key)
                by_pv.setdefault((key[1], key[2]), set()).add(key)
            if need_sort:
                statements = dict(
                    sorted(statements.items(), key=lambda item: item[1]))
            self._statements = statements
            self._by_subject = by_s
            self._by_property = by_p
            self._by_value = by_v
            self._by_subject_property = by_sp
            self._by_property_value = by_pv
            self._sequence = max(self._sequence, top + 1)
            self._generation += len(statements)
            return len(statements)

    def sequence_of(self, triple: Triple) -> int:
        """The insertion-sequence number of a present triple (else raises).

        On the bulk-owner thread, pending (unflushed) inserts resolve too.
        """
        key = (self._lookup(triple.subject), self._lookup(triple.property),
               self._lookup(triple.value))
        if None not in key:
            sequence = self._statements.get(key)  # type: ignore[arg-type]
            if sequence is not None:
                return sequence
            if self._pending is not None and self._is_bulk_owner():
                sequence = self._pending_map.get(key)  # type: ignore[arg-type]
                if sequence is not None:
                    return sequence
        raise TripleNotFoundError(f"triple not in store: {triple}")

    def _insert_key(self, key: _Key, sequence: Optional[int] = None) -> int:
        if sequence is None:
            sequence = self._sequence
        self._statements[key] = sequence
        self._sequence = max(self._sequence, sequence + 1)
        self._generation += 1
        if self.concurrent:
            for index, index_key in ((self._by_subject, key[0]),
                                     (self._by_property, key[1]),
                                     (self._by_value, key[2]),
                                     (self._by_subject_property,
                                      (key[0], key[1])),
                                     (self._by_property_value,
                                      (key[1], key[2]))):
                old = index.get(index_key)
                index[index_key] = {key} if old is None else old | {key}
            return sequence
        self._by_subject.setdefault(key[0], set()).add(key)
        self._by_property.setdefault(key[1], set()).add(key)
        self._by_value.setdefault(key[2], set()).add(key)
        self._by_subject_property.setdefault((key[0], key[1]), set()).add(key)
        self._by_property_value.setdefault((key[1], key[2]), set()).add(key)
        return sequence

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many; returns how many were new (batch fast path).

        Listeners (when present) see every insertion individually and in
        order, exactly as N :meth:`add` calls would notify them.
        """
        with self._lock:
            statements = self._statements
            key_of = self._key_of
            if self._pending is not None:
                pending = self._pending
                pending_map = self._pending_map
                added = 0
                for t in triples:
                    key = key_of(t)
                    if key in statements or key in pending_map:
                        continue
                    sequence = self._sequence
                    pending_map[key] = sequence
                    pending.append((key, t, sequence))
                    self._sequence += 1
                    added += 1
                return added
            notify = self._notify if self._listeners else None
            added = 0
            for t in triples:
                key = key_of(t)
                if key in statements:
                    continue
                sequence = self._insert_key(key)
                added += 1
                if notify is not None:
                    notify("add", t, sequence)
            return added

    def remove(self, triple: Triple) -> None:
        """Delete; raises :class:`TripleNotFoundError` when absent.

        Interned nodes are retained (tombstone-free removal of statements;
        node-table compaction is a rebuild, as in real dictionary-encoded
        stores).
        """
        with self._lock:
            if self._pending:
                self._flush_bulk()
            key = (self._lookup(triple.subject), self._lookup(triple.property),
                   self._lookup(triple.value))
            if None in key or key not in self._statements:  # type: ignore[comparison-overlap]
                raise TripleNotFoundError(f"triple not in store: {triple}")
            sequence = self._statements.pop(key)  # type: ignore[arg-type]
            self._generation += 1
            cow = self.concurrent
            for index, index_key in ((self._by_subject, key[0]),
                                     (self._by_property, key[1]),
                                     (self._by_value, key[2]),
                                     (self._by_subject_property, (key[0], key[1])),
                                     (self._by_property_value, (key[1], key[2]))):
                self._bucket_discard(index, index_key, key, cow)
            self._notify("remove", triple, sequence)

    @staticmethod
    def _bucket_discard(index: Dict, index_key, key, cow: bool) -> None:
        bucket = index.get(index_key)
        if bucket is None or key not in bucket:
            return
        if len(bucket) == 1:
            del index[index_key]
        elif cow:
            # Publish a rebuilt bucket atomically; the old set stays
            # intact for any reader already iterating it.
            index[index_key] = bucket - {key}
        else:
            bucket.discard(key)

    def discard(self, triple: Triple) -> bool:
        """Delete if present; returns whether it was."""
        with self._lock:
            try:
                self.remove(triple)
                return True
            except TripleNotFoundError:
                return False

    def remove_matching(self, subject: Optional[Resource] = None,
                        property: Optional[Resource] = None,
                        value: Optional[Node] = None) -> int:
        """Delete every triple matching the selection; return the count.

        Batched removal fast path, mirroring
        :meth:`TripleStore.remove_matching`: victim keys are snapshotted
        once (match iterates live buckets), then dropped with bound
        locals.  Listeners still see every removal individually.
        """
        with self._lock:
            if self._pending:
                self._flush_bulk()
            victims = list(self._match_keys(subject, property, value))
            if not victims:
                return 0
            statements = self._statements
            cow = self.concurrent
            notify = self._notify if self._listeners else None
            for key in victims:
                sequence = statements.pop(key)
                for index, index_key in ((self._by_subject, key[0]),
                                         (self._by_property, key[1]),
                                         (self._by_value, key[2]),
                                         (self._by_subject_property,
                                          (key[0], key[1])),
                                         (self._by_property_value,
                                          (key[1], key[2]))):
                    self._bucket_discard(index, index_key, key, cow)
                self._generation += 1
                if notify is not None:
                    notify("remove", self._triple_of(key), sequence)
            return len(victims)

    def clear(self) -> None:
        """Delete every statement in one pass (intern table retained).

        Listeners are notified once per removed triple in insertion order,
        matching :meth:`TripleStore.clear`.
        """
        with self._lock:
            if self._pending:
                self._flush_bulk()
            count = len(self._statements)
            if not count:
                return
            victims = ([(self._triple_of(key), seq)
                        for key, seq in self._statements.items()]
                       if self._listeners else None)
            self._statements = {}
            self._by_subject = {}
            self._by_property = {}
            self._by_value = {}
            self._by_subject_property = {}
            self._by_property_value = {}
            self._generation += count
            if victims is not None:
                for triple, sequence in victims:
                    self._notify("remove", triple, sequence)

    # -- selection -------------------------------------------------------------------

    def match(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> Iterator[Triple]:
        """Yield triples matching the fixed fields (``None`` = wildcard).

        During a :meth:`bulk` load the owner thread flushes pending
        inserts first; other threads read the last-flush snapshot.  The
        read path interns nothing — unknown nodes simply match nothing.
        """
        self._read_barrier()
        for key in self._match_keys(subject, property, value):
            yield self._triple_of(key)

    def _match_keys(self, subject: Optional[Resource],
                    property: Optional[Resource],
                    value: Optional[Node]) -> Iterator[_Key]:
        """Yield the statement keys matching the fixed fields."""
        ids = []
        for node in (subject, property, value):
            if node is None:
                ids.append(None)
                continue
            node_id = self._lookup(node)
            if node_id is None:
                return
            ids.append(node_id)
        sid, pid, vid = ids
        if sid is not None and pid is not None and vid is not None:
            key = (sid, pid, vid)
            if key in self._statements:
                yield key
            return
        if sid is not None and pid is not None:
            candidates: Iterable[_Key] = \
                self._by_subject_property.get((sid, pid), _EMPTY)
        elif pid is not None and vid is not None:
            candidates = self._by_property_value.get((pid, vid), _EMPTY)
        elif sid is not None and vid is not None:
            subj_bucket = self._by_subject.get(sid, _EMPTY)
            val_bucket = self._by_value.get(vid, _EMPTY)
            small, big = ((subj_bucket, val_bucket)
                          if len(subj_bucket) <= len(val_bucket)
                          else (val_bucket, subj_bucket))
            candidates = (k for k in small if k in big)
        elif sid is not None:
            candidates = self._by_subject.get(sid, _EMPTY)
        elif pid is not None:
            candidates = self._by_property.get(pid, _EMPTY)
        elif vid is not None:
            candidates = self._by_value.get(vid, _EMPTY)
        elif self.concurrent or self._pending is not None:
            candidates = list(self._statements)
        else:
            candidates = self._statements.keys()
        yield from candidates

    def select(self, subject: Optional[Resource] = None,
               property: Optional[Resource] = None,
               value: Optional[Node] = None) -> List[Triple]:
        """Materialized :meth:`match`, in insertion order.

        Works on statement keys directly (no re-interning of results, and
        nothing on this path writes the intern table).
        """
        self._read_barrier()
        keys = list(self._match_keys(subject, property, value))
        statements = self._statements
        if self.concurrent:
            keys.sort(key=lambda k: statements.get(k, -1))
        else:
            keys.sort(key=statements.__getitem__)
        return [self._triple_of(key) for key in keys]

    def one(self, subject: Optional[Resource] = None,
            property: Optional[Resource] = None,
            value: Optional[Node] = None) -> Optional[Triple]:
        """The single matching triple, ``None`` if none, LookupError if many."""
        found: Optional[Triple] = None
        for triple in self.match(subject, property, value):
            if found is not None:
                raise LookupError(
                    f"expected at most one triple for ({subject}, {property}, {value})")
            found = triple
        return found

    def value_of(self, subject: Resource, property: Resource) -> Optional[Node]:
        """The value of a single-valued property, or ``None``."""
        hit = self.one(subject=subject, property=property)
        return None if hit is None else hit.value

    def literal_of(self, subject: Resource, property: Resource):
        """The Python value of a single-valued literal property, or ``None``."""
        node = self.value_of(subject, property)
        if node is None:
            return None
        if not isinstance(node, Literal):
            raise LookupError(f"{subject} {property} holds a resource, not a literal")
        return node.value

    def values_of(self, subject: Resource, property: Resource) -> List[Node]:
        """All values of a property on *subject*, in insertion order."""
        return [t.value for t in self.select(subject=subject, property=property)]

    # -- statistics (read by the query planner) ----------------------------------

    @property
    def generation(self) -> int:
        """Monotonic mutation counter: bumps on every add and remove."""
        return self._generation

    def generation_of(self, subject: Optional[Resource] = None) -> int:
        """Read-barriered generation token (see
        :meth:`TripleStore.generation_of`); the subject is ignored on an
        unpartitioned store."""
        self._read_barrier()
        return self._generation

    @property
    def generation_vector(self) -> Tuple[int, ...]:
        """One-tuple generation stamp (see
        :attr:`TripleStore.generation_vector`)."""
        self._read_barrier()
        return (self._generation,)

    @property
    def sequence_ceiling(self) -> int:
        """The next insertion-sequence number this store would hand out
        (see :attr:`TripleStore.sequence_ceiling`)."""
        return self._sequence

    def count(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> int:
        """Matching-triple count from index bucket sizes, without scanning.

        Same contract as :meth:`TripleStore.count`: exact for every indexed
        combination, an upper-bound estimate (smaller single-field bucket)
        for the uncovered ``(subject, value)`` pair.
        """
        self._read_barrier()
        ids = []
        for node in (subject, property, value):
            if node is None:
                ids.append(None)
                continue
            node_id = self._lookup(node)
            if node_id is None:
                return 0
            ids.append(node_id)
        sid, pid, vid = ids
        if sid is not None and pid is not None and vid is not None:
            return 1 if (sid, pid, vid) in self._statements else 0
        if sid is not None and pid is not None:
            return len(self._by_subject_property.get((sid, pid), _EMPTY))
        if pid is not None and vid is not None:
            return len(self._by_property_value.get((pid, vid), _EMPTY))
        if sid is not None and vid is not None:
            return min(len(self._by_subject.get(sid, _EMPTY)),
                       len(self._by_value.get(vid, _EMPTY)))
        if sid is not None:
            return len(self._by_subject.get(sid, _EMPTY))
        if pid is not None:
            return len(self._by_property.get(pid, _EMPTY))
        if vid is not None:
            return len(self._by_value.get(vid, _EMPTY))
        return len(self._statements)

    # -- inspection ----------------------------------------------------------------------

    def __len__(self) -> int:
        n = len(self._statements)
        if self._pending is not None and self._is_bulk_owner():
            n += len(self._pending_map)
        return n

    def __contains__(self, triple: Triple) -> bool:
        key = (self._lookup(triple.subject), self._lookup(triple.property),
               self._lookup(triple.value))
        if None in key:
            return False
        if key in self._statements:  # type: ignore[comparison-overlap]
            return True
        return (self._pending is not None and self._is_bulk_owner()
                and key in self._pending_map)

    def __iter__(self) -> Iterator[Triple]:
        self._read_barrier()
        if self.concurrent or self._pending is not None:
            return (self._triple_of(key) for key in list(self._statements))
        return (self._triple_of(key) for key in self._statements)

    def _scan_keys(self) -> Iterable[_Key]:
        """The statement map's keys, snapshotted when a writer may race."""
        self._read_barrier()
        if self.concurrent or self._pending is not None:
            return list(self._statements)
        return self._statements

    def subjects(self) -> List[Resource]:
        """Distinct subjects, in first-appearance order."""
        seen: Dict[int, None] = {}
        for key in self._scan_keys():
            seen.setdefault(key[0], None)
        return [self._nodes[node_id] for node_id in seen]  # type: ignore[misc]

    def properties(self) -> List[Resource]:
        """Distinct properties, in first-appearance order."""
        seen: Dict[int, None] = {}
        for key in self._scan_keys():
            seen.setdefault(key[1], None)
        return [self._nodes[node_id] for node_id in seen]  # type: ignore[misc]

    def node_count(self) -> int:
        """How many distinct nodes the intern table holds."""
        return len(self._nodes)

    def estimated_bytes(self) -> int:
        """Footprint: each node's payload once + fixed per-statement cost.

        Comparable with ``TripleStore.estimated_bytes`` (same payload
        accounting, same per-entry overhead constants, same five index
        entries per statement) so the ablation bench can report the savings
        of interning.
        """
        total = 0
        for node in list(self._nodes):
            if isinstance(node, Resource):
                total += len(node.uri)
            else:
                total += len(str(node.value))
            total += 16  # intern-table slot
        statement_count = len(self._statements)
        per_statement = 3 * 8 + 48   # three int ids + container slots
        total += statement_count * per_statement
        total += 5 * statement_count * 8  # index entries (3 single + 2 compound)
        return total

    # -- listeners ----------------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> Callable[[], None]:
        """Register a change listener; returns an unsubscribe callable.

        Same contract as :meth:`TripleStore.add_listener`: called after
        each mutation as ``listener(action, triple, sequence)``; pending
        bulk inserts are flushed before the listener attaches.
        """
        with self._lock:
            if self._pending:
                self._flush_bulk()
            self._listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                if listener in self._listeners:
                    self._listeners.remove(listener)

        return unsubscribe

    def _notify(self, action: str, triple: Triple, sequence: int) -> None:
        for listener in list(self._listeners):
            listener(action, triple, sequence)

"""Generation-keyed memoization for repeated triple-store reads.

The dominant SLIMPad traffic shape is repeated reads — the same
``select()`` patterns and the same conjunctive queries, over a store that
mutates in bursts (PAPER.md section 4-5).  PR-1 gave every store a
monotonic :attr:`~repro.triples.store.TripleStore.generation` counter
whose contract is *equal generations guarantee identical contents*; that
makes the counter a ready-made invalidation token, and this module turns
it into a bounded result cache.

Keying.  An entry is keyed on the canonical read — ``('select', s, p, v)``
or a :meth:`~repro.triples.query.Query.cache_key` — and stamped with a
*generation token* captured from the store:

* subject-bound reads on a sharded store use
  :meth:`~repro.triples.sharded.ShardedTripleStore.generation_of`, the
  owning shard's counter, so a write to shard 2 never evicts entries
  routed to shard 0;
* unbound reads use :attr:`generation_vector`, the tuple of per-shard
  counters (a one-tuple on plain stores) — any write anywhere changes it,
  which is exactly as precise as a scatter-gather read can be.

Snapshot safety.  The token is read *before* the fill computes and again
*after*; the entry is stored only when the two agree.  A bulk-load owner's
first read flushes pending inserts (bumping the generation between the
two reads), so a result computed from a half-pending view is returned to
its caller but never pinned.  Reader threads during a concurrent ingest
see a pinned last-flush generation and pinned last-flush contents, so
their fills are consistent snapshots and cache normally.  Token reads go
through the store's read barrier, so a bulk owner's *hit* path also
flushes first — read-your-writes survives memoization.

Bounds.  LRU over entries with three caps: entry count, total cached
items, and a per-result item ceiling (oversize results are returned but
never stored, so one huge scan cannot sweep the cache).  Results are
stored privately and copied out on every hit — callers may mutate what
they get back.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter
from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.triples.triple import Resource

__all__ = ["GenerationCache"]


def _copy_rows(rows: List[dict]) -> List[dict]:
    return [dict(row) for row in rows]


class GenerationCache:
    """A bounded LRU of read results, invalidated by generation tokens.

    ::

        cache = GenerationCache(store)
        result = cache.get(('select', s, p, v),
                           lambda: store.select(subject=s, property=p, value=v),
                           subject=s)
        cache.stats()   # hits / misses / evictions / invalidations / ...

    The cache never serves a result whose token disagrees with the
    store's current one, so stale reads are impossible; the worst a race
    can cause is a skipped fill (counted under ``racy_fills_skipped``).

    Lock order: the cache lock is leaf-level — fills (which may take the
    store lock via the read barrier or the computation) always run
    *outside* it.
    """

    def __init__(self, store: Any, max_entries: int = 1024,
                 max_items: int = 200_000,
                 max_result_items: int = 25_000) -> None:
        self._store = store
        self._lock = threading.Lock()
        # key -> (token, result, item_count); insertion order == LRU order.
        self._entries: "OrderedDict[Hashable, tuple]" = OrderedDict()
        self._items = 0
        self.max_entries = max_entries
        self.max_items = max_items
        self.max_result_items = max_result_items
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._fills = 0
        self._racy_fills_skipped = 0
        self._oversize_skipped = 0
        self._uncacheable = 0
        self._fill_seconds = 0.0

    # -- tokens ---------------------------------------------------------------

    def _token(self, subject: Optional[Resource]) -> Optional[Hashable]:
        """The invalidation stamp for a read routed by *subject*.

        Subject-bound reads stamp with the owning shard's counter;
        unbound reads stamp with the whole generation vector.  A store
        exposing neither (a duck-typed stand-in) yields ``None`` and the
        read is computed fresh every time.
        """
        store = self._store
        if subject is not None:
            generation_of = getattr(store, "generation_of", None)
            if generation_of is not None:
                return generation_of(subject)
        vector = getattr(store, "generation_vector", None)
        if vector is not None:
            return vector
        return getattr(store, "generation", None)

    # -- the one entry point --------------------------------------------------

    def get(self, key: Hashable, compute: Callable[[], list],
            subject: Optional[Resource] = None,
            copy: Callable[[list], list] = list) -> list:
        """Return the cached result for *key*, filling via *compute*.

        *subject* routes the generation token (see :meth:`_token`);
        *copy* produces the caller-safe copy (``list`` for triple lists,
        a row-copying callable for query bindings).
        """
        token = self._token(subject)
        if token is None:
            with self._lock:
                self._uncacheable += 1
            return compute()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry[0] == token:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return copy(entry[1])
                # Stale: the store moved on since this entry was filled.
                self._invalidations += 1
                self._items -= entry[2]
                del self._entries[key]
            else:
                self._misses += 1
        started = perf_counter()
        result = compute()
        elapsed = perf_counter() - started
        token_after = self._token(subject)
        with self._lock:
            self._fill_seconds += elapsed
            if token_after != token:
                # A writer (or our own bulk flush) raced the fill; the
                # result may mix states across the flush, so hand it back
                # but never pin it to a token it does not represent.
                self._racy_fills_skipped += 1
                return result
            item_count = len(result)
            if item_count > self.max_result_items:
                self._oversize_skipped += 1
                return result
            stale = self._entries.pop(key, None)
            if stale is not None:
                self._items -= stale[2]
            self._entries[key] = (token, result, item_count)
            self._items += item_count
            self._fills += 1
            while self._entries and (len(self._entries) > self.max_entries
                                     or self._items > self.max_items):
                _, (_, _, evicted_items) = self._entries.popitem(last=False)
                self._items -= evicted_items
                self._evictions += 1
        return copy(result)

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._items = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- metrics --------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Counters for the metrics surface (``TrimManager.cache_stats``)."""
        with self._lock:
            lookups = self._hits + self._misses + self._invalidations
            fills = self._fills + self._racy_fills_skipped \
                + self._oversize_skipped
            return {
                "entries": len(self._entries),
                "items": self._items,
                "max_entries": self.max_entries,
                "max_items": self.max_items,
                "hits": self._hits,
                "misses": self._misses,
                "invalidations": self._invalidations,
                "evictions": self._evictions,
                "fills": self._fills,
                "racy_fills_skipped": self._racy_fills_skipped,
                "oversize_skipped": self._oversize_skipped,
                "uncacheable": self._uncacheable,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
                "fill_seconds": self._fill_seconds,
                "avg_fill_us": (self._fill_seconds / fills * 1e6)
                               if fills else 0.0,
            }

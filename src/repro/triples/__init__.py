"""TRIM — the Triple Manager and its triple store (paper Section 4.4).

Public surface:

- :class:`Triple`, :class:`Resource`, :class:`Literal` — the data model
- :class:`TripleStore` — indexed store with selection queries
- :class:`TrimManager` — the façade DMIs program against
- :class:`Query`, :class:`Pattern`, :class:`Var` — conjunctive queries
- :class:`View` — reachability views
- :mod:`repro.triples.persistence` — XML save/load, atomic snapshots
- :class:`Batch`, :class:`UndoLog` — grouped changes and undo/redo
- :class:`WriteAheadLog`, :class:`Durability`, :func:`recover` —
  crash-safe persistence (:mod:`repro.triples.wal`)
- :class:`ShardedTripleStore`, :class:`ShardedDurability`,
  :func:`recover_sharded` — hash-partitioned stores with two-phase
  multi-shard commit (:mod:`repro.triples.sharded`)
"""

from repro.triples.interned import InternedTripleStore
from repro.triples.namespaces import (
    RDF,
    RDFS,
    SLIM,
    Namespace,
    NamespaceRegistry,
)
from repro.triples.query import Pattern, PlanStep, Query, Var
from repro.triples.sharded import (ShardedDurability, ShardedRecoveryResult,
                                   ShardedTripleStore, recover_sharded,
                                   shard_of)
from repro.triples.store import TripleStore
from repro.triples.transactions import Batch, Change, UndoLog
from repro.triples.trim import TrimManager
from repro.triples.triple import Literal, Node, Resource, Triple, triple
from repro.triples.views import View, reachable_resources, reachable_triples
from repro.triples.wal import (Durability, RecoveryResult, WriteAheadLog,
                               recover)

__all__ = [
    "InternedTripleStore",
    "RDF",
    "RDFS",
    "SLIM",
    "Namespace",
    "NamespaceRegistry",
    "Pattern",
    "PlanStep",
    "Query",
    "Var",
    "TripleStore",
    "Batch",
    "Change",
    "UndoLog",
    "TrimManager",
    "Literal",
    "Node",
    "Resource",
    "Triple",
    "triple",
    "View",
    "reachable_resources",
    "reachable_triples",
    "Durability",
    "RecoveryResult",
    "WriteAheadLog",
    "recover",
    "ShardedTripleStore",
    "ShardedDurability",
    "ShardedRecoveryResult",
    "recover_sharded",
    "shard_of",
]

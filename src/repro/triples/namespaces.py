"""Namespace management for qualified resource names.

Resources in the SLIM Store use qualified names (``slim:Bundle``,
``rdf:type``).  A :class:`NamespaceRegistry` maps prefixes to base URIs so
stores can be serialized with full URIs and read back with compact names.

Three registries' worth of well-known names ship with the library:

- ``rdf``  — the RDF core vocabulary (``rdf:type``)
- ``rdfs`` — RDF Schema (``rdfs:Class``, ``rdfs:subClassOf``, …), used to
  render the metamodel per Section 4.3
- ``slim`` — this library's vocabulary for the metamodel and for SLIMPad
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterator, Tuple

from repro.errors import NamespaceError
from repro.triples.triple import Resource

_PREFIX_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")

#: Well-known base URIs.
RDF_URI = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
RDFS_URI = "http://www.w3.org/2000/01/rdf-schema#"
SLIM_URI = "http://repro.example/slim#"


class Namespace:
    """A prefix bound to a base URI; indexing yields qualified Resources.

    ::

        slim = Namespace('slim', SLIM_URI)
        slim['Bundle']       # Resource('slim:Bundle')
        slim.expand('Bundle')  # 'http://repro.example/slim#Bundle'
    """

    def __init__(self, prefix: str, uri: str) -> None:
        if not _PREFIX_RE.match(prefix):
            raise NamespaceError(f"invalid namespace prefix: {prefix!r}")
        if not uri:
            raise NamespaceError("namespace uri must be non-empty")
        self.prefix = prefix
        self.uri = uri

    def __getitem__(self, local: str) -> Resource:
        if not local:
            raise NamespaceError("local name must be non-empty")
        return Resource(f"{self.prefix}:{local}")

    def expand(self, local: str) -> str:
        """Return the full URI for *local*."""
        return self.uri + local

    def __repr__(self) -> str:
        return f"Namespace({self.prefix!r}, {self.uri!r})"


class NamespaceRegistry:
    """Bidirectional prefix <-> URI table.

    Registering the same prefix twice with a different URI is an error;
    re-registering identically is a no-op (idempotent loads).

    Thread-safe: parallel shard recovery registers each snapshot's
    declarations into one shared registry from pool workers, so the
    check-then-act in :meth:`register` runs under an internal lock.
    Reads stay lock-free (dict reads are atomic; :meth:`__iter__`
    snapshots the value list).
    """

    def __init__(self) -> None:
        self._by_prefix: Dict[str, Namespace] = {}
        self._register_lock = threading.Lock()

    @classmethod
    def with_defaults(cls) -> "NamespaceRegistry":
        """A registry pre-loaded with ``rdf``, ``rdfs`` and ``slim``."""
        registry = cls()
        registry.register("rdf", RDF_URI)
        registry.register("rdfs", RDFS_URI)
        registry.register("slim", SLIM_URI)
        return registry

    def register(self, prefix: str, uri: str) -> Namespace:
        """Bind *prefix* to *uri*, returning the :class:`Namespace`."""
        with self._register_lock:
            existing = self._by_prefix.get(prefix)
            if existing is not None:
                if existing.uri != uri:
                    raise NamespaceError(
                        f"prefix {prefix!r} already bound to {existing.uri!r}")
                return existing
            namespace = Namespace(prefix, uri)
            self._by_prefix[prefix] = namespace
            return namespace

    def get(self, prefix: str) -> Namespace:
        """Return the namespace for *prefix*; raise if unregistered."""
        try:
            return self._by_prefix[prefix]
        except KeyError:
            raise NamespaceError(f"unregistered namespace prefix: {prefix!r}") from None

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._by_prefix

    def __iter__(self) -> Iterator[Namespace]:
        return iter(list(self._by_prefix.values()))

    def expand(self, qname: str) -> str:
        """Expand ``'slim:Bundle'`` to its full URI.

        Names without a registered prefix pass through unchanged — plain
        generated ids (``bundle-000001``) are legal resource names.
        """
        prefix, local = _split_qname(qname)
        if prefix is not None and prefix in self._by_prefix:
            return self._by_prefix[prefix].expand(local)
        return qname

    def compact(self, uri: str) -> str:
        """Compact a full URI back to a qname when a prefix matches."""
        for namespace in list(self._by_prefix.values()):
            if uri.startswith(namespace.uri):
                local = uri[len(namespace.uri):]
                if local:
                    return f"{namespace.prefix}:{local}"
        return uri


def _split_qname(qname: str) -> Tuple["str | None", str]:
    """Split ``'slim:Bundle'`` into ``('slim', 'Bundle')``.

    Names that are not prefix-shaped (no colon, or a colon inside a URI)
    return ``(None, qname)``.
    """
    if ":" not in qname:
        return None, qname
    prefix, local = qname.split(":", 1)
    if _PREFIX_RE.match(prefix) and "/" not in local:
        return prefix, local
    return None, qname


#: Module-level namespaces most code imports directly.
RDF = Namespace("rdf", RDF_URI)
RDFS = Namespace("rdfs", RDFS_URI)
SLIM = Namespace("slim", SLIM_URI)

"""Query over the triple store.

TRIM's built-in query is single-pattern *selection* (fix any subset of the
three fields); that lives on :class:`~repro.triples.store.TripleStore`
itself.  Section 6 lists *"augmenting such interfaces with query
capabilities, in addition to the current navigational access"* as current
work — this module implements that extension: a small conjunctive query
engine with named variables and hash-join-free nested-loop evaluation with
binding propagation.

::

    q = Query([
        Pattern(Var('b'), SLIM['bundleContent'], Var('s')),
        Pattern(Var('s'), SLIM['scrapName'], Literal('K+ 3.9')),
    ])
    for binding in q.run(store):
        binding['b']   # the bundle Resource containing that scrap
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import QueryError
from repro.triples.store import TripleStore
from repro.triples.triple import Literal, Node, Resource, Triple


@dataclass(frozen=True)
class Var:
    """A named query variable.  Equal names denote the same variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("variable name must be non-empty")

    def __str__(self) -> str:
        return f"?{self.name}"


#: A pattern term: a concrete node, a variable, or None (anonymous wildcard).
Term = Union[Resource, Literal, Var, None]


@dataclass(frozen=True)
class Pattern:
    """One triple pattern of a conjunctive query."""

    subject: Term
    property: Term
    value: Term

    def __post_init__(self) -> None:
        if isinstance(self.subject, Literal):
            raise QueryError("pattern subject cannot be a literal")
        if isinstance(self.property, Literal):
            raise QueryError("pattern property cannot be a literal")

    def variables(self) -> List[str]:
        """Names of the variables this pattern mentions."""
        return [t.name for t in (self.subject, self.property, self.value)
                if isinstance(t, Var)]


Binding = Dict[str, Node]


class Query:
    """A conjunction of :class:`Pattern` s evaluated against a store.

    Evaluation is nested-loop with binding propagation: patterns run in the
    given order; each solution for a prefix of patterns narrows the index
    lookups for the rest.  Results are de-duplicated bindings of every
    variable mentioned anywhere in the query.
    """

    def __init__(self, patterns: Sequence[Pattern]) -> None:
        if not patterns:
            raise QueryError("query needs at least one pattern")
        self.patterns = list(patterns)
        self._variables: List[str] = []
        for pattern in self.patterns:
            for name in pattern.variables():
                if name not in self._variables:
                    self._variables.append(name)

    @property
    def variables(self) -> List[str]:
        """All variable names, in first-appearance order."""
        return list(self._variables)

    def run(self, store: TripleStore) -> Iterator[Binding]:
        """Yield every distinct binding satisfying all patterns."""
        seen = set()
        for binding in self._solve(store, 0, {}):
            key = tuple(sorted((name, node) for name, node in binding.items()))
            if key not in seen:
                seen.add(key)
                yield binding

    def run_all(self, store: TripleStore) -> List[Binding]:
        """Materialized :meth:`run`."""
        return list(self.run(store))

    def _solve(self, store: TripleStore, index: int,
               binding: Binding) -> Iterator[Binding]:
        if index == len(self.patterns):
            yield dict(binding)
            return
        pattern = self.patterns[index]
        subj = _ground(pattern.subject, binding)
        prop = _ground(pattern.property, binding)
        val = _ground(pattern.value, binding)
        # Grounded terms that turned out to be literals in subject/property
        # positions can never match.
        if isinstance(subj, Literal) or isinstance(prop, Literal):
            return
        for triple in store.match(subject=subj, property=prop, value=val):
            extension = _extend(pattern, triple, binding)
            if extension is not None:
                yield from self._solve(store, index + 1, extension)


def _ground(term: Term, binding: Binding) -> Optional[Node]:
    """Resolve *term* under *binding*: bound vars become nodes, free ones None."""
    if term is None:
        return None
    if isinstance(term, Var):
        return binding.get(term.name)
    return term


def _extend(pattern: Pattern, triple: Triple,
            binding: Binding) -> Optional[Binding]:
    """Bind the pattern's free variables from *triple*; None on conflict."""
    extended = dict(binding)
    for term, node in ((pattern.subject, triple.subject),
                       (pattern.property, triple.property),
                       (pattern.value, triple.value)):
        if isinstance(term, Var):
            bound = extended.get(term.name)
            if bound is None:
                extended[term.name] = node
            elif bound != node:
                return None
    return extended

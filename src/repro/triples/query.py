"""Query over the triple store.

TRIM's built-in query is single-pattern *selection* (fix any subset of the
three fields); that lives on :class:`~repro.triples.store.TripleStore`
itself.  Section 6 lists *"augmenting such interfaces with query
capabilities, in addition to the current navigational access"* as current
work — this module implements that extension: a small conjunctive query
engine with named variables and nested-loop evaluation with binding
propagation, behind a selectivity-based planner.

Evaluation order is chosen by the planner, not by the order the caller
wrote the patterns in: before each run the patterns are greedily reordered
by estimated result cardinality (read from the store's index statistics
via :meth:`~repro.triples.store.TripleStore.count`), preferring patterns
whose variables are already bound by chosen predecessors.  The written
order therefore no longer determines asymptotics; :meth:`Query.explain`
returns the chosen plan for tests and debugging, and ``planner=False``
forces the written order (used by the equivalence tests and the planner
benchmark).

Concurrency: both the planner's :meth:`count` probes and the evaluation's
:meth:`select` calls are *reads* — on a reader thread during another
thread's bulk ingest they see the store's last-flushed snapshot and never
force an index flush, so a whole query evaluates against one consistent
state (the store generation is pinned between flushes).

::

    q = Query([
        Pattern(Var('b'), SLIM['bundleContent'], Var('s')),
        Pattern(Var('s'), SLIM['scrapName'], Literal('K+ 3.9')),
    ])
    for binding in q.run(store):
        binding['b']   # the bundle Resource containing that scrap
    q.explain(store)   # the plan the run above used
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import QueryError
from repro.triples.store import TripleStore
from repro.triples.triple import Literal, Node, Resource, Triple


@dataclass(frozen=True)
class Var:
    """A named query variable.  Equal names denote the same variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("variable name must be non-empty")

    def __str__(self) -> str:
        return f"?{self.name}"


#: A pattern term: a concrete node, a variable, or None (anonymous wildcard).
Term = Union[Resource, Literal, Var, None]


@dataclass(frozen=True)
class Pattern:
    """One triple pattern of a conjunctive query."""

    subject: Term
    property: Term
    value: Term

    def __post_init__(self) -> None:
        if isinstance(self.subject, Literal):
            raise QueryError("pattern subject cannot be a literal")
        if isinstance(self.property, Literal):
            raise QueryError("pattern property cannot be a literal")

    def variables(self) -> List[str]:
        """Names of the variables this pattern mentions."""
        return [t.name for t in (self.subject, self.property, self.value)
                if isinstance(t, Var)]


Binding = Dict[str, Node]

#: Assumed filtering power of a field held by an already-bound variable.
#: At plan time the variable's runtime value is unknown, so its bucket size
#: cannot be read from the statistics — but each such field joins against a
#: concrete node at run time, so the estimate is divided by this factor per
#: bound field.  The exact constant matters little; it only has to prefer
#: joined patterns over cartesian ones.
_BOUND_VAR_SELECTIVITY = 8


@dataclass(frozen=True)
class PlanStep:
    """One planner decision: evaluate *pattern* next, at *estimate* rows.

    ``position`` is the pattern's index in the written query;
    ``bound_before`` names the variables already bound when this step runs.
    """

    position: int
    pattern: Pattern
    estimate: int
    bound_before: Tuple[str, ...]

    def __str__(self) -> str:
        terms = " ".join(str(t) if t is not None else "_"
                         for t in (self.pattern.subject, self.pattern.property,
                                   self.pattern.value))
        return f"#{self.position} ({terms}) ~{self.estimate}"


class Query:
    """A conjunction of :class:`Pattern` s evaluated against a store.

    Evaluation is nested-loop with binding propagation: each solution for a
    prefix of patterns narrows the index lookups for the rest.  The prefix
    order is chosen by the selectivity planner (see module docstring)
    unless ``planner=False``.  Results are de-duplicated bindings of every
    variable mentioned anywhere in the query, identical (order-insensitive)
    with the planner on and off.
    """

    def __init__(self, patterns: Sequence[Pattern], *,
                 planner: bool = True) -> None:
        if not patterns:
            raise QueryError("query needs at least one pattern")
        self.patterns = list(patterns)
        self.planner = planner
        self._variables: List[str] = []
        for pattern in self.patterns:
            for name in pattern.variables():
                if name not in self._variables:
                    self._variables.append(name)
        # Canonical variable order for the dedup key, fixed once per query
        # instead of re-sorting every solution's items in run().
        self._canonical: Tuple[str, ...] = tuple(sorted(self._variables))

    @property
    def variables(self) -> List[str]:
        """All variable names, in first-appearance order."""
        return list(self._variables)

    def cache_key(self) -> Tuple:
        """A hashable identity for memoizing this query's results.

        Two queries with the same written patterns and planner flag are
        guaranteed to produce the same bindings against the same store
        contents (the planner only reorders evaluation, never changes
        the answer — but a different planner flag can change *cost*, so
        it participates in the key to keep explain/debug traffic from
        aliasing).  Patterns and terms are frozen dataclasses, so the
        tuple is hashable and equality means structural equality.
        """
        return ("query", tuple(self.patterns), self.planner)

    def explain(self, store: TripleStore) -> List[PlanStep]:
        """The evaluation order :meth:`run` would use on *store*, as
        :class:`PlanStep` s (written order when the planner is off or the
        store exposes no statistics)."""
        return self._plan(store)

    def run(self, store: TripleStore) -> Iterator[Binding]:
        """Yield every distinct binding satisfying all patterns."""
        plan = [step.pattern for step in self._plan(store)]
        canonical = self._canonical
        seen = set()
        for binding in self._solve(store, plan, 0, {}):
            key = tuple(binding[name] for name in canonical)
            if key not in seen:
                seen.add(key)
                yield binding

    def run_all(self, store: TripleStore) -> List[Binding]:
        """Materialized :meth:`run`."""
        return list(self.run(store))

    # -- planning -------------------------------------------------------------

    def _plan(self, store: TripleStore) -> List[PlanStep]:
        counter = getattr(store, "count", None)
        if not self.planner or counter is None:
            # Written order, annotated where statistics exist.
            steps = []
            bound: List[str] = []
            for position, pattern in enumerate(self.patterns):
                estimate = (_estimate(counter, pattern, frozenset(bound))
                            if counter is not None else -1)
                steps.append(PlanStep(position, pattern, estimate,
                                      tuple(bound)))
                for name in pattern.variables():
                    if name not in bound:
                        bound.append(name)
            return steps
        remaining = list(enumerate(self.patterns))
        bound_order: List[str] = []
        bound = set()
        steps: List[PlanStep] = []
        while remaining:
            best = None
            best_key = None
            for position, pattern in remaining:
                estimate = _estimate(counter, pattern, bound)
                # Greedy choice: cheapest estimated pattern next; ties fall
                # back to the written order for determinism.
                key = (estimate, position)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (position, pattern, estimate)
            assert best is not None
            position, pattern, estimate = best
            steps.append(PlanStep(position, pattern, estimate,
                                  tuple(bound_order)))
            remaining = [(i, p) for i, p in remaining if i != position]
            for name in pattern.variables():
                if name not in bound:
                    bound.add(name)
                    bound_order.append(name)
        return steps

    # -- evaluation -----------------------------------------------------------

    def _solve(self, store: TripleStore, plan: List[Pattern], index: int,
               binding: Binding) -> Iterator[Binding]:
        if index == len(plan):
            yield dict(binding)
            return
        pattern = plan[index]
        subj = _ground(pattern.subject, binding)
        prop = _ground(pattern.property, binding)
        val = _ground(pattern.value, binding)
        # Grounded terms that turned out to be literals in subject/property
        # positions can never match.
        if isinstance(subj, Literal) or isinstance(prop, Literal):
            return
        for triple in store.match(subject=subj, property=prop, value=val):
            extension = _extend(pattern, triple, binding)
            if extension is not None:
                yield from self._solve(store, plan, index + 1, extension)


def _estimate(counter, pattern: Pattern, bound) -> int:
    """Estimated result rows for *pattern* given already-bound variables.

    Concrete terms are pushed into the store's :meth:`count` statistics
    (exact bucket sizes); fields held by a bound variable divide the
    estimate by ``_BOUND_VAR_SELECTIVITY`` each, since they will join
    against a concrete node at run time.
    """
    concrete = []
    bound_fields = 0
    for term in (pattern.subject, pattern.property, pattern.value):
        if term is None:
            concrete.append(None)
        elif isinstance(term, Var):
            concrete.append(None)
            if term.name in bound:
                bound_fields += 1
        else:
            concrete.append(term)
    subj, prop, val = concrete
    # count() expects subject/property to be Resources; a concrete Literal
    # in those slots is rejected by Pattern already.
    estimate = counter(subject=subj, property=prop, value=val)
    for _ in range(bound_fields):
        estimate = (estimate + _BOUND_VAR_SELECTIVITY - 1) \
            // _BOUND_VAR_SELECTIVITY
    return estimate


def _ground(term: Term, binding: Binding) -> Optional[Node]:
    """Resolve *term* under *binding*: bound vars become nodes, free ones None."""
    if term is None:
        return None
    if isinstance(term, Var):
        return binding.get(term.name)
    return term


def _extend(pattern: Pattern, triple: Triple,
            binding: Binding) -> Optional[Binding]:
    """Bind the pattern's free variables from *triple*; None on conflict."""
    extended = dict(binding)
    for term, node in ((pattern.subject, triple.subject),
                       (pattern.property, triple.property),
                       (pattern.value, triple.value)):
        if isinstance(term, Var):
            bound = extended.get(term.name)
            if bound is None:
                extended[term.name] = node
            elif bound != node:
                return None
    return extended

"""The indexed triple store at the core of TRIM.

Section 4.4: *"Through TRIM, the DMI can create, remove, persist (through
XML files), query, and create simple views over the underlying triples.
Query is specified by selection, where one or more of the triple fields is
fixed, and the result is a set of triples."*

:class:`TripleStore` implements exactly that surface plus the plumbing a
real store needs: three single-field hash indexes (subject / property /
value) and two compound indexes — ``(subject, property)`` and
``(property, value)`` — covering the two-field selections that dominate
DMI traffic (``value_of``/``values_of`` and type-extent scans), change
listeners (used by the undo log), a :meth:`count` statistics method that
the query planner reads bucket sizes from, a monotonically increasing
:attr:`generation` counter that views key their caches on, and a size
estimator used by the space-overhead benchmark (claim C-1).

Concurrency model (DESIGN.md §10): every mutation runs under one
re-entrant store lock; reads take no lock at all.  During a :meth:`bulk`
load only the *owner thread* (the one that entered the bulk) flushes
pending inserts before its reads — read-your-writes.  Every other thread
reads the snapshot as of the last flush: the membership map, the indexes,
and :attr:`generation` all describe the same consistent state because
pending inserts touch none of them until the flush publishes everything
together.  Constructing the store with ``concurrent=True`` additionally
makes index maintenance copy-on-write — published buckets are never
mutated in place, so lock-free readers may iterate them lazily while
writers race — at the cost of rebuilding a bucket per touched key.
"""

from __future__ import annotations

import threading
from typing import (Callable, Dict, Iterable, Iterator, List, Optional, Set,
                    Tuple)

from repro.errors import TransactionError, TripleNotFoundError
from repro.triples.triple import Literal, Node, Resource, Triple

#: Change listeners receive ('add' | 'remove', triple, sequence), where
#: *sequence* is the insertion-sequence number the triple holds (for adds)
#: or held (for removes).  The sequence lets undo logs and the write-ahead
#: log restore a triple to its exact original position later.
ChangeListener = Callable[[str, Triple, int], None]

#: Atomic-scope listeners take no arguments; they fire once when the
#: outermost atomic scope (bulk load or Batch) on the store closes.
AtomicListener = Callable[[], None]

#: Shared immutable empty bucket — ``_candidates`` must never allocate a
#: fresh container just to say "no hits".
_EMPTY: "frozenset[Triple]" = frozenset()


class BulkLoad:
    """Context manager for a deferred-indexing ingest (``store.bulk()``).

    While active, inserts (``add``/``add_all``/``restore``) append to a
    pending buffer only; membership, index maintenance, the generation
    bump, and listener fan-out are all deferred and performed in one
    bound-locals pass when the batch *flushes*.  A flush happens on
    normal exit, and early whenever an operation needs consistent indexes
    or ordered events: any selection or membership read *from the thread
    that entered the bulk* (``match``/``select``/``count``, iteration),
    any removal, and ``add_listener``.  Threads other than the owner
    never trigger a flush — they read the snapshot as of the last flush
    instead (see the module docstring).  Owner-thread membership reads
    (``in``, ``len``, ``sequence_of``) consult the pending buffer
    directly and stay exact without flushing.

    Exiting on an exception *aborts* instead: every insert still pending
    (that is, since the last flush) is rolled back silently — listeners
    never hear about it, so a failed ingest leaves no half-announced
    state.  Used by :class:`~repro.triples.transactions.Batch`,
    :meth:`~repro.triples.trim.TrimManager.bulk_ingest`, the streaming
    snapshot loader, and WAL recovery replay.  Bulk loads do not nest.
    """

    __slots__ = ("_store",)

    def __init__(self, store) -> None:
        self._store = store

    def __enter__(self):
        self._store._begin_bulk()
        return self._store

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._store._end_bulk()
        else:
            self._store._abort_bulk()
        return False


class TripleStore:
    """A set of triples with hash indexes on each field and field pair.

    The store has *set semantics*: adding a triple twice is a no-op and
    :meth:`add` reports whether the triple was new.  Iteration order is the
    insertion order of currently present triples, which keeps persisted
    files and test output deterministic.

    Every mutation bumps :attr:`generation`, so readers (notably
    :class:`~repro.triples.views.View`) can cache derived results and
    invalidate them with a single integer comparison.

    Mutations are serialized by an internal re-entrant lock (exposed as
    :attr:`lock` for callers that need a consistent multi-step read, e.g.
    snapshot writers).  Plain reads take no lock.  Pass
    ``concurrent=True`` when reader threads will overlap with writers:
    index buckets then become copy-on-write so a reader holding a bucket
    never observes it mid-mutation.
    """

    def __init__(self, concurrent: bool = False) -> None:
        # Membership map: triple -> insertion sequence number.  The dict
        # keeps insertion order for iteration; the sequence numbers let
        # selection results be order-restored in O(k log k) instead of
        # re-scanning the whole store.
        self._triples: Dict[Triple, int] = {}
        self._sequence = 0
        self._generation = 0
        self._by_subject: Dict[Resource, Set[Triple]] = {}
        self._by_property: Dict[Resource, Set[Triple]] = {}
        self._by_value: Dict[Node, Set[Triple]] = {}
        # Compound indexes: the two pairs that real traffic fixes together.
        # (subject, value) without property is rare enough to stay on the
        # single-field indexes.
        self._by_subject_property: Dict[Tuple[Resource, Resource], Set[Triple]] = {}
        self._by_property_value: Dict[Tuple[Resource, Node], Set[Triple]] = {}
        self._listeners: List[ChangeListener] = []
        self.concurrent = concurrent
        self._lock = threading.RLock()
        # Bulk-load state: None = normal mode; a list = deferred inserts
        # awaiting their index/listener flush (see BulkLoad).  The map
        # mirrors the list for O(1) owner-thread membership and dedup.
        self._pending: Optional[List[Tuple[Triple, int]]] = None
        self._pending_map: Dict[Triple, int] = {}
        self._bulk_owner: Optional[int] = None
        self._bulk_seq_mark = 0
        # Atomic-scope state: bulk loads and Batches both count as atomic
        # scopes; listeners fire when the outermost one closes (see
        # add_atomic_listener).  Durability uses this to defer auto-commits
        # past user-level operation boundaries.
        self._atomic_depth = 0
        self._atomic_listeners: List[AtomicListener] = []

    # -- locking / atomic scopes ---------------------------------------------

    @property
    def lock(self) -> "threading.RLock":
        """The store's mutation lock (re-entrant).

        Mutators take it internally; hold it explicitly only for
        multi-step reads that must not interleave with writers (the
        snapshot writer does).  Lock order across the stack is
        store lock -> Durability meta lock -> WAL lock, never reversed.
        """
        return self._lock

    @property
    def in_atomic(self) -> bool:
        """Whether an atomic scope (bulk load or Batch) is open."""
        return self._atomic_depth > 0

    def begin_atomic(self) -> None:
        """Open an atomic scope.  Scopes nest; see :meth:`end_atomic`."""
        with self._lock:
            self._atomic_depth += 1

    def end_atomic(self) -> None:
        """Close one atomic scope; fire atomic listeners at depth zero."""
        with self._lock:
            if self._atomic_depth <= 0:
                raise TransactionError("no atomic scope to end")
            self._atomic_depth -= 1
            fire = self._atomic_depth == 0
        if fire:
            self._fire_atomic_end()

    def add_atomic_listener(self, listener: AtomicListener) -> Callable[[], None]:
        """Register a callback for outermost atomic-scope exit.

        Fires after the scope fully closed (flush or rollback included),
        outside the store lock, whether the scope succeeded or aborted.
        Returns an unsubscribe callable.
        """
        with self._lock:
            self._atomic_listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                if listener in self._atomic_listeners:
                    self._atomic_listeners.remove(listener)

        return unsubscribe

    def _fire_atomic_end(self) -> None:
        for listener in list(self._atomic_listeners):
            listener()

    # -- bulk loading --------------------------------------------------------

    def bulk(self) -> BulkLoad:
        """A deferred-indexing ingest context (see :class:`BulkLoad`)."""
        return BulkLoad(self)

    @property
    def in_bulk(self) -> bool:
        """Whether a :meth:`bulk` load is currently active."""
        return self._pending is not None

    def _begin_bulk(self) -> None:
        with self._lock:
            if self._pending is not None:
                raise TransactionError("bulk load already active on this store")
            self._pending = []
            self._pending_map = {}
            self._bulk_owner = threading.get_ident()
            self._bulk_seq_mark = self._sequence
            self._atomic_depth += 1

    def _end_bulk(self) -> None:
        with self._lock:
            self._flush_bulk()
            self._pending = None
            self._bulk_owner = None
            self._atomic_depth -= 1
            fire = self._atomic_depth == 0
        if fire:
            self._fire_atomic_end()

    def _abort_bulk(self) -> None:
        with self._lock:
            # Pending inserts never reached the membership map or the
            # indexes, so aborting is pure bookkeeping.
            self._pending = None
            self._pending_map = {}
            self._bulk_owner = None
            # Sequences handed out since the last flush all belong to the
            # aborted inserts, so the counter rolls straight back.
            self._sequence = self._bulk_seq_mark
            self._atomic_depth -= 1
            fire = self._atomic_depth == 0
        if fire:
            self._fire_atomic_end()

    def _is_bulk_owner(self) -> bool:
        return self._bulk_owner == threading.get_ident()

    def _read_barrier(self) -> None:
        """Owner-thread reads flush pending inserts first (read-your-
        writes); reads from any other thread return the last-flush
        snapshot untouched and never force a flush."""
        if self._pending and self._is_bulk_owner():
            with self._lock:
                self._flush_bulk()

    def _flush_bulk(self) -> None:
        """Publish every pending insert: membership first, then indexes,
        then the generation bump, then listener fan-out — in insertion
        order.  Callers hold the store lock.

        The ordering matters for concurrent snapshot readers: a triple
        becomes a member before it appears in any bucket, so a reader that
        picked it out of a bucket can always resolve its sequence number.
        """
        pending = self._pending
        if not pending:
            self._bulk_seq_mark = self._sequence
            return
        self._pending = []
        self._pending_map = {}
        members = self._triples
        tail = next(reversed(members.values())) if members else -1
        need_sort = False
        for t, sequence in pending:
            members[t] = sequence
            if sequence < tail:
                need_sort = True
            else:
                tail = sequence
        if need_sort:
            # Out-of-order restore(s) in the batch: rebuild the ordered
            # membership map once and publish it with an atomic rebind.
            self._triples = dict(
                sorted(members.items(), key=lambda item: item[1]))
        if self.concurrent:
            self._publish_indexed(pending)
        else:
            by_s, by_p, by_v = (self._by_subject, self._by_property,
                                self._by_value)
            by_sp, by_pv = self._by_subject_property, self._by_property_value
            for t, _ in pending:
                by_s.setdefault(t.subject, set()).add(t)
                by_p.setdefault(t.property, set()).add(t)
                by_v.setdefault(t.value, set()).add(t)
                by_sp.setdefault((t.subject, t.property), set()).add(t)
                by_pv.setdefault((t.property, t.value), set()).add(t)
        self._generation += len(pending)
        self._bulk_seq_mark = self._sequence
        if self._listeners:
            for t, sequence in pending:
                self._notify("add", t, sequence)

    def _publish_indexed(self, pending: List[Tuple[Triple, int]]) -> None:
        """Copy-on-write index maintenance for ``concurrent=True``.

        Additions are grouped per bucket key, then each touched bucket is
        rebuilt once and published with a single dict assignment, so a
        reader that grabbed the old bucket keeps iterating an immutable
        set while the new one becomes visible atomically.
        """
        for index, key_of in (
                (self._by_subject, lambda t: t.subject),
                (self._by_property, lambda t: t.property),
                (self._by_value, lambda t: t.value),
                (self._by_subject_property,
                 lambda t: (t.subject, t.property)),
                (self._by_property_value,
                 lambda t: (t.property, t.value))):
            additions: Dict = {}
            for t, _ in pending:
                additions.setdefault(key_of(t), []).append(t)
            for key, ts in additions.items():
                old = index.get(key)
                index[key] = set(ts) if old is None else old.union(ts)

    # -- mutation -----------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert *triple*; return ``True`` if it was not already present."""
        with self._lock:
            if triple in self._triples:
                return False
            if self._pending is not None:
                if triple in self._pending_map:
                    return False
                sequence = self._sequence
                self._sequence += 1
                self._pending_map[triple] = sequence
                self._pending.append((triple, sequence))
                return True
            sequence = self._sequence
            self._triples[triple] = sequence
            self._sequence += 1
            self._generation += 1
            self._index_insert(triple)
            self._notify("add", triple, sequence)
            return True

    def restore(self, triple: Triple, sequence: int) -> bool:
        """Insert *triple* at a specific insertion-sequence position.

        The inverse of :meth:`remove` for undo/redo and WAL replay: the
        triple re-enters the store with the *original* sequence number, so
        :meth:`select` order, iteration order, and persisted files match
        the pre-removal state exactly.  A no-op (returning ``False``) when
        the triple is already present.  Restoring below the current tail
        rebuilds the ordered membership map — O(n log n), acceptable on
        the undo/recovery paths this exists for.
        """
        with self._lock:
            if triple in self._triples:
                return False
            if self._pending is not None:
                if triple in self._pending_map:
                    return False
                self._pending_map[triple] = sequence
                self._pending.append((triple, sequence))
                self._sequence = max(self._sequence, sequence + 1)
                return True
            out_of_order = bool(self._triples) and \
                sequence < next(reversed(self._triples.values()))
            self._triples[triple] = sequence
            if out_of_order:
                self._triples = dict(
                    sorted(self._triples.items(), key=lambda item: item[1]))
            self._sequence = max(self._sequence, sequence + 1)
            self._generation += 1
            self._index_insert(triple)
            self._notify("add", triple, sequence)
            return True

    def sequence_of(self, triple: Triple) -> int:
        """The insertion-sequence number of a present triple.

        Raises :class:`TripleNotFoundError` when absent.  Snapshots use
        this to persist exact ordering (see
        :func:`repro.triples.persistence.dumps` with sequences).  On the
        bulk-owner thread, pending (unflushed) inserts resolve too.
        """
        try:
            return self._triples[triple]
        except KeyError:
            pass
        if self._pending is not None and self._is_bulk_owner():
            sequence = self._pending_map.get(triple)
            if sequence is not None:
                return sequence
        raise TripleNotFoundError(f"triple not in store: {triple}")

    def restore_all(self, items: Iterable[Tuple[Triple, int]]) -> int:
        """Batch :meth:`restore`: insert many (triple, sequence) pairs.

        Semantically N ``restore`` calls — same listener events, same
        final ordering — but the ordered membership map is rebuilt at
        most once, so migrating a block of old-sequence triples into a
        store with a higher tail costs one O(n log n) pass instead of
        one per triple.  Returns how many were new.
        """
        with self._lock:
            if self._pending is not None:
                added = 0
                for triple, sequence in items:
                    added += self.restore(triple, sequence)
                return added
            accepted: List[Tuple[Triple, int]] = []
            tail = (next(reversed(self._triples.values()))
                    if self._triples else -1)
            out_of_order = False
            for triple, sequence in items:
                if triple in self._triples:
                    continue
                self._triples[triple] = sequence
                if sequence < tail:
                    out_of_order = True
                else:
                    tail = sequence
                self._sequence = max(self._sequence, sequence + 1)
                accepted.append((triple, sequence))
            if out_of_order:
                self._triples = dict(
                    sorted(self._triples.items(), key=lambda item: item[1]))
            for triple, sequence in accepted:
                self._generation += 1
                self._index_insert(triple)
                self._notify("add", triple, sequence)
            return len(accepted)

    def restore_rows(self, nodes: List[Node],
                     rows: Iterable[Tuple[int, int, int, int]]) -> int:
        """Bulk-restore dictionary-encoded rows (binary snapshot fast path).

        The v3 snapshot loader hands over its decoded string dictionary
        and integer ``(subject-id, property-id, value-id, sequence)``
        rows wholesale, so the whole membership map and all five indexes
        are built in one tight pass over local containers — no per-row
        lock round trip, no pending buffer, no listener bookkeeping.
        All-or-nothing: a bad row (id out of bounds, literal where a
        resource belongs) raises ``IndexError``/``ValueError`` before
        anything is installed, leaving the store untouched.

        Only valid on an empty store with no active bulk load and no
        change listeners (recovery runs before any attach); returns the
        number of statements restored.
        """
        with self._lock:
            if self._triples or self._pending is not None:
                raise TransactionError(
                    "restore_rows requires an empty, idle store")
            if self._listeners:
                raise TransactionError(
                    "restore_rows cannot notify change listeners")
            for node in nodes:
                if not isinstance(node, (Resource, Literal)):
                    raise ValueError(
                        f"snapshot dictionary entry is not a node: {node!r}")
            resource = [isinstance(node, Resource) for node in nodes]
            members: Dict[Triple, int] = {}
            by_s: Dict[Resource, Set[Triple]] = {}
            by_p: Dict[Resource, Set[Triple]] = {}
            by_v: Dict[Node, Set[Triple]] = {}
            by_sp: Dict[Tuple[Resource, Resource], Set[Triple]] = {}
            by_pv: Dict[Tuple[Resource, Node], Set[Triple]] = {}
            tail = -1
            top = -1
            need_sort = False
            # Every node was type-checked above, so each row's triple is
            # built directly (``__new__`` + field binds) instead of
            # through the frozen-dataclass constructor — same instances,
            # identical eq/hash, but without re-running ``__post_init__``
            # validation 100k times on the cold-start path.
            new_triple = Triple.__new__
            bind = object.__setattr__
            for sid, pid, vid, sequence in rows:
                if not (resource[sid] and resource[pid]):
                    raise ValueError(
                        "triple subject/property must be resources")
                subject, prop, value = nodes[sid], nodes[pid], nodes[vid]
                t = new_triple(Triple)
                bind(t, "subject", subject)
                bind(t, "property", prop)
                bind(t, "value", value)
                members[t] = sequence
                if sequence < tail:
                    need_sort = True
                else:
                    tail = sequence
                if sequence > top:
                    top = sequence
                bucket = by_s.get(subject)
                if bucket is None:
                    by_s[subject] = bucket = set()
                bucket.add(t)
                bucket = by_p.get(prop)
                if bucket is None:
                    by_p[prop] = bucket = set()
                bucket.add(t)
                bucket = by_v.get(value)
                if bucket is None:
                    by_v[value] = bucket = set()
                bucket.add(t)
                pair = (subject, prop)
                bucket = by_sp.get(pair)
                if bucket is None:
                    by_sp[pair] = bucket = set()
                bucket.add(t)
                pair = (prop, value)
                bucket = by_pv.get(pair)
                if bucket is None:
                    by_pv[pair] = bucket = set()
                bucket.add(t)
            if need_sort:
                members = dict(
                    sorted(members.items(), key=lambda item: item[1]))
            self._triples = members
            self._by_subject = by_s
            self._by_property = by_p
            self._by_value = by_v
            self._by_subject_property = by_sp
            self._by_property_value = by_pv
            self._sequence = max(self._sequence, top + 1)
            self._generation += len(members)
            return len(members)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return how many were new.

        Batch fast path: indexes and locals are bound once, each new triple
        costs one membership probe plus five bucket inserts, and the
        listener fan-out is skipped entirely when nobody is subscribed.
        Listeners (when present) still see every insertion individually, so
        undo logs and batches observe the same events as N ``add`` calls.
        """
        with self._lock:
            members = self._triples
            if self._pending is not None:
                # Bulk mode: pending-buffer append only; membership,
                # indexes, and listener fan-out land in one flush pass.
                pending = self._pending
                pending_map = self._pending_map
                added = 0
                for t in triples:
                    if t in members or t in pending_map:
                        continue
                    sequence = self._sequence
                    pending_map[t] = sequence
                    pending.append((t, sequence))
                    self._sequence += 1
                    added += 1
                return added
            if self.concurrent:
                accepted: List[Tuple[Triple, int]] = []
                for t in triples:
                    if t in members:
                        continue
                    sequence = self._sequence
                    members[t] = sequence
                    self._sequence += 1
                    accepted.append((t, sequence))
                if not accepted:
                    return 0
                self._publish_indexed(accepted)
                self._generation += len(accepted)
                if self._listeners:
                    for t, sequence in accepted:
                        self._notify("add", t, sequence)
                return len(accepted)
            by_s, by_p, by_v = (self._by_subject, self._by_property,
                                self._by_value)
            by_sp, by_pv = self._by_subject_property, self._by_property_value
            notify = self._notify if self._listeners else None
            added = 0
            for t in triples:
                if t in members:
                    continue
                sequence = self._sequence
                members[t] = sequence
                self._sequence += 1
                by_s.setdefault(t.subject, set()).add(t)
                by_p.setdefault(t.property, set()).add(t)
                by_v.setdefault(t.value, set()).add(t)
                by_sp.setdefault((t.subject, t.property), set()).add(t)
                by_pv.setdefault((t.property, t.value), set()).add(t)
                added += 1
                if notify is not None:
                    self._generation += 1
                    notify("add", t, sequence)
            if notify is None:
                self._generation += added
            return added

    def remove(self, triple: Triple) -> None:
        """Delete *triple*; raise :class:`TripleNotFoundError` if absent."""
        with self._lock:
            if self._pending:
                self._flush_bulk()
            if triple not in self._triples:
                raise TripleNotFoundError(f"triple not in store: {triple}")
            sequence = self._triples.pop(triple)
            self._generation += 1
            discard = (self._index_discard_cow if self.concurrent
                       else self._index_discard)
            discard(self._by_subject, triple.subject, triple)
            discard(self._by_property, triple.property, triple)
            discard(self._by_value, triple.value, triple)
            discard(self._by_subject_property,
                    (triple.subject, triple.property), triple)
            discard(self._by_property_value,
                    (triple.property, triple.value), triple)
            self._notify("remove", triple, sequence)

    def discard(self, triple: Triple) -> bool:
        """Delete *triple* if present; return whether it was."""
        with self._lock:
            if triple not in self._triples and not (
                    self._pending and triple in self._pending_map):
                return False
            self.remove(triple)
            return True

    def remove_matching(self, subject: Optional[Resource] = None,
                        property: Optional[Resource] = None,
                        value: Optional[Node] = None) -> int:
        """Delete every triple matching the selection; return the count.

        Batched removal fast path: the victims are materialized once
        (match() iterates live index buckets, so this must happen before
        the first removal mutates them), then dropped with bound locals —
        one membership pop plus five bucket discards each, instead of a
        full :meth:`remove` call per triple.  Listeners still see every
        removal individually, in match order.
        """
        with self._lock:
            if self._pending:
                self._flush_bulk()
            victims = list(self.match(subject, property, value))
            if not victims:
                return 0
            members = self._triples
            by_s, by_p, by_v = (self._by_subject, self._by_property,
                                self._by_value)
            by_sp, by_pv = self._by_subject_property, self._by_property_value
            discard = (self._index_discard_cow if self.concurrent
                       else self._index_discard)
            notify = self._notify if self._listeners else None
            for t in victims:
                sequence = members.pop(t)
                discard(by_s, t.subject, t)
                discard(by_p, t.property, t)
                discard(by_v, t.value, t)
                discard(by_sp, (t.subject, t.property), t)
                discard(by_pv, (t.property, t.value), t)
                self._generation += 1
                if notify is not None:
                    notify("remove", t, sequence)
            return len(victims)

    def clear(self) -> None:
        """Delete every triple (listeners see each removal).

        One-pass reset: the membership map and all five indexes are dropped
        wholesale instead of N ``remove`` calls doing per-bucket cleanup.
        Listeners are still notified once per removed triple (in insertion
        order), so undo logs can restore the contents.
        """
        with self._lock:
            if self._pending:
                self._flush_bulk()
            victims = list(self._triples.items())
            if not victims:
                return
            self._triples = {}
            self._by_subject = {}
            self._by_property = {}
            self._by_value = {}
            self._by_subject_property = {}
            self._by_property_value = {}
            self._generation += len(victims)
            for triple, sequence in victims:
                self._notify("remove", triple, sequence)

    # -- selection query (the TRIM query operation) --------------------------

    def match(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> Iterator[Triple]:
        """Yield triples matching the fixed fields (``None`` = wildcard).

        The narrowest applicable index drives the iteration — an exact
        compound bucket when ``(subject, property)`` or
        ``(property, value)`` are fixed together, a membership probe when
        all three are fixed — and any remaining fixed field is checked per
        candidate.  With no field fixed this iterates the whole store.

        During a :meth:`bulk` load the owner thread flushes pending
        inserts first, so its selections never observe stale indexes;
        other threads read the last-flush snapshot without flushing.
        """
        self._read_barrier()
        if subject is not None and property is not None and value is not None:
            probe = Triple(subject, property, value)
            if probe in self._triples:
                yield probe
            return
        if subject is not None and property is not None:
            # Exact bucket: no residual checks needed.
            yield from self._by_subject_property.get((subject, property), _EMPTY)
            return
        if property is not None and value is not None:
            yield from self._by_property_value.get((property, value), _EMPTY)
            return
        candidates = self._candidates(subject, property, value)
        for triple in candidates:
            if subject is not None and triple.subject != subject:
                continue
            if property is not None and triple.property != property:
                continue
            if value is not None and triple.value != value:
                continue
            yield triple

    def select(self, subject: Optional[Resource] = None,
               property: Optional[Resource] = None,
               value: Optional[Node] = None) -> List[Triple]:
        """Like :meth:`match` but materialized, in insertion order."""
        hits = list(self.match(subject, property, value))
        members = self._triples
        if self.concurrent:
            # A racing removal may have dropped a hit's sequence between
            # the match and the sort; order it first rather than raise.
            hits.sort(key=lambda t: members.get(t, -1))
        else:
            hits.sort(key=members.__getitem__)
        return hits

    def one(self, subject: Optional[Resource] = None,
            property: Optional[Resource] = None,
            value: Optional[Node] = None) -> Optional[Triple]:
        """Return the single matching triple, ``None`` if there is none.

        Raises :class:`LookupError` when more than one triple matches —
        use this for functional (single-valued) properties only.
        """
        found: Optional[Triple] = None
        for triple in self.match(subject, property, value):
            if found is not None:
                raise LookupError(
                    f"expected at most one triple for ({subject}, {property}, {value})")
            found = triple
        return found

    def value_of(self, subject: Resource, property: Resource) -> Optional[Node]:
        """The value of a single-valued property, or ``None``."""
        hit = self.one(subject=subject, property=property)
        return None if hit is None else hit.value

    def literal_of(self, subject: Resource, property: Resource):
        """The Python value of a single-valued literal property, or ``None``."""
        node = self.value_of(subject, property)
        if node is None:
            return None
        if not isinstance(node, Literal):
            raise LookupError(f"{subject} {property} holds a resource, not a literal")
        return node.value

    def values_of(self, subject: Resource, property: Resource) -> List[Node]:
        """All values of a property on *subject*, in insertion order."""
        return [t.value for t in self.select(subject=subject, property=property)]

    # -- statistics (read by the query planner) -------------------------------

    @property
    def generation(self) -> int:
        """Monotonic mutation counter: bumps on every add and remove.

        Equal generations guarantee identical contents, so any derived
        result (view closures, plans, materialized selections) can be
        cached against this number.  During a bulk load the counter is
        pinned until the flush, matching what snapshot readers see.
        """
        return self._generation

    def generation_of(self, subject: Optional[Resource] = None) -> int:
        """The generation token governing reads routed by *subject*.

        A plain store has a single counter, so the subject is ignored; a
        sharded store overrides this to return the owning shard's
        counter.  Unlike the raw :attr:`generation` property this goes
        through the read barrier, so a bulk owner asking for a token
        flushes pending inserts first — a memoized read keyed on the
        token therefore keeps read-your-writes semantics.
        """
        self._read_barrier()
        return self._generation

    @property
    def generation_vector(self) -> Tuple[int, ...]:
        """Per-partition generation counters as an invalidation stamp.

        A one-tuple here; :class:`~repro.triples.sharded.ShardedTripleStore`
        returns one counter per shard so caches can invalidate
        per-partition.  Goes through the read barrier like
        :meth:`generation_of`.
        """
        self._read_barrier()
        return (self._generation,)

    @property
    def sequence_ceiling(self) -> int:
        """The next insertion-sequence number this store would hand out.

        Strictly greater than the sequence of every triple ever inserted
        (including pending bulk inserts).  A sharded store reads this per
        shard after recovery to resynchronize its global sequence counter.
        """
        return self._sequence

    def count(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> int:
        """How many triples match the selection, without materializing it.

        Exact and O(1) for every combination an index covers: no fields
        (store size), any single field, ``(subject, property)``,
        ``(property, value)``, and all three (membership probe).  The one
        uncovered combination, ``(subject, value)``, returns the smaller
        single-field bucket size — an upper bound, which is the right
        direction for a planner estimate.
        """
        self._read_barrier()
        if subject is not None and property is not None and value is not None:
            return 1 if Triple(subject, property, value) in self._triples else 0
        if subject is not None and property is not None:
            return len(self._by_subject_property.get((subject, property), _EMPTY))
        if property is not None and value is not None:
            return len(self._by_property_value.get((property, value), _EMPTY))
        if subject is not None and value is not None:
            return min(len(self._by_subject.get(subject, _EMPTY)),
                       len(self._by_value.get(value, _EMPTY)))
        if subject is not None:
            return len(self._by_subject.get(subject, _EMPTY))
        if property is not None:
            return len(self._by_property.get(property, _EMPTY))
        if value is not None:
            return len(self._by_value.get(value, _EMPTY))
        return len(self._triples)

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        n = len(self._triples)
        if self._pending is not None and self._is_bulk_owner():
            n += len(self._pending_map)
        return n

    def __contains__(self, triple: Triple) -> bool:
        if triple in self._triples:
            return True
        return (self._pending is not None and self._is_bulk_owner()
                and triple in self._pending_map)

    def __iter__(self) -> Iterator[Triple]:
        self._read_barrier()
        if self.concurrent or self._pending is not None:
            # list(dict) is a single C-level operation, so the snapshot is
            # consistent even while a writer races.
            return iter(list(self._triples))
        return iter(self._triples)

    def _scan_source(self) -> Iterable[Triple]:
        """The membership map, snapshotted when a writer may race."""
        self._read_barrier()
        if self.concurrent or self._pending is not None:
            return list(self._triples)
        return self._triples

    def subjects(self) -> List[Resource]:
        """Distinct subjects, in first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self._scan_source():
            seen.setdefault(triple.subject, None)
        return list(seen)

    def properties(self) -> List[Resource]:
        """Distinct properties, in first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self._scan_source():
            seen.setdefault(triple.property, None)
        return list(seen)

    def resources(self) -> List[Resource]:
        """Every resource mentioned in any position, first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self._scan_source():
            seen.setdefault(triple.subject, None)
            seen.setdefault(triple.property, None)
            if isinstance(triple.value, Resource):
                seen.setdefault(triple.value, None)
        return list(seen)

    def estimated_bytes(self) -> int:
        """Rough in-memory footprint of the stored statements.

        Counts the string payload of every field of every triple (URIs and
        literal reprs) plus a fixed per-triple and per-index-entry overhead
        — five index entries per triple (three single-field, two compound).
        Used by the space-overhead benchmark (claim C-1); the absolute
        number is indicative, the *ratio* against a native representation
        is what the paper's trade-off discussion is about.
        """
        per_triple_overhead = 3 * 8 + 48   # three refs + container slots
        count = 0
        total = 0
        for triple in self._scan_source():
            total += len(triple.subject.uri)
            total += len(triple.property.uri)
            if isinstance(triple.value, Resource):
                total += len(triple.value.uri)
            else:
                total += len(str(triple.value.value))
            total += per_triple_overhead
            count += 1
        # Each triple appears in five index sets (3 single + 2 compound).
        total += 5 * count * 8
        return total

    # -- listeners -----------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> Callable[[], None]:
        """Register a change listener; returns an unsubscribe callable.

        Listeners are called *after* each mutation as
        ``listener(action, triple, sequence)`` with ``action`` one of
        ``'add'``/``'remove'`` and ``sequence`` the triple's insertion
        number (see :data:`ChangeListener`).  Both store implementations
        honour the same contract — pinned by the parity suite.

        Subscribing during a :meth:`bulk` load flushes pending inserts
        first, so a new listener never receives events for mutations that
        happened before it attached.
        """
        with self._lock:
            if self._pending:
                self._flush_bulk()
            self._listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                if listener in self._listeners:
                    self._listeners.remove(listener)

        return unsubscribe

    # -- internals -----------------------------------------------------------

    def _candidates(self, subject: Optional[Resource],
                    property: Optional[Resource],
                    value: Optional[Node]) -> Iterable[Triple]:
        """Pick the smallest index bucket covering the fixed fields.

        With no field fixed this returns the live dict view (no copy)
        in single-threaded mode, or an atomic list snapshot when a bulk
        writer or concurrent mode is in play; callers that mutate while
        consuming must snapshot first, as :meth:`remove_matching` does.
        """
        buckets: List[Iterable[Triple]] = []
        if subject is not None:
            buckets.append(self._by_subject.get(subject, _EMPTY))
        if property is not None:
            buckets.append(self._by_property.get(property, _EMPTY))
        if value is not None:
            buckets.append(self._by_value.get(value, _EMPTY))
        if not buckets:
            if self.concurrent or self._pending is not None:
                return list(self._triples)
            return self._triples.keys()
        return min(buckets, key=len)

    def _index_insert(self, triple: Triple) -> None:
        if self.concurrent:
            for index, key in (
                    (self._by_subject, triple.subject),
                    (self._by_property, triple.property),
                    (self._by_value, triple.value),
                    (self._by_subject_property,
                     (triple.subject, triple.property)),
                    (self._by_property_value,
                     (triple.property, triple.value))):
                old = index.get(key)
                index[key] = {triple} if old is None else old | {triple}
            return
        self._by_subject.setdefault(triple.subject, set()).add(triple)
        self._by_property.setdefault(triple.property, set()).add(triple)
        self._by_value.setdefault(triple.value, set()).add(triple)
        self._by_subject_property.setdefault(
            (triple.subject, triple.property), set()).add(triple)
        self._by_property_value.setdefault(
            (triple.property, triple.value), set()).add(triple)

    @staticmethod
    def _index_discard(index: Dict, key, triple: Triple) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.discard(triple)
            if not bucket:
                del index[key]

    @staticmethod
    def _index_discard_cow(index: Dict, key, triple: Triple) -> None:
        """Copy-on-write bucket removal: publish a rebuilt bucket (or drop
        the key) atomically instead of mutating the old set in place."""
        bucket = index.get(key)
        if bucket is None or triple not in bucket:
            return
        if len(bucket) == 1:
            del index[key]
        else:
            index[key] = bucket - {triple}

    def _notify(self, action: str, triple: Triple, sequence: int) -> None:
        for listener in list(self._listeners):
            listener(action, triple, sequence)

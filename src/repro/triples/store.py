"""The indexed triple store at the core of TRIM.

Section 4.4: *"Through TRIM, the DMI can create, remove, persist (through
XML files), query, and create simple views over the underlying triples.
Query is specified by selection, where one or more of the triple fields is
fixed, and the result is a set of triples."*

:class:`TripleStore` implements exactly that surface plus the plumbing a
real store needs: three single-field hash indexes (subject / property /
value) so every selection pattern is answered without a full scan, change
listeners (used by the undo log), and a size estimator used by the space-
overhead benchmark (claim C-1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import TripleNotFoundError
from repro.triples.triple import Literal, Node, Resource, Triple

#: Change listeners receive ('add' | 'remove', triple).
ChangeListener = Callable[[str, Triple], None]


class TripleStore:
    """A set of triples with hash indexes on each field.

    The store has *set semantics*: adding a triple twice is a no-op and
    :meth:`add` reports whether the triple was new.  Iteration order is the
    insertion order of currently present triples, which keeps persisted
    files and test output deterministic.
    """

    def __init__(self) -> None:
        # Membership map: triple -> insertion sequence number.  The dict
        # keeps insertion order for iteration; the sequence numbers let
        # selection results be order-restored in O(k log k) instead of
        # re-scanning the whole store.
        self._triples: Dict[Triple, int] = {}
        self._sequence = 0
        self._by_subject: Dict[Resource, Set[Triple]] = {}
        self._by_property: Dict[Resource, Set[Triple]] = {}
        self._by_value: Dict[Node, Set[Triple]] = {}
        self._listeners: List[ChangeListener] = []

    # -- mutation -----------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert *triple*; return ``True`` if it was not already present."""
        if triple in self._triples:
            return False
        self._triples[triple] = self._sequence
        self._sequence += 1
        self._by_subject.setdefault(triple.subject, set()).add(triple)
        self._by_property.setdefault(triple.property, set()).add(triple)
        self._by_value.setdefault(triple.value, set()).add(triple)
        self._notify("add", triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return how many were new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> None:
        """Delete *triple*; raise :class:`TripleNotFoundError` if absent."""
        if triple not in self._triples:
            raise TripleNotFoundError(f"triple not in store: {triple}")
        del self._triples[triple]
        self._index_discard(self._by_subject, triple.subject, triple)
        self._index_discard(self._by_property, triple.property, triple)
        self._index_discard(self._by_value, triple.value, triple)
        self._notify("remove", triple)

    def discard(self, triple: Triple) -> bool:
        """Delete *triple* if present; return whether it was."""
        if triple not in self._triples:
            return False
        self.remove(triple)
        return True

    def remove_matching(self, subject: Optional[Resource] = None,
                        property: Optional[Resource] = None,
                        value: Optional[Node] = None) -> int:
        """Delete every triple matching the selection; return the count."""
        victims = list(self.match(subject, property, value))
        for triple in victims:
            self.remove(triple)
        return len(victims)

    def clear(self) -> None:
        """Delete every triple (listeners see each removal)."""
        for triple in list(self._triples):
            self.remove(triple)

    # -- selection query (the TRIM query operation) --------------------------

    def match(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> Iterator[Triple]:
        """Yield triples matching the fixed fields (``None`` = wildcard).

        The narrowest applicable index drives the iteration; remaining fixed
        fields are checked per candidate.  With no field fixed this iterates
        the whole store.
        """
        candidates = self._candidates(subject, property, value)
        for triple in candidates:
            if subject is not None and triple.subject != subject:
                continue
            if property is not None and triple.property != property:
                continue
            if value is not None and triple.value != value:
                continue
            yield triple

    def select(self, subject: Optional[Resource] = None,
               property: Optional[Resource] = None,
               value: Optional[Node] = None) -> List[Triple]:
        """Like :meth:`match` but materialized, in insertion order."""
        hits = list(self.match(subject, property, value))
        hits.sort(key=self._triples.__getitem__)
        return hits

    def one(self, subject: Optional[Resource] = None,
            property: Optional[Resource] = None,
            value: Optional[Node] = None) -> Optional[Triple]:
        """Return the single matching triple, ``None`` if there is none.

        Raises :class:`LookupError` when more than one triple matches —
        use this for functional (single-valued) properties only.
        """
        found: Optional[Triple] = None
        for triple in self.match(subject, property, value):
            if found is not None:
                raise LookupError(
                    f"expected at most one triple for ({subject}, {property}, {value})")
            found = triple
        return found

    def value_of(self, subject: Resource, property: Resource) -> Optional[Node]:
        """The value of a single-valued property, or ``None``."""
        hit = self.one(subject=subject, property=property)
        return None if hit is None else hit.value

    def literal_of(self, subject: Resource, property: Resource):
        """The Python value of a single-valued literal property, or ``None``."""
        node = self.value_of(subject, property)
        if node is None:
            return None
        if not isinstance(node, Literal):
            raise LookupError(f"{subject} {property} holds a resource, not a literal")
        return node.value

    def values_of(self, subject: Resource, property: Resource) -> List[Node]:
        """All values of a property on *subject*, in insertion order."""
        return [t.value for t in self.select(subject=subject, property=property)]

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def subjects(self) -> List[Resource]:
        """Distinct subjects, in first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self._triples:
            seen.setdefault(triple.subject, None)
        return list(seen)

    def properties(self) -> List[Resource]:
        """Distinct properties, in first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self._triples:
            seen.setdefault(triple.property, None)
        return list(seen)

    def resources(self) -> List[Resource]:
        """Every resource mentioned in any position, first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self._triples:
            seen.setdefault(triple.subject, None)
            seen.setdefault(triple.property, None)
            if isinstance(triple.value, Resource):
                seen.setdefault(triple.value, None)
        return list(seen)

    def estimated_bytes(self) -> int:
        """Rough in-memory footprint of the stored statements.

        Counts the string payload of every field of every triple (URIs and
        literal reprs) plus a fixed per-triple and per-index-entry overhead.
        Used by the space-overhead benchmark (claim C-1); the absolute
        number is indicative, the *ratio* against a native representation
        is what the paper's trade-off discussion is about.
        """
        per_triple_overhead = 3 * 8 + 48   # three refs + container slots
        total = 0
        for triple in self._triples:
            total += len(triple.subject.uri)
            total += len(triple.property.uri)
            if isinstance(triple.value, Resource):
                total += len(triple.value.uri)
            else:
                total += len(str(triple.value.value))
            total += per_triple_overhead
        # Each triple appears in three index sets.
        total += 3 * len(self._triples) * 8
        return total

    # -- listeners -----------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> Callable[[], None]:
        """Register a change listener; returns an unsubscribe callable."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    # -- internals -----------------------------------------------------------

    def _candidates(self, subject: Optional[Resource],
                    property: Optional[Resource],
                    value: Optional[Node]) -> Iterable[Triple]:
        """Pick the smallest index bucket covering the fixed fields."""
        buckets: List[Set[Triple]] = []
        if subject is not None:
            buckets.append(self._by_subject.get(subject, set()))
        if property is not None:
            buckets.append(self._by_property.get(property, set()))
        if value is not None:
            buckets.append(self._by_value.get(value, set()))
        if not buckets:
            return list(self._triples)
        return min(buckets, key=len)

    @staticmethod
    def _index_discard(index: Dict, key, triple: Triple) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.discard(triple)
            if not bucket:
                del index[key]

    def _notify(self, action: str, triple: Triple) -> None:
        for listener in list(self._listeners):
            listener(action, triple)

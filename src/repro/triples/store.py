"""The indexed triple store at the core of TRIM.

Section 4.4: *"Through TRIM, the DMI can create, remove, persist (through
XML files), query, and create simple views over the underlying triples.
Query is specified by selection, where one or more of the triple fields is
fixed, and the result is a set of triples."*

:class:`TripleStore` implements exactly that surface plus the plumbing a
real store needs: three single-field hash indexes (subject / property /
value) and two compound indexes — ``(subject, property)`` and
``(property, value)`` — covering the two-field selections that dominate
DMI traffic (``value_of``/``values_of`` and type-extent scans), change
listeners (used by the undo log), a :meth:`count` statistics method that
the query planner reads bucket sizes from, a monotonically increasing
:attr:`generation` counter that views key their caches on, and a size
estimator used by the space-overhead benchmark (claim C-1).
"""

from __future__ import annotations

from typing import (Callable, Dict, Iterable, Iterator, List, Optional, Set,
                    Tuple)

from repro.errors import TransactionError, TripleNotFoundError
from repro.triples.triple import Literal, Node, Resource, Triple

#: Change listeners receive ('add' | 'remove', triple, sequence), where
#: *sequence* is the insertion-sequence number the triple holds (for adds)
#: or held (for removes).  The sequence lets undo logs and the write-ahead
#: log restore a triple to its exact original position later.
ChangeListener = Callable[[str, Triple, int], None]

#: Shared immutable empty bucket — ``_candidates`` must never allocate a
#: fresh container just to say "no hits".
_EMPTY: "frozenset[Triple]" = frozenset()


class BulkLoad:
    """Context manager for a deferred-indexing ingest (``store.bulk()``).

    While active, inserts (``add``/``add_all``/``restore``) append to the
    membership map only; index maintenance, the generation bump, and
    listener fan-out are deferred and performed in one bound-locals pass
    when the batch *flushes*.  A flush happens on normal exit, and early
    whenever an operation needs consistent indexes or ordered events: any
    selection (``match``/``select``/``count`` and friends), any removal,
    and ``add_listener``.  Membership reads (``in``, ``len``, iteration,
    ``sequence_of``) are always accurate — pending triples live in the
    membership map from the moment they are inserted.

    Exiting on an exception *aborts* instead: every insert still pending
    (that is, since the last flush) is rolled back silently — listeners
    never hear about it, so a failed ingest leaves no half-announced
    state.  Used by :class:`~repro.triples.transactions.Batch`,
    :meth:`~repro.triples.trim.TrimManager.bulk_ingest`, the streaming
    snapshot loader, and WAL recovery replay.  Bulk loads do not nest.
    """

    __slots__ = ("_store",)

    def __init__(self, store) -> None:
        self._store = store

    def __enter__(self):
        self._store._begin_bulk()
        return self._store

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._store._end_bulk()
        else:
            self._store._abort_bulk()
        return False


class TripleStore:
    """A set of triples with hash indexes on each field and field pair.

    The store has *set semantics*: adding a triple twice is a no-op and
    :meth:`add` reports whether the triple was new.  Iteration order is the
    insertion order of currently present triples, which keeps persisted
    files and test output deterministic.

    Every mutation bumps :attr:`generation`, so readers (notably
    :class:`~repro.triples.views.View`) can cache derived results and
    invalidate them with a single integer comparison.
    """

    def __init__(self) -> None:
        # Membership map: triple -> insertion sequence number.  The dict
        # keeps insertion order for iteration; the sequence numbers let
        # selection results be order-restored in O(k log k) instead of
        # re-scanning the whole store.
        self._triples: Dict[Triple, int] = {}
        self._sequence = 0
        self._generation = 0
        self._by_subject: Dict[Resource, Set[Triple]] = {}
        self._by_property: Dict[Resource, Set[Triple]] = {}
        self._by_value: Dict[Node, Set[Triple]] = {}
        # Compound indexes: the two pairs that real traffic fixes together.
        # (subject, value) without property is rare enough to stay on the
        # single-field indexes.
        self._by_subject_property: Dict[Tuple[Resource, Resource], Set[Triple]] = {}
        self._by_property_value: Dict[Tuple[Resource, Node], Set[Triple]] = {}
        self._listeners: List[ChangeListener] = []
        # Bulk-load state: None = normal mode; a list = deferred inserts
        # awaiting their index/listener flush (see BulkLoad).
        self._pending: Optional[List[Tuple[Triple, int]]] = None
        self._bulk_seq_mark = 0

    # -- bulk loading --------------------------------------------------------

    def bulk(self) -> BulkLoad:
        """A deferred-indexing ingest context (see :class:`BulkLoad`)."""
        return BulkLoad(self)

    @property
    def in_bulk(self) -> bool:
        """Whether a :meth:`bulk` load is currently active."""
        return self._pending is not None

    def _begin_bulk(self) -> None:
        if self._pending is not None:
            raise TransactionError("bulk load already active on this store")
        self._pending = []
        self._bulk_seq_mark = self._sequence

    def _end_bulk(self) -> None:
        self._flush_bulk()
        self._pending = None

    def _abort_bulk(self) -> None:
        pending, self._pending = self._pending, None
        for t, _ in pending:
            del self._triples[t]
        # Sequences handed out since the last flush all belong to the
        # aborted inserts, so the counter rolls straight back.
        self._sequence = self._bulk_seq_mark

    def _flush_bulk(self) -> None:
        """Index and announce every pending insert, in insertion order."""
        pending = self._pending
        if not pending:
            self._bulk_seq_mark = self._sequence
            return
        self._pending = []
        by_s, by_p, by_v = self._by_subject, self._by_property, self._by_value
        by_sp, by_pv = self._by_subject_property, self._by_property_value
        for t, _ in pending:
            by_s.setdefault(t.subject, set()).add(t)
            by_p.setdefault(t.property, set()).add(t)
            by_v.setdefault(t.value, set()).add(t)
            by_sp.setdefault((t.subject, t.property), set()).add(t)
            by_pv.setdefault((t.property, t.value), set()).add(t)
        self._generation += len(pending)
        self._bulk_seq_mark = self._sequence
        if self._listeners:
            for t, sequence in pending:
                self._notify("add", t, sequence)

    # -- mutation -----------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert *triple*; return ``True`` if it was not already present."""
        if triple in self._triples:
            return False
        sequence = self._sequence
        self._triples[triple] = sequence
        self._sequence += 1
        if self._pending is not None:
            self._pending.append((triple, sequence))
            return True
        self._generation += 1
        self._index_insert(triple)
        self._notify("add", triple, sequence)
        return True

    def restore(self, triple: Triple, sequence: int) -> bool:
        """Insert *triple* at a specific insertion-sequence position.

        The inverse of :meth:`remove` for undo/redo and WAL replay: the
        triple re-enters the store with the *original* sequence number, so
        :meth:`select` order, iteration order, and persisted files match
        the pre-removal state exactly.  A no-op (returning ``False``) when
        the triple is already present.  Restoring below the current tail
        rebuilds the ordered membership map — O(n log n), acceptable on
        the undo/recovery paths this exists for.
        """
        if triple in self._triples:
            return False
        out_of_order = bool(self._triples) and \
            sequence < next(reversed(self._triples.values()))
        self._triples[triple] = sequence
        if out_of_order:
            self._triples = dict(
                sorted(self._triples.items(), key=lambda item: item[1]))
        self._sequence = max(self._sequence, sequence + 1)
        if self._pending is not None:
            self._pending.append((triple, sequence))
            return True
        self._generation += 1
        self._index_insert(triple)
        self._notify("add", triple, sequence)
        return True

    def sequence_of(self, triple: Triple) -> int:
        """The insertion-sequence number of a present triple.

        Raises :class:`TripleNotFoundError` when absent.  Snapshots use
        this to persist exact ordering (see
        :func:`repro.triples.persistence.dumps` with sequences).
        """
        try:
            return self._triples[triple]
        except KeyError:
            raise TripleNotFoundError(f"triple not in store: {triple}") from None

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return how many were new.

        Batch fast path: indexes and locals are bound once, each new triple
        costs one membership probe plus five bucket inserts, and the
        listener fan-out is skipped entirely when nobody is subscribed.
        Listeners (when present) still see every insertion individually, so
        undo logs and batches observe the same events as N ``add`` calls.
        """
        members = self._triples
        if self._pending is not None:
            # Bulk mode: membership append only; indexes and listener
            # fan-out land in one pass at the flush.
            pending = self._pending
            added = 0
            for t in triples:
                if t in members:
                    continue
                members[t] = self._sequence
                pending.append((t, self._sequence))
                self._sequence += 1
                added += 1
            return added
        by_s, by_p, by_v = self._by_subject, self._by_property, self._by_value
        by_sp, by_pv = self._by_subject_property, self._by_property_value
        notify = self._notify if self._listeners else None
        added = 0
        for t in triples:
            if t in members:
                continue
            sequence = self._sequence
            members[t] = sequence
            self._sequence += 1
            by_s.setdefault(t.subject, set()).add(t)
            by_p.setdefault(t.property, set()).add(t)
            by_v.setdefault(t.value, set()).add(t)
            by_sp.setdefault((t.subject, t.property), set()).add(t)
            by_pv.setdefault((t.property, t.value), set()).add(t)
            added += 1
            if notify is not None:
                self._generation += 1
                notify("add", t, sequence)
        if notify is None:
            self._generation += added
        return added

    def remove(self, triple: Triple) -> None:
        """Delete *triple*; raise :class:`TripleNotFoundError` if absent."""
        if self._pending:
            self._flush_bulk()
        if triple not in self._triples:
            raise TripleNotFoundError(f"triple not in store: {triple}")
        sequence = self._triples.pop(triple)
        self._generation += 1
        self._index_discard(self._by_subject, triple.subject, triple)
        self._index_discard(self._by_property, triple.property, triple)
        self._index_discard(self._by_value, triple.value, triple)
        self._index_discard(self._by_subject_property,
                            (triple.subject, triple.property), triple)
        self._index_discard(self._by_property_value,
                            (triple.property, triple.value), triple)
        self._notify("remove", triple, sequence)

    def discard(self, triple: Triple) -> bool:
        """Delete *triple* if present; return whether it was."""
        if triple not in self._triples:
            return False
        self.remove(triple)
        return True

    def remove_matching(self, subject: Optional[Resource] = None,
                        property: Optional[Resource] = None,
                        value: Optional[Node] = None) -> int:
        """Delete every triple matching the selection; return the count.

        Batched removal fast path: the victims are materialized once
        (match() iterates live index buckets, so this must happen before
        the first removal mutates them), then dropped with bound locals —
        one membership pop plus five bucket discards each, instead of a
        full :meth:`remove` call per triple.  Listeners still see every
        removal individually, in match order.
        """
        victims = list(self.match(subject, property, value))
        if not victims:
            return 0
        members = self._triples
        by_s, by_p, by_v = self._by_subject, self._by_property, self._by_value
        by_sp, by_pv = self._by_subject_property, self._by_property_value
        discard = self._index_discard
        notify = self._notify if self._listeners else None
        for t in victims:
            sequence = members.pop(t)
            discard(by_s, t.subject, t)
            discard(by_p, t.property, t)
            discard(by_v, t.value, t)
            discard(by_sp, (t.subject, t.property), t)
            discard(by_pv, (t.property, t.value), t)
            self._generation += 1
            if notify is not None:
                notify("remove", t, sequence)
        return len(victims)

    def clear(self) -> None:
        """Delete every triple (listeners see each removal).

        One-pass reset: the membership map and all five indexes are dropped
        wholesale instead of N ``remove`` calls doing per-bucket cleanup.
        Listeners are still notified once per removed triple (in insertion
        order), so undo logs can restore the contents.
        """
        if self._pending:
            self._flush_bulk()
        victims = list(self._triples.items())
        if not victims:
            return
        self._triples = {}
        self._by_subject = {}
        self._by_property = {}
        self._by_value = {}
        self._by_subject_property = {}
        self._by_property_value = {}
        self._generation += len(victims)
        for triple, sequence in victims:
            self._notify("remove", triple, sequence)

    # -- selection query (the TRIM query operation) --------------------------

    def match(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> Iterator[Triple]:
        """Yield triples matching the fixed fields (``None`` = wildcard).

        The narrowest applicable index drives the iteration — an exact
        compound bucket when ``(subject, property)`` or
        ``(property, value)`` are fixed together, a membership probe when
        all three are fixed — and any remaining fixed field is checked per
        candidate.  With no field fixed this iterates the whole store.

        During a :meth:`bulk` load any pending inserts are flushed first,
        so selections never observe stale indexes.
        """
        if self._pending:
            self._flush_bulk()
        if subject is not None and property is not None and value is not None:
            probe = Triple(subject, property, value)
            if probe in self._triples:
                yield probe
            return
        if subject is not None and property is not None:
            # Exact bucket: no residual checks needed.
            yield from self._by_subject_property.get((subject, property), _EMPTY)
            return
        if property is not None and value is not None:
            yield from self._by_property_value.get((property, value), _EMPTY)
            return
        candidates = self._candidates(subject, property, value)
        for triple in candidates:
            if subject is not None and triple.subject != subject:
                continue
            if property is not None and triple.property != property:
                continue
            if value is not None and triple.value != value:
                continue
            yield triple

    def select(self, subject: Optional[Resource] = None,
               property: Optional[Resource] = None,
               value: Optional[Node] = None) -> List[Triple]:
        """Like :meth:`match` but materialized, in insertion order."""
        hits = list(self.match(subject, property, value))
        hits.sort(key=self._triples.__getitem__)
        return hits

    def one(self, subject: Optional[Resource] = None,
            property: Optional[Resource] = None,
            value: Optional[Node] = None) -> Optional[Triple]:
        """Return the single matching triple, ``None`` if there is none.

        Raises :class:`LookupError` when more than one triple matches —
        use this for functional (single-valued) properties only.
        """
        found: Optional[Triple] = None
        for triple in self.match(subject, property, value):
            if found is not None:
                raise LookupError(
                    f"expected at most one triple for ({subject}, {property}, {value})")
            found = triple
        return found

    def value_of(self, subject: Resource, property: Resource) -> Optional[Node]:
        """The value of a single-valued property, or ``None``."""
        hit = self.one(subject=subject, property=property)
        return None if hit is None else hit.value

    def literal_of(self, subject: Resource, property: Resource):
        """The Python value of a single-valued literal property, or ``None``."""
        node = self.value_of(subject, property)
        if node is None:
            return None
        if not isinstance(node, Literal):
            raise LookupError(f"{subject} {property} holds a resource, not a literal")
        return node.value

    def values_of(self, subject: Resource, property: Resource) -> List[Node]:
        """All values of a property on *subject*, in insertion order."""
        return [t.value for t in self.select(subject=subject, property=property)]

    # -- statistics (read by the query planner) -------------------------------

    @property
    def generation(self) -> int:
        """Monotonic mutation counter: bumps on every add and remove.

        Equal generations guarantee identical contents, so any derived
        result (view closures, plans, materialized selections) can be
        cached against this number.
        """
        return self._generation

    def count(self, subject: Optional[Resource] = None,
              property: Optional[Resource] = None,
              value: Optional[Node] = None) -> int:
        """How many triples match the selection, without materializing it.

        Exact and O(1) for every combination an index covers: no fields
        (store size), any single field, ``(subject, property)``,
        ``(property, value)``, and all three (membership probe).  The one
        uncovered combination, ``(subject, value)``, returns the smaller
        single-field bucket size — an upper bound, which is the right
        direction for a planner estimate.
        """
        if self._pending:
            self._flush_bulk()
        if subject is not None and property is not None and value is not None:
            return 1 if Triple(subject, property, value) in self._triples else 0
        if subject is not None and property is not None:
            return len(self._by_subject_property.get((subject, property), _EMPTY))
        if property is not None and value is not None:
            return len(self._by_property_value.get((property, value), _EMPTY))
        if subject is not None and value is not None:
            return min(len(self._by_subject.get(subject, _EMPTY)),
                       len(self._by_value.get(value, _EMPTY)))
        if subject is not None:
            return len(self._by_subject.get(subject, _EMPTY))
        if property is not None:
            return len(self._by_property.get(property, _EMPTY))
        if value is not None:
            return len(self._by_value.get(value, _EMPTY))
        return len(self._triples)

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def subjects(self) -> List[Resource]:
        """Distinct subjects, in first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self._triples:
            seen.setdefault(triple.subject, None)
        return list(seen)

    def properties(self) -> List[Resource]:
        """Distinct properties, in first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self._triples:
            seen.setdefault(triple.property, None)
        return list(seen)

    def resources(self) -> List[Resource]:
        """Every resource mentioned in any position, first-appearance order."""
        seen: Dict[Resource, None] = {}
        for triple in self._triples:
            seen.setdefault(triple.subject, None)
            seen.setdefault(triple.property, None)
            if isinstance(triple.value, Resource):
                seen.setdefault(triple.value, None)
        return list(seen)

    def estimated_bytes(self) -> int:
        """Rough in-memory footprint of the stored statements.

        Counts the string payload of every field of every triple (URIs and
        literal reprs) plus a fixed per-triple and per-index-entry overhead
        — five index entries per triple (three single-field, two compound).
        Used by the space-overhead benchmark (claim C-1); the absolute
        number is indicative, the *ratio* against a native representation
        is what the paper's trade-off discussion is about.
        """
        per_triple_overhead = 3 * 8 + 48   # three refs + container slots
        total = 0
        for triple in self._triples:
            total += len(triple.subject.uri)
            total += len(triple.property.uri)
            if isinstance(triple.value, Resource):
                total += len(triple.value.uri)
            else:
                total += len(str(triple.value.value))
            total += per_triple_overhead
        # Each triple appears in five index sets (3 single + 2 compound).
        total += 5 * len(self._triples) * 8
        return total

    # -- listeners -----------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> Callable[[], None]:
        """Register a change listener; returns an unsubscribe callable.

        Listeners are called *after* each mutation as
        ``listener(action, triple, sequence)`` with ``action`` one of
        ``'add'``/``'remove'`` and ``sequence`` the triple's insertion
        number (see :data:`ChangeListener`).  Both store implementations
        honour the same contract — pinned by the parity suite.

        Subscribing during a :meth:`bulk` load flushes pending inserts
        first, so a new listener never receives events for mutations that
        happened before it attached.
        """
        if self._pending:
            self._flush_bulk()
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    # -- internals -----------------------------------------------------------

    def _candidates(self, subject: Optional[Resource],
                    property: Optional[Resource],
                    value: Optional[Node]) -> Iterable[Triple]:
        """Pick the smallest index bucket covering the fixed fields.

        With no field fixed this returns the live dict view (no copy);
        callers that mutate while consuming must snapshot first, as
        :meth:`remove_matching` does.
        """
        buckets: List[Iterable[Triple]] = []
        if subject is not None:
            buckets.append(self._by_subject.get(subject, _EMPTY))
        if property is not None:
            buckets.append(self._by_property.get(property, _EMPTY))
        if value is not None:
            buckets.append(self._by_value.get(value, _EMPTY))
        if not buckets:
            return self._triples.keys()
        return min(buckets, key=len)

    def _index_insert(self, triple: Triple) -> None:
        self._by_subject.setdefault(triple.subject, set()).add(triple)
        self._by_property.setdefault(triple.property, set()).add(triple)
        self._by_value.setdefault(triple.value, set()).add(triple)
        self._by_subject_property.setdefault(
            (triple.subject, triple.property), set()).add(triple)
        self._by_property_value.setdefault(
            (triple.property, triple.value), set()).add(triple)

    @staticmethod
    def _index_discard(index: Dict, key, triple: Triple) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.discard(triple)
            if not bucket:
                del index[key]

    def _notify(self, action: str, triple: Triple, sequence: int) -> None:
        for listener in list(self._listeners):
            listener(action, triple, sequence)

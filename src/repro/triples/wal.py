"""Write-ahead logging and crash-safe durability for TRIM stores.

The paper's TRIM must "persist (through XML files)" the superimposed
layer, but a full-file dump on every mutation is neither affordable at
scale nor crash-safe.  This module adds the classic durability pair:

- :class:`WriteAheadLog` — an append-only binary log.  It subscribes to a
  store's change listeners and appends every add/remove as a checksummed,
  length-prefixed record carrying the triple, its insertion-sequence
  number, and the action.  :meth:`WriteAheadLog.commit` closes a *group*
  (the WAL's unit of atomicity, aligned with user-level operations) by
  appending a commit record and fsyncing.
- :class:`Durability` — the orchestrator wired through
  :class:`~repro.triples.trim.TrimManager`'s ``durable=`` mode: recovery
  on attach, logging while attached, and snapshot compaction (an atomic
  checksummed snapshot via :func:`repro.triples.persistence.save_snapshot`,
  then a log reset) every *compact_every* groups.
- :func:`recover` — load the latest valid snapshot and replay the WAL
  tail.  Replay stops at the first corrupt or torn record (everything
  before it is kept, everything after discarded) and only *complete*
  groups are applied, so a crash at any byte offset yields exactly the
  state of the last committed group — the property the crash-injection
  suite (``tests/test_triples_wal.py``) asserts for randomized kill
  points.

Record framing::

    file   := MAGIC record*
    record := u32 payload-length | u32 crc32(payload) | payload
    payload:= 'A'|'R' u64 sequence  str subject  str property  value
            | 'C' u64 group-number
            | 'P' u64 txn  u32 participant-count  u64 epoch
    value  := 'r' str uri | 's'|'i'|'f'|'b' str encoded-literal
    str    := u32 length | utf-8 bytes

``'P'`` is the two-phase-commit *prepare* record (DESIGN.md §11): a
multi-shard batch writes the group's changes plus a prepare record to
every participating shard's WAL (durably, but without the ``'C'``
boundary), then records the commit/abort decision in the coordinator's
meta-WAL, then *fences* each participant with a normal ``'C'``.  A WAL
whose tail is a prepared-but-unfenced group is in doubt: plain
:func:`recover` discards it (matching a crash before the decision), and
:class:`~repro.triples.sharded.ShardedDurability` consults the meta-WAL
first and finishes the fence when the decision was commit.

Group numbers are monotonic and survive compaction: the snapshot header
records the group it covers, and replay skips any logged group at or
below it — so a crash *between* snapshot rename and log reset cannot
double-apply changes.

Compaction comes in two grades.  A **full rewrite** folds the whole
store into a fresh snapshot — cost proportional to store size, which
would stall the group-commit flusher as the store grows.  The routine
path is therefore **delta compaction**: the committed WAL groups are
flattened into one fsynced segment appended to a side log
(``deltas.slim``), and the WAL alone is truncated — cost proportional to
the changes since the last compaction, independent of store size.
Recovery folds state in snapshot → delta segments → WAL order, skipping
anything at or below the group each layer already covers; the same
monotone-group argument that makes snapshot compaction crash-safe at
every intermediate step applies unchanged (append is fsynced before the
WAL truncate, so a crash in between merely leaves covered groups in the
WAL that replay skips).  A size-ratio trigger (``delta_ratio``) promotes
to a full rewrite once the delta log outgrows the snapshot, bounding
recovery reads.

Concurrency (DESIGN.md §10): the log's buffer/offset state is guarded by
an internal lock, so concurrent appenders and committers serialize
correctly.  :class:`Durability` can additionally run a background
*group-commit flusher* (``sync='group'`` or ``'async'``): committers
enqueue a flush request and either wait for the batched fsync that
covers them (durable ack) or return immediately; racing committers
coalesce into far fewer fsyncs than commits.  Lock ordering across the
stack is store lock -> Durability meta lock -> WAL lock, never reversed.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from typing import IO, Dict, List, NamedTuple, Optional, Tuple

from repro.errors import PersistenceError
from repro.triples import persistence
from repro.triples.namespaces import NamespaceRegistry
from repro.triples.store import TripleStore
from repro.triples.transactions import Change
from repro.triples.triple import Literal, Resource, Triple

MAGIC = b"SLIMWAL1"
DELTA_MAGIC = b"SLIMDLT1"

SNAPSHOT_FILE = "snapshot.slim"
WAL_FILE = "wal.log"
DELTAS_FILE = "deltas.slim"

_FRAME = struct.Struct(">II")   # payload length, crc32
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")

_LITERAL_TAGS = {"string": b"s", "integer": b"i", "float": b"f",
                 "boolean": b"b"}
_TAG_TYPES = {tag: name for name, tag in _LITERAL_TAGS.items()}


# -- record encoding ---------------------------------------------------------

def _pack_str(text: str) -> bytes:
    # surrogatepass: persistence v2 round-trips lone surrogates in literals,
    # so the log must be able to carry them too (plain UTF-8 would raise).
    data = text.encode("utf-8", "surrogatepass")
    return _U32.pack(len(data)) + data


def _unpack_str(payload: bytes, offset: int) -> Tuple[str, int]:
    (length,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    end = offset + length
    if end > len(payload):
        raise PersistenceError("WAL string field overruns record")
    return payload[offset:end].decode("utf-8", "surrogatepass"), end


def encode_change(change: Change) -> bytes:
    """Serialize one add/remove as a WAL record payload."""
    kind = b"A" if change.action == "add" else b"R"
    triple = change.triple
    parts = [kind, _U64.pack(change.sequence),
             _pack_str(triple.subject.uri), _pack_str(triple.property.uri)]
    if isinstance(triple.value, Resource):
        parts.append(b"r" + _pack_str(triple.value.uri))
    else:
        tag = _LITERAL_TAGS[triple.value.type_name]
        parts.append(tag + _pack_str(
            persistence._encode_literal(triple.value.value)))
    return b"".join(parts)


def encode_commit(group: int) -> bytes:
    """Serialize a group-boundary (commit) record payload."""
    return b"C" + _U64.pack(group)


class PrepareInfo(NamedTuple):
    """The payload of a 2PC prepare record."""

    txn: int            #: coordinator transaction number
    shard_count: int    #: how many shards participate in the transaction
    epoch: int          #: store incarnation (guards against stale layouts)


def encode_prepare(info: PrepareInfo) -> bytes:
    """Serialize a 2PC prepare record payload."""
    return (b"P" + _U64.pack(info.txn) + _U32.pack(info.shard_count)
            + _U64.pack(info.epoch))


class WalRecord(NamedTuple):
    """One decoded WAL record: a change, a group boundary, or a prepare."""

    kind: str                      #: ``'change'``, ``'commit'``, ``'prepare'``
    change: Optional[Change]       #: set for change records
    group: Optional[int]           #: set for commit records
    prepare: Optional[PrepareInfo] = None  #: set for prepare records


def decode_record(payload: bytes) -> WalRecord:
    """Decode a record payload; raises :class:`PersistenceError` if garbled."""
    try:
        return _decode_record(payload)
    except PersistenceError:
        raise
    except (struct.error, UnicodeDecodeError, ValueError, KeyError) as exc:
        # Short fields, bad UTF-8, unparseable literals: all just "garbled".
        raise PersistenceError(f"garbled WAL record: {exc}") from exc


def _decode_record(payload: bytes) -> WalRecord:
    if not payload:
        raise PersistenceError("empty WAL record")
    kind = payload[:1]
    if kind == b"C":
        if len(payload) != 1 + _U64.size:
            raise PersistenceError("bad WAL commit record length")
        (group,) = _U64.unpack_from(payload, 1)
        return WalRecord("commit", None, group)
    if kind == b"P":
        if len(payload) != 1 + _U64.size + _U32.size + _U64.size:
            raise PersistenceError("bad WAL prepare record length")
        (txn,) = _U64.unpack_from(payload, 1)
        (shard_count,) = _U32.unpack_from(payload, 1 + _U64.size)
        (epoch,) = _U64.unpack_from(payload, 1 + _U64.size + _U32.size)
        return WalRecord("prepare", None, None,
                         PrepareInfo(txn, shard_count, epoch))
    if kind not in (b"A", b"R"):
        raise PersistenceError(f"unknown WAL record kind: {kind!r}")
    (sequence,) = _U64.unpack_from(payload, 1)
    offset = 1 + _U64.size
    subject, offset = _unpack_str(payload, offset)
    prop, offset = _unpack_str(payload, offset)
    if offset >= len(payload):
        raise PersistenceError("WAL record missing value field")
    tag = payload[offset:offset + 1]
    text, offset = _unpack_str(payload, offset + 1)
    if offset != len(payload):
        raise PersistenceError("trailing bytes in WAL record")
    if tag == b"r":
        value = Resource(text)
    elif tag in _TAG_TYPES:
        value = Literal(persistence._decode_literal(_TAG_TYPES[tag], text))
    else:
        raise PersistenceError(f"unknown WAL value tag: {tag!r}")
    action = "add" if kind == b"A" else "remove"
    return WalRecord("change", Change(action, Triple(
        Resource(subject), Resource(prop), value), sequence), None)


# -- scanning ----------------------------------------------------------------

class PreparedGroup(NamedTuple):
    """A prepared-but-unfenced 2PC group at the tail of a WAL."""

    info: PrepareInfo           #: txn / participant count / epoch
    changes: List[Change]       #: the group's changes (up to the P record)
    end_offset: int             #: byte offset just past the prepare record


class WalScan(NamedTuple):
    """Result of reading a WAL file up to its last valid record."""

    groups: List[Tuple[int, List[Change]]]  #: complete (committed) groups
    pending: List[Change]       #: changes after the last commit (discarded)
    valid_end: int              #: byte offset of the last valid record's end
    total_bytes: int            #: file size as found on disk
    last_group: int             #: highest committed group number (0 if none)
    committed_end: int          #: byte offset of the last commit record's end
    prepared: Optional[PreparedGroup] = None  #: in-doubt tail group, if any


def scan_wal(path: str) -> WalScan:
    """Read a WAL file, truncating (logically) at the first corrupt record.

    Torn frames, short payloads, checksum mismatches, and garbled record
    bodies all end the scan at the last fully valid record instead of
    raising — recovery keeps every complete group before the damage.
    A missing file or a damaged magic header scans as empty.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return WalScan([], [], 0, 0, 0, 0)
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    total = len(data)
    if data[:len(MAGIC)] != MAGIC:
        return WalScan([], [], 0, total, 0, 0)
    groups: List[Tuple[int, List[Change]]] = []
    pending: List[Change] = []
    offset = len(MAGIC)
    valid_end = offset
    committed_end = offset
    last_group = 0
    # (info, change-count-at-mark, end-offset) of the latest prepare record
    # since the last commit; a following 'C' resolves it (the group is just
    # committed), so only a *tail* prepare surfaces as in-doubt.
    prepare_mark: Optional[Tuple[PrepareInfo, int, int]] = None
    while offset + _FRAME.size <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = decode_record(payload)
        except PersistenceError:
            break
        if record.kind == "commit":
            groups.append((record.group, pending))
            pending = []
            prepare_mark = None
            last_group = record.group
            committed_end = end
        elif record.kind == "prepare":
            prepare_mark = (record.prepare, len(pending), end)
        else:
            pending.append(record.change)
        offset = end
        valid_end = end
    prepared = None
    if prepare_mark is not None:
        info, n_changes, mark_end = prepare_mark
        # Changes recorded after the prepare (protocol violation or torn
        # session) stay in `pending` and are discarded like any other
        # uncommitted tail; the prepared group is exactly what the prepare
        # record fenced in.
        prepared = PreparedGroup(info, pending[:n_changes], mark_end)
    return WalScan(groups, pending, valid_end, total, last_group,
                   committed_end, prepared)


# -- delta segments ----------------------------------------------------------

class DeltaSegment(NamedTuple):
    """One flattened run of committed groups in the delta log."""

    from_group: int         #: first WAL group folded into this segment
    to_group: int           #: last WAL group folded into this segment
    changes: List[Change]   #: the groups' changes, in commit order


class DeltaScan(NamedTuple):
    """Result of reading a delta log up to its last valid segment."""

    segments: List[DeltaSegment]  #: valid segments, in append order
    valid_end: int                #: byte offset of the last valid segment's end
    total_bytes: int              #: file size as found on disk
    covered_group: int            #: highest ``to_group`` seen (0 if none)


def scan_deltas(path: str) -> DeltaScan:
    """Read a delta log, truncating (logically) at the first bad segment.

    Same prefix semantics as :func:`scan_wal`: torn frames, checksum
    mismatches, garbled bodies, and non-monotone group ranges all end
    the scan at the last fully valid segment — everything before the
    damage is kept (the groups after it are still in the WAL, because
    the WAL is only truncated once the covering segment is durable).
    A missing file or a damaged magic header scans as empty.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return DeltaScan([], 0, 0, 0)
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    total = len(data)
    if data[:len(DELTA_MAGIC)] != DELTA_MAGIC:
        return DeltaScan([], 0, total, 0)
    segments: List[DeltaSegment] = []
    offset = len(DELTA_MAGIC)
    valid_end = offset
    covered = 0
    while offset + _FRAME.size <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            segment = _decode_delta_segment(payload)
        except PersistenceError:
            break
        if segment.from_group <= covered or segment.to_group < segment.from_group:
            break  # ranges must be disjoint and monotone
        segments.append(segment)
        covered = segment.to_group
        offset = end
        valid_end = end
    return DeltaScan(segments, valid_end, total, covered)


def encode_delta_segment(from_group: int, to_group: int,
                         changes: List[Change]) -> bytes:
    """Serialize one delta-segment payload (framed by the caller)."""
    parts = [b"S", _U64.pack(from_group), _U64.pack(to_group),
             _U32.pack(len(changes))]
    for change in changes:
        payload = encode_change(change)
        parts.append(_U32.pack(len(payload)))
        parts.append(payload)
    return b"".join(parts)


def _decode_delta_segment(payload: bytes) -> DeltaSegment:
    try:
        if payload[:1] != b"S":
            raise PersistenceError(
                f"unknown delta segment kind: {payload[:1]!r}")
        (from_group,) = _U64.unpack_from(payload, 1)
        (to_group,) = _U64.unpack_from(payload, 1 + _U64.size)
        (count,) = _U32.unpack_from(payload, 1 + 2 * _U64.size)
        offset = 1 + 2 * _U64.size + _U32.size
        changes: List[Change] = []
        for _ in range(count):
            (length,) = _U32.unpack_from(payload, offset)
            offset += _U32.size
            end = offset + length
            if end > len(payload):
                raise PersistenceError("delta change overruns segment")
            record = decode_record(payload[offset:end])
            if record.kind != "change":
                raise PersistenceError(
                    f"non-change record in delta segment: {record.kind}")
            changes.append(record.change)
            offset = end
        if offset != len(payload):
            raise PersistenceError("trailing bytes in delta segment")
    except struct.error as exc:
        raise PersistenceError(f"garbled delta segment: {exc}") from exc
    return DeltaSegment(from_group, to_group, changes)


# -- the log -----------------------------------------------------------------

def _frame(payload: bytes) -> bytes:
    """Wrap a record payload in its length+crc32 frame."""
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


class WriteAheadLog:
    """Append-only checksummed change log with group boundaries.

    Opens (or creates) the file at *path*, truncating it back to the end
    of its last commit record.  That discards both the corrupt tail a
    crash may have torn *and* any valid-but-uncommitted change records a
    crashed session left behind — recovery ignores those, so keeping
    them would let the next commit's boundary record fence a dead
    session's changes into a committed group.  ``fsync=False`` trades
    durability for speed in benchmarks and tests; real durability keeps
    the default.

    Writes use *group commit*: :meth:`append` only frames the record
    into an in-memory buffer, and :meth:`commit` writes the whole group
    (records + boundary) with a single ``write``/``flush``/``fsync``.
    Per-group cost is therefore one syscall round trip regardless of
    group size, which is what makes bulk ingest run at hardware speed.
    A commit that fails mid-flush rewinds the file to the end of the
    last durable group and keeps the buffer intact so the caller can
    retry; if even the rewind fails the log closes itself rather than
    risk a later boundary record fencing half-written frames into a
    committed group.

    All buffer/offset state is guarded by an internal re-entrant lock:
    appenders and committers on different threads serialize, and an
    append can never land between a commit's buffer snapshot and its
    buffer clear.
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self._fsync = fsync
        self._lock = threading.RLock()
        self._sync_count = 0
        scan = scan_wal(path)
        self._group = scan.last_group
        self._dirty = 0
        self._buffer: List[bytes] = []
        # 2PC staging: how many leading buffer entries (and how many bytes)
        # the last prepare() wrote durably to disk.  Those frames stay in
        # the buffer until fence()/abort_prepared() resolves them, so a
        # failed fence can be retried without re-reading the file.
        self._prepared_count = 0
        self._prepared_bytes = 0
        self._file: Optional[IO[bytes]] = None
        try:
            if scan.committed_end == 0:
                self._file = open(path, "wb")
                self._file.write(MAGIC)
                self._good_end = len(MAGIC)
            else:
                self._file = open(path, "r+b")
                self._file.truncate(scan.committed_end)
                self._file.seek(scan.committed_end)
                self._good_end = scan.committed_end
            self._flush()
        except OSError as exc:
            raise PersistenceError(f"cannot open WAL {path}: {exc}") from exc

    @property
    def group(self) -> int:
        """The highest group number committed to this log."""
        return self._group

    @property
    def dirty(self) -> int:
        """How many changes have been appended since the last commit."""
        return self._dirty

    @property
    def sync_count(self) -> int:
        """How many group-commit fsyncs this log has issued (0 when
        ``fsync=False``; housekeeping syncs on open/reset are not counted).

        The concurrency benchmark reads this to show group-commit
        coalescing: with racing committers, fsyncs stay well below the
        number of commit requests.
        """
        return self._sync_count

    @property
    def prepared(self) -> bool:
        """Whether a 2PC-prepared group is awaiting its fence/abort."""
        return self._prepared_count > 0

    def append(self, change: Change) -> None:
        """Buffer one add/remove record (written by :meth:`commit`)."""
        with self._lock:
            self._require_open()
            self._buffer.append(_frame(encode_change(change)))
            self._dirty += 1

    # -- two-phase commit (multi-shard groups; see ShardedDurability) --------

    def prepare(self, info: PrepareInfo) -> bool:
        """Phase 1: durably stage the current group behind a prepare record.

        Writes every buffered change plus a ``'P'`` record carrying
        *info*, flushes, and fsyncs — but writes **no** commit boundary,
        so the group stays invisible to plain recovery.  The buffered
        frames are kept until :meth:`fence` or :meth:`abort_prepared`
        resolves the transaction, which makes a failed fence retryable.
        Returns ``False`` (writing nothing) when the buffer is empty.

        On an I/O error the file is rewound to the last durable group and
        the buffer is kept, exactly like a failed :meth:`commit`.
        """
        with self._lock:
            file = self._require_open()
            if self._prepared_count:
                raise PersistenceError(
                    f"WAL {self.path} already holds a prepared group")
            if not self._buffer:
                return False
            staged = list(self._buffer)
            data = b"".join(staged) + _frame(encode_prepare(info))
            try:
                file.write(data)
                file.flush()
                if self._fsync:
                    os.fsync(file.fileno())
                    self._sync_count += 1
            except OSError as exc:
                self._rewind()
                raise PersistenceError(
                    f"cannot prepare WAL group in {self.path}: {exc}") from exc
            self._prepared_count = len(staged)
            self._prepared_bytes = len(data)
            return True

    def fence(self) -> int:
        """Phase 2: commit the prepared group with a boundary record.

        Appends the ``'C'`` record (one write + flush + fsync), bumps the
        group counter, and drops the prepared frames from the buffer —
        changes appended *after* the prepare stay buffered for the next
        group.  On an I/O error the torn boundary bytes are truncated
        away but the prepared group stays on disk and staged, so the
        fence can be retried; the decision record in the coordinator's
        meta-WAL — not this boundary — is what makes the transaction
        durable, and recovery re-fences from it.
        """
        with self._lock:
            file = self._require_open()
            if not self._prepared_count:
                raise PersistenceError(
                    f"no prepared group to fence in WAL {self.path}")
            group = self._group + 1
            data = _frame(encode_commit(group))
            prepared_end = self._good_end + self._prepared_bytes
            try:
                file.write(data)
                file.flush()
                if self._fsync:
                    os.fsync(file.fileno())
                    self._sync_count += 1
            except OSError as exc:
                # Drop only the torn boundary; keep the prepared bytes.
                try:
                    file.seek(prepared_end)
                    file.truncate(prepared_end)
                except OSError:
                    self._file = None
                    try:
                        file.close()
                    except OSError:
                        pass
                raise PersistenceError(
                    f"cannot fence WAL group in {self.path}: {exc}") from exc
            self._good_end = prepared_end + len(data)
            self._group = group
            del self._buffer[:self._prepared_count]
            self._dirty -= self._prepared_count
            self._prepared_count = 0
            self._prepared_bytes = 0
            return group

    def abort_prepared(self) -> None:
        """Roll a prepared group back off the disk (decision was abort).

        Truncates the file to the end of the last durable group; the
        group's frames stay buffered, so the caller may still commit or
        prepare them again later.  Fails closed when the truncate fails,
        like :meth:`_rewind`.
        """
        with self._lock:
            if not self._prepared_count:
                return
            self._require_open()
            self._prepared_count = 0
            self._prepared_bytes = 0
            self._rewind()
            if self._file is None:
                raise PersistenceError(
                    f"WAL {self.path} failed closed aborting a prepared group")

    def commit(self) -> int:
        """Close the current group: one write + flush + fsync for all of it.

        Returns the group number of the last committed group.  Changes
        appended after the previous commit only become recoverable now —
        a crash before the boundary record hits disk discards the whole
        partial group.  With an *empty* buffer this is a no-op (no
        boundary record, no group bump, no fsync): there is nothing to
        make durable, and the background flusher relies on being able to
        call this unconditionally without burning a syscall per no-op.

        On an I/O error nothing moves: the buffer, ``dirty`` count, and
        group counter keep their pre-commit values, the file is rewound
        to the last durable group, and the same commit can be retried.
        """
        with self._lock:
            file = self._require_open()
            if self._prepared_count:
                raise PersistenceError(
                    f"WAL {self.path} holds a prepared group; "
                    f"fence or abort it before committing")
            if not self._buffer:
                return self._group
            group = self._group + 1
            data = b"".join(self._buffer) + _frame(encode_commit(group))
            try:
                file.write(data)
                file.flush()
                if self._fsync:
                    os.fsync(file.fileno())
                    self._sync_count += 1
            except OSError as exc:
                self._rewind()
                raise PersistenceError(
                    f"cannot commit WAL group to {self.path}: {exc}") from exc
            self._good_end += len(data)
            self._group = group
            self._buffer.clear()
            self._dirty = 0
            return group

    def reset(self, group: Optional[int] = None) -> None:
        """Truncate the log back to its header (after a snapshot).

        Buffered uncommitted records are discarded along with the file
        body.  The group counter is *not* reset — group numbers stay
        monotonic across compactions so replay can skip groups a
        snapshot already covers.  *group* (when given) fast-forwards the
        counter, used when recovery found a snapshot newer than the log.
        """
        with self._lock:
            file = self._require_open()
            try:
                file.seek(len(MAGIC))
                file.truncate(len(MAGIC))
            except OSError as exc:
                raise PersistenceError(
                    f"cannot reset WAL {self.path}: {exc}") from exc
            self._flush()
            self._good_end = len(MAGIC)
            if group is not None:
                self._group = max(self._group, group)
            self._buffer.clear()
            self._dirty = 0
            self._prepared_count = 0
            self._prepared_bytes = 0

    def reset_to_header(self) -> None:
        """Truncate the on-disk log to its magic header, *keeping* the
        in-memory buffer of uncommitted appends.

        The delta-compaction path calls this after folding every
        committed group into a durable delta segment.  It is safe
        precisely because of the group-commit write discipline: the
        on-disk body holds only committed groups (:meth:`append` merely
        buffers; :meth:`commit`/:meth:`prepare` write), so dropping the
        body loses nothing that is not already in the delta log.  A
        staged 2PC prepare *is* on disk without a boundary, so callers
        must resolve it first — this method refuses while one is held.
        """
        with self._lock:
            file = self._require_open()
            if self._prepared_count:
                raise PersistenceError(
                    f"WAL {self.path} holds a prepared group; "
                    f"cannot reset to header")
            try:
                file.seek(len(MAGIC))
                file.truncate(len(MAGIC))
            except OSError as exc:
                raise PersistenceError(
                    f"cannot reset WAL {self.path}: {exc}") from exc
            self._flush()
            self._good_end = len(MAGIC)

    def close(self) -> None:
        """Write any buffered records, flush, and close (idempotent).

        Uncommitted records are written *without* a boundary record:
        recovery discards them, but :func:`scan_wal` still reports them
        as ``pending`` — the same on-disk shape per-append writes left
        behind before group commit.
        """
        with self._lock:
            if self._file is None:
                return
            try:
                # A prepared prefix is already on disk; only the frames
                # appended after the prepare still need writing.
                tail = self._buffer[self._prepared_count:]
                self._buffer.clear()
                if tail:
                    data = b"".join(tail)
                    try:
                        self._file.write(data)
                    except OSError as exc:
                        raise PersistenceError(
                            f"cannot append to WAL {self.path}: {exc}") from exc
                self._flush()
            finally:
                if self._file is not None:
                    self._file.close()
                    self._file = None

    # -- internals -----------------------------------------------------------

    def _require_open(self) -> IO[bytes]:
        if self._file is None:
            raise PersistenceError(f"WAL {self.path} is closed")
        return self._file

    def _rewind(self) -> None:
        """Drop a partially written group after a failed commit.

        Seeks/truncates back to the end of the last durable group so the
        buffered records can be committed again.  If the rewind itself
        fails the log *fails closed* (file handle dropped): a log whose
        tail state is unknown must not accept further writes.
        """
        file = self._file
        if file is None:
            return
        try:
            file.seek(self._good_end)
            file.truncate(self._good_end)
        except OSError:
            self._file = None
            try:
                file.close()
            except OSError:
                pass

    def _flush(self) -> None:
        file = self._require_open()
        try:
            file.flush()
            if self._fsync:
                os.fsync(file.fileno())
        except OSError as exc:
            raise PersistenceError(
                f"cannot flush WAL {self.path}: {exc}") from exc


class _DeltaLog:
    """Append-only log of flattened committed-group segments.

    The durable sibling of the WAL that makes routine compaction
    O(changes-since-last-compact): :meth:`append` writes one CRC-framed
    :func:`encode_delta_segment` record and fsyncs it; :meth:`reset`
    truncates back to the magic header after a full snapshot rewrite.
    Opening scans the file and truncates a torn tail away, mirroring
    :class:`WriteAheadLog`.  Callers (``Durability``) serialize access
    under their meta lock, so no internal lock is needed.
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self._fsync = fsync
        scan = scan_deltas(path)
        self.covered_group = scan.covered_group
        self.segment_count = len(scan.segments)
        self._file: Optional[IO[bytes]] = None
        try:
            if scan.valid_end == 0:
                self._file = open(path, "wb")
                self._file.write(DELTA_MAGIC)
                self._size = len(DELTA_MAGIC)
            else:
                self._file = open(path, "r+b")
                self._file.truncate(scan.valid_end)
                self._file.seek(scan.valid_end)
                self._size = scan.valid_end
            self._file.flush()
        except OSError as exc:
            raise PersistenceError(
                f"cannot open delta log {path}: {exc}") from exc

    @property
    def size(self) -> int:
        """On-disk size in bytes (drives the full-rewrite ratio trigger)."""
        return self._size

    def append(self, from_group: int, to_group: int,
               changes: List[Change]) -> None:
        """Durably append one segment covering groups [from, to]."""
        file = self._require_open()
        data = _frame(encode_delta_segment(from_group, to_group, changes))
        try:
            file.write(data)
            file.flush()
            if self._fsync:
                os.fsync(file.fileno())
        except OSError as exc:
            # Drop the torn segment so the next append starts clean; the
            # folded groups are still in the WAL (it is only truncated
            # after this append succeeds), so nothing is lost.
            try:
                file.seek(self._size)
                file.truncate(self._size)
            except OSError:
                self._file = None
                try:
                    file.close()
                except OSError:
                    pass
            raise PersistenceError(
                f"cannot append delta segment to {self.path}: {exc}") from exc
        self._size += len(data)
        self.covered_group = max(self.covered_group, to_group)
        self.segment_count += 1

    def reset(self) -> None:
        """Truncate back to the magic header (after a full snapshot)."""
        file = self._require_open()
        try:
            file.seek(len(DELTA_MAGIC))
            file.truncate(len(DELTA_MAGIC))
            file.flush()
        except OSError as exc:
            raise PersistenceError(
                f"cannot reset delta log {self.path}: {exc}") from exc
        self._size = len(DELTA_MAGIC)
        self.covered_group = 0
        self.segment_count = 0

    def close(self) -> None:
        """Flush and close (idempotent)."""
        file = self._file
        if file is None:
            return
        self._file = None
        try:
            file.flush()
            file.close()
        except OSError:
            pass

    def abandon(self) -> None:
        """Release the file handle without flushing (crash simulation)."""
        file, self._file = self._file, None
        if file is not None:
            try:
                file.close()
            except OSError:
                pass

    def _require_open(self) -> IO[bytes]:
        if self._file is None:
            raise PersistenceError(f"delta log {self.path} is closed")
        return self._file


# -- recovery ----------------------------------------------------------------

class RecoveryResult(NamedTuple):
    """What :func:`recover` reconstructed and how."""

    store: TripleStore          #: the recovered store
    snapshot_group: int         #: group covered by the snapshot (0 if none)
    snapshot_triples: int       #: triples loaded from the snapshot
    groups_replayed: int        #: complete WAL groups applied on top
    changes_replayed: int       #: individual changes applied from the WAL
    last_group: int             #: highest group number in the final state
    discarded_bytes: int        #: corrupt/torn WAL tail bytes ignored
    namespaces: NamespaceRegistry  #: registry with the snapshot's declarations
    delta_segments: int = 0     #: valid delta segments folded in
    delta_changes: int = 0      #: individual changes applied from deltas
    covered_group: int = 0      #: highest group snapshot+deltas cover
    #: per-stage wall-clock timings (``snapshot_s``/``deltas_s``/``wal_s``);
    #: ``wal_s`` includes the bulk-load index build at scope exit.
    stage_seconds: Optional[Dict[str, float]] = None


def recover(directory: str,
            store: Optional[TripleStore] = None,
            namespaces: Optional[NamespaceRegistry] = None) -> RecoveryResult:
    """Rebuild the durable state under *directory*.

    Folds the three durable layers in order: the latest valid snapshot,
    then every valid delta segment whose groups the snapshot does not
    already cover, then every complete WAL group above what snapshot and
    deltas cover — stopping at the first corrupt record in each log.
    Adds replay through
    :meth:`~repro.triples.store.TripleStore.restore` with their logged
    sequence numbers, so the recovered store matches the crashed store's
    iteration and ``select()`` order exactly, not just its set of triples.

    *store* (default: a fresh :class:`TripleStore`) must be empty; the
    recovered triples are loaded into it.  The snapshot's namespace
    declarations are registered into *namespaces* when given, else into a
    fresh registry; either way the populated registry is returned in the
    result, so nothing recovered is dropped.
    """
    store = store if store is not None else TripleStore()
    if len(store):
        raise PersistenceError("recovery target store must be empty")
    registry = namespaces if namespaces is not None else NamespaceRegistry()
    snapshot_path = os.path.join(directory, SNAPSHOT_FILE)
    snapshot_group = 0
    snapshot_triples = 0
    t_start = time.perf_counter()
    if os.path.exists(snapshot_path):
        # Streamed straight into the target store (constant parse memory)
        # rather than through an intermediate store plus a restore loop.
        snapshot = persistence.load_snapshot(snapshot_path, registry,
                                             store=store)
        snapshot_group = snapshot.group
        snapshot_triples = len(store)
    t_snapshot = time.perf_counter()
    delta_scan = scan_deltas(os.path.join(directory, DELTAS_FILE))
    scan = scan_wal(os.path.join(directory, WAL_FILE))
    covered = snapshot_group
    delta_segments = 0
    delta_changes = 0
    groups_replayed = 0
    changes_replayed = 0
    t_deltas = t_snapshot
    with store.bulk():
        # Replayed adds ride the bulk path: index maintenance happens in
        # one pass at exit instead of per change.  Removals flush first,
        # so mixed groups replay exactly as they would per-op.
        for segment in delta_scan.segments:
            if segment.to_group <= snapshot_group:
                # A full snapshot covers every group at or below its own,
                # and segments never straddle it (deltas are reset after
                # the snapshot lands) — skip whole stale segments.
                continue
            for change in segment.changes:
                if change.action == "add":
                    store.restore(change.triple, change.sequence)
                else:
                    store.discard(change.triple)
            delta_segments += 1
            delta_changes += len(segment.changes)
            covered = max(covered, segment.to_group)
        t_deltas = time.perf_counter()
        for group, changes in scan.groups:
            if group <= covered:
                continue  # already in snapshot/deltas (crash between
                #           the covering write and the WAL truncate)
            for change in changes:
                if change.action == "add":
                    store.restore(change.triple, change.sequence)
                else:
                    store.discard(change.triple)
            groups_replayed += 1
            changes_replayed += len(changes)
    last_group = max(covered, scan.last_group)
    t_end = time.perf_counter()
    stage_seconds = {"snapshot_s": t_snapshot - t_start,
                     "deltas_s": t_deltas - t_snapshot,
                     "wal_s": t_end - t_deltas}
    return RecoveryResult(store, snapshot_group, snapshot_triples,
                          groups_replayed, changes_replayed, last_group,
                          scan.total_bytes - scan.valid_end, registry,
                          delta_segments, delta_changes, covered,
                          stage_seconds)


# -- the group-commit flusher -------------------------------------------------

class _GroupCommitFlusher:
    """Daemon thread that batches WAL fsyncs across concurrent committers.

    Committers call :meth:`request`; the thread wakes, runs one
    ``Durability._flush_group()`` (one WAL write + fsync), and acks every
    request that arrived before it started — so N committers racing on
    the same window share a single fsync instead of paying N.  A ticket
    scheme (monotonic ``requested``/``served`` counters under one
    condition variable) decides which requests each flush covers: a
    request with ticket T is durable once ``served >= T``, because the
    flush that bumped ``served`` past T started after T's changes were
    already appended to the WAL buffer.

    With ``ack=True`` (Durability's ``sync='group'``), :meth:`request`
    blocks until its ticket is served and re-raises the flush error that
    covered its window, if any.  With ``ack=False`` (``sync='async'``)
    it returns immediately; a failed background flush is stashed and
    raised on the *next* request or on :meth:`close`, so errors surface
    rather than vanish.

    After a successful flush the thread runs compaction housekeeping
    (``Durability._maybe_compact``) *outside* the condition variable and
    after acking waiters — a committer holding the store lock while it
    waits for its ack must never deadlock against a compaction that
    needs that same lock.
    """

    def __init__(self, durability: "Durability", ack: bool) -> None:
        self._durability = durability
        self._ack = ack
        self._cond = threading.Condition()
        self._requested = 0
        self._served = 0
        #: (low, high, error): flushes that failed, covering tickets
        #: low < t <= high.  Only populated in ack mode.
        self._failures: List[Tuple[int, int, BaseException]] = []
        self._async_error: Optional[BaseException] = None
        self._closed = False
        self._thread = threading.Thread(target=self._run,
                                        name="slim-wal-flusher", daemon=True)
        self._thread.start()

    @property
    def requested(self) -> int:
        """How many commit requests have been enqueued so far."""
        return self._requested

    def request(self, wait: bool) -> None:
        """Enqueue a flush; block for the covering fsync iff *wait*."""
        with self._cond:
            if self._closed:
                raise PersistenceError("group-commit flusher is closed")
            if self._async_error is not None:
                error, self._async_error = self._async_error, None
                raise error
            self._requested += 1
            ticket = self._requested
            self._cond.notify_all()
            if not wait:
                return
            while self._served < ticket:
                self._cond.wait()
            for low, high, error in self._failures:
                if low < ticket <= high:
                    raise error

    def close(self, join: bool = True) -> None:
        """Drain outstanding requests, stop the thread, surface errors.

        ``join=False`` skips waiting for the (daemon) thread and is what
        finalizers must use: a join inside ``__del__`` can deadlock when
        garbage collection fires on a thread that is mid-bootstrap and
        already holds CPython's ``_shutdown_locks_lock`` — which
        ``Thread._stop`` (reached via ``join``) then tries to re-acquire.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if not join:
            return
        self._thread.join()
        if self._async_error is not None:
            error, self._async_error = self._async_error, None
            raise error

    def _run(self) -> None:
        while True:
            with self._cond:
                while self._requested == self._served and not self._closed:
                    self._cond.wait()
                if self._requested == self._served:
                    return  # closed and drained
                low = self._served
                take = self._requested
            error: Optional[BaseException] = None
            try:
                self._durability._flush_group()
            except BaseException as exc:
                error = exc
            with self._cond:
                self._served = take
                if error is not None:
                    if self._ack:
                        self._failures.append((low, take, error))
                    else:
                        self._async_error = error
                self._cond.notify_all()
            if error is None:
                try:
                    self._durability._maybe_compact()
                except BaseException as exc:
                    with self._cond:
                        self._async_error = exc


# -- the durability orchestrator ---------------------------------------------

class Durability:
    """Crash-safe persistence for one store: recovery, WAL, compaction.

    Attaching to a *directory* that already holds durable state recovers
    it into *store* (which must then be empty) before subscribing to the
    store's change listeners.  Attaching a *non-empty* store to a fresh
    directory writes a baseline snapshot immediately, so pre-existing
    triples are never invisible to recovery.

    Call :meth:`commit` at user-level operation boundaries; after
    *compact_every* committed groups the log is compacted.  Routine
    compactions are *delta* compactions — the committed groups are
    flattened into one fsynced segment of the delta log and the WAL is
    truncated, at a cost proportional to the changes folded, not the
    store size.  Once the delta log outgrows ``delta_ratio`` times the
    snapshot (or a fixed floor when no snapshot exists yet), the next
    compaction is a *full rewrite*: a fresh atomic snapshot, after which
    both the delta log and the WAL reset.  All writes go through the
    checksummed formats in :mod:`repro.triples.persistence` and this
    module, so a crash at any point leaves a recoverable directory.

    *commit_every* (optional) turns on auto-grouping: once that many
    changes have accumulated since the last commit, the next change
    commits the group automatically.  Large ingests then coalesce into
    ``N / commit_every`` fsyncs with no caller-side bookkeeping, at the
    cost of group boundaries that no longer align with user-level
    operations.  Auto-commits are *suppressed* while an atomic scope
    (a ``Batch`` or bulk load) is open on the store and fire at scope
    exit instead — a crash can therefore never recover a half-applied
    user-level operation.  Explicit :meth:`commit` calls still work and
    reset the running count.

    *sync* selects the commit path:

    - ``'inline'`` (default): :meth:`commit` writes and fsyncs on the
      caller's thread, exactly as before.
    - ``'group'``: a background flusher thread batches fsyncs across
      concurrent committers; :meth:`commit` enqueues and *waits* for the
      batched fsync that covers its changes (durable ack).  N racing
      committers share one fsync per batching window.
    - ``'async'``: same flusher, but :meth:`commit` returns immediately
      after enqueuing — durability is eventual (the fsync lands moments
      later); a background flush failure is raised on the next commit or
      on :meth:`close`.
    """

    _SYNC_MODES = ("inline", "group", "async")

    def __init__(self, store: TripleStore, directory: str,
                 namespaces: Optional[NamespaceRegistry] = None,
                 compact_every: int = 64, fsync: bool = True,
                 commit_every: Optional[int] = None,
                 sync: str = "inline",
                 delta_ratio: float = 0.5) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        if commit_every is not None and commit_every < 1:
            raise ValueError("commit_every must be >= 1 or None")
        if sync not in self._SYNC_MODES:
            raise ValueError(f"sync must be one of {self._SYNC_MODES}")
        if delta_ratio < 0:
            raise ValueError("delta_ratio must be >= 0")
        self.directory = directory
        self.namespaces = namespaces
        self.compact_every = compact_every
        self.commit_every = commit_every
        self.sync = sync
        self.delta_ratio = delta_ratio
        self._store = store
        # Guards the commit/compaction metadata (_groups_since_snapshot)
        # and serializes flush-vs-compact decisions.  Lock order:
        # store lock -> this meta lock -> WAL lock, never reversed.
        self._meta_lock = threading.Lock()
        self._inline_commits = 0
        os.makedirs(directory, exist_ok=True)
        self._snapshot_path = os.path.join(directory, SNAPSHOT_FILE)
        wal_path = os.path.join(directory, WAL_FILE)
        had_state = (os.path.exists(self._snapshot_path)
                     or os.path.exists(wal_path))
        self.recovered: Optional[RecoveryResult] = None
        if had_state:
            self.recovered = recover(directory, store, namespaces)
        self._wal = WriteAheadLog(wal_path, fsync=fsync)
        try:
            self._deltas = _DeltaLog(os.path.join(directory, DELTAS_FILE),
                                     fsync=fsync)
        except BaseException:
            self._wal.close()
            raise
        self._covered_group = (self.recovered.covered_group
                               if self.recovered is not None else 0)
        self._delta_compactions = 0
        self._full_compactions = 0
        if self.recovered is not None \
                and self.recovered.covered_group > self._wal.group:
            # Crash between the covering write (snapshot rename or delta
            # append) and the log reset: every logged group is covered.
            # Finish the interrupted reset and fast-forward the counter,
            # so fresh commits get numbers replay will not skip.
            self._wal.reset(group=self.recovered.last_group)
        self._groups_since_snapshot = (self.recovered.groups_replayed
                                       if self.recovered is not None else 0)
        self._closed = False
        self._flusher: Optional[_GroupCommitFlusher] = None
        self._unsubscribe = store.add_listener(self._on_change)
        add_atomic = getattr(store, "add_atomic_listener", None)
        self._unsubscribe_atomic = (add_atomic(self._on_atomic_end)
                                    if add_atomic is not None
                                    else (lambda: None))
        try:
            if not had_state and len(store):
                self.compact()
            if sync != "inline":
                self._flusher = _GroupCommitFlusher(self,
                                                    ack=(sync == "group"))
        except BaseException:
            # Construction failed after the listeners attached: detach
            # them so later store mutations don't feed a half-built,
            # closed-over handle, and release the log files.
            self._unsubscribe()
            self._unsubscribe_atomic()
            self._wal.close()
            self._deltas.close()
            raise

    @property
    def group(self) -> int:
        """The highest committed group number."""
        return self._wal.group

    @property
    def pending_changes(self) -> int:
        """Changes logged since the last :meth:`commit` (not yet durable)."""
        return self._wal.dirty

    @property
    def groups_since_snapshot(self) -> int:
        """Committed groups accumulated since the last compaction
        (delta or full)."""
        return self._groups_since_snapshot

    @property
    def covered_group(self) -> int:
        """Highest WAL group the snapshot + delta log durably cover."""
        return self._covered_group

    @property
    def delta_log_bytes(self) -> int:
        """On-disk size of the delta log."""
        return self._deltas.size

    @property
    def compaction_counts(self) -> Tuple[int, int]:
        """``(delta, full)`` compactions performed by this handle."""
        return (self._delta_compactions, self._full_compactions)

    @property
    def commits_requested(self) -> int:
        """How many :meth:`commit` calls reached the WAL (any sync mode).

        Compare with :attr:`fsync_count` to see group-commit coalescing.
        """
        flusher = self._flusher
        return self._inline_commits + (flusher.requested if flusher else 0)

    @property
    def fsync_count(self) -> int:
        """Group-commit fsyncs issued by the underlying WAL."""
        return self._wal.sync_count

    @property
    def map_version(self) -> int:
        """Shard-map version: always 1 for an unsharded store.

        Mirrors :attr:`ShardedDurability.map_version
        <repro.triples.sharded.ShardedDurability.map_version>` so
        callers (replay capture, CLI info) read one attribute on either
        handle."""
        return 1

    def commit(self, wait: Optional[bool] = None) -> bool:
        """Close the current group; ``False`` when nothing changed.

        Makes every change since the previous commit durable as one
        atomic group; triggers compaction after ``compact_every`` groups.
        In ``sync='inline'`` mode the WAL write + fsync run on this
        thread.  With the background flusher (``'group'``/``'async'``)
        the commit is enqueued; *wait* overrides the mode's ack default
        (wait for the covering fsync vs return immediately).
        """
        if self._closed:
            raise PersistenceError("durability handle is closed")
        if self._flusher is None:
            changed = self._flush_group()
            if changed:
                with self._meta_lock:
                    self._inline_commits += 1
                self._maybe_compact()
            return changed
        if self._wal.dirty == 0:
            # Everything already covered by a served or in-flight flush
            # (appends and commits serialize on the WAL lock, so a zero
            # dirty count means this thread's changes are durable).
            return False
        if wait is None:
            wait = self.sync == "group"
        self._flusher.request(wait=wait)
        return True

    def compact(self) -> None:
        """Full rewrite: fold everything into a fresh atomic snapshot,
        then reset the delta log and the WAL.

        Ordering is crash-safe at every step by the monotone-group
        argument: the snapshot (recording the covered group number) is
        fsynced and renamed into place *before* either log is truncated.
        A crash in between leaves delta segments / WAL groups that the
        snapshot already covers; recovery skips them by group number.

        Runs under the store lock (when the store has one) so the
        snapshot writer never iterates a store mid-mutation, then the
        meta lock — consistent with the global lock order.
        """
        if self._closed:
            raise PersistenceError("durability handle is closed")
        lock = getattr(self._store, "lock", None)
        if lock is not None:
            with lock:
                self._compact_locked()
        else:
            self._compact_locked()

    def _compact_locked(self) -> None:
        with self._meta_lock:
            persistence.save_snapshot(self._store, self._snapshot_path,
                                      self.namespaces, group=self._wal.group)
            self._deltas.reset()
            self._wal.reset()
            self._covered_group = self._wal.group
            self._groups_since_snapshot = 0
            self._full_compactions += 1

    def delta_compact(self) -> bool:
        """Routine compaction: fold committed WAL groups into one delta
        segment and truncate the WAL — O(changes folded), no store lock.

        The segment is fsynced *before* the WAL truncate, so a crash in
        between leaves covered groups in the WAL that recovery skips by
        number.  Returns ``False`` without writing when there is nothing
        new to fold or when a 2PC-prepared group is staged (the prepare
        bytes live in the WAL body; folding around them must wait for
        the fence/abort — the next compaction picks the groups up).
        """
        if self._closed:
            raise PersistenceError("durability handle is closed")
        with self._meta_lock:
            return self._delta_compact_meta_locked()

    def _delta_compact_meta_locked(self) -> bool:
        wal = self._wal
        # Hold the WAL lock across scan + append + truncate so no commit,
        # prepare, or fence interleaves with the fold (meta -> WAL is the
        # global lock order; the store lock is never needed here).
        with wal._lock:
            if wal._prepared_count:
                return False
            scan = scan_wal(wal.path)
            fresh = [(group, changes) for group, changes in scan.groups
                     if group > self._covered_group]
            if fresh:
                flattened = [change for _, changes in fresh
                             for change in changes]
                self._deltas.append(fresh[0][0], fresh[-1][0], flattened)
                wal.reset_to_header()
                self._covered_group = max(self._covered_group, fresh[-1][0])
                self._delta_compactions += 1
            self._groups_since_snapshot = 0
            return bool(fresh)

    def close(self) -> None:
        """Detach from the store and close the log (idempotent).

        With a background flusher, outstanding commit requests are
        drained (flushed and fsynced) first, and any stashed background
        flush error is raised here.  Uncommitted changes remain in the
        WAL file but are not fsynced and, lacking a boundary record,
        will be discarded by recovery — commit first if they should
        survive.
        """
        self._close(join=True)

    def _close(self, join: bool) -> None:
        if self._closed:
            return
        self._closed = True
        self._unsubscribe()
        self._unsubscribe_atomic()
        try:
            if self._flusher is not None:
                self._flusher.close(join=join)
        finally:
            self._wal.close()
            self._deltas.close()

    def __del__(self) -> None:
        # Best-effort teardown that must never raise and never block:
        # joining the flusher thread from a finalizer can deadlock (see
        # _GroupCommitFlusher.close), so the join is skipped — explicit
        # close() remains the way to observe stashed flusher errors.
        try:
            self._close(join=False)
        except BaseException:
            pass

    def abandon(self) -> None:
        """Make this handle inert, as if its process just died.

        The crash-simulation primitive the replay harness and the crash
        matrices share: unlike :meth:`close`, nothing is flushed — the
        WAL's in-memory buffer is dropped and the file handle released
        exactly where the last durable write left it, so the directory
        looks like a hard kill and must go through :func:`recover`.
        Only meaningful under ``sync='inline'`` (a background flusher
        is its own thread; "crashing" it cleanly is a contradiction).
        Idempotent.
        """
        if self._flusher is not None:
            raise PersistenceError(
                "abandon() requires sync='inline' — a background flusher "
                "cannot be killed deterministically")
        self._closed = True
        self._unsubscribe()
        self._unsubscribe_atomic()
        wal = self._wal
        file, wal._file = wal._file, None
        if file is not None:
            try:
                file.close()
            except OSError:
                pass
        self._deltas.abandon()

    # -- internals -----------------------------------------------------------

    def _flush_group(self) -> bool:
        """One WAL group commit (write + fsync); ``True`` if anything
        was dirty.  Takes the meta lock so a flusher-thread flush and a
        user-thread :meth:`compact` never interleave their dirty-check /
        commit / counter-bump steps.
        """
        with self._meta_lock:
            if self._wal.dirty == 0:
                return False
            self._wal.commit()
            self._groups_since_snapshot += 1
            return True

    def _maybe_compact(self) -> None:
        """Compact when due — without ever *blocking* on the store lock.

        The flusher thread must not block here: a committer may hold the
        store lock while waiting for its durable ack (auto-commits fire
        inside listener fan-out, under the store lock), so a blocking
        acquire could deadlock.  When the store is busy the compaction
        is simply deferred to the next flush.

        Routine housekeeping is a delta compaction — O(changes since the
        last compact) and needing no store lock at all, so the flusher
        never stalls on store size.  A full snapshot rewrite happens only
        once the delta log outgrows ``delta_ratio`` × the snapshot (or
        the fixed floor when no snapshot exists yet).
        """
        with self._meta_lock:
            due = self._groups_since_snapshot >= self.compact_every
        if not due:
            return
        if not self._full_rewrite_due():
            self.delta_compact()
            return
        lock = getattr(self._store, "lock", None)
        if lock is None:
            self.compact()
            return
        if not lock.acquire(blocking=False):
            return
        try:
            self._compact_locked()
        finally:
            lock.release()

    #: Below this delta-log size a full rewrite is never ratio-triggered —
    #: small stores would otherwise rewrite constantly (any delta log
    #: dwarfs a tiny snapshot).
    _DELTA_FLOOR_BYTES = 64 * 1024

    def _full_rewrite_due(self) -> bool:
        """Whether the delta log has outgrown the snapshot it amends."""
        try:
            snapshot_bytes = os.path.getsize(self._snapshot_path)
        except OSError:
            snapshot_bytes = 0
        threshold = max(self._DELTA_FLOOR_BYTES,
                        self.delta_ratio * snapshot_bytes)
        return self._deltas.size > threshold

    def _on_change(self, action: str, triple: Triple, sequence: int) -> None:
        self._wal.append(Change(action, triple, sequence))
        if self.commit_every is not None \
                and self._wal.dirty >= self.commit_every \
                and not getattr(self._store, "in_atomic", False):
            # Auto-commits never wait for the ack: this runs inside
            # listener fan-out (under the store lock), and blocking there
            # would stall every other store user on the fsync.
            self.commit(wait=False)

    def _on_atomic_end(self) -> None:
        """Deferred auto-commit: fires when a Batch/bulk scope closes.

        Commits the whole operation (including any rollback inversions)
        as one group, preserving the commit_every contract without ever
        splitting a user-level operation across a group boundary.
        """
        if self._closed or self.commit_every is None:
            return
        if self._wal.dirty >= self.commit_every \
                and not getattr(self._store, "in_atomic", False):
            self.commit(wait=False)

"""The triple data model used by TRIM (the Triple Manager).

Section 4.3 of the paper: *"Superimposed model, schema, and instance data is
represented using RDF triples (a triple is composed of a property, a
resource, and a value)."*  We follow RDF terminology — a triple is
``(subject, property, value)`` where the subject is always a
:class:`Resource`, the property is a :class:`Resource`, and the value is
either a :class:`Resource` or a :class:`Literal`.

All three node types are immutable and hashable so triples can live in set-
and dict-based indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import InvalidTripleError

#: Python types a Literal may wrap.
LiteralValue = Union[str, int, float, bool]


@dataclass(frozen=True, order=True)
class Resource:
    """A named node — anything that can be the subject of statements.

    ``uri`` is an opaque identifier; by convention this library uses
    qualified names like ``slim:Bundle`` or plain generated ids like
    ``bundle-000003`` (see :mod:`repro.triples.namespaces`).
    """

    uri: str

    def __post_init__(self) -> None:
        if not self.uri:
            raise InvalidTripleError("Resource uri must be non-empty")

    def __str__(self) -> str:
        return self.uri

    @property
    def local_name(self) -> str:
        """The part after the last ``#``, ``/`` or ``:`` — e.g. ``Bundle``."""
        for sep in ("#", "/", ":"):
            head, found, tail = self.uri.rpartition(sep)
            if found and tail:
                return tail
        return self.uri


@dataclass(frozen=True, eq=False)
class Literal:
    """A constant value node: string, int, float, or bool.

    ``Literal(3)``, ``Literal(3.0)``, ``Literal(True)`` and ``Literal("3")``
    are pairwise distinct — the wrapped *type* is part of identity (Python's
    own ``3 == 3.0 == True`` coercion does not apply), so a round trip
    through persistence preserves node identity exactly (see
    :mod:`repro.triples.persistence`).
    """

    value: LiteralValue

    def __post_init__(self) -> None:
        # bool is a subclass of int; accept it explicitly first.
        if not isinstance(self.value, (bool, int, float, str)):
            raise InvalidTripleError(
                f"Literal must wrap str/int/float/bool, got {type(self.value).__name__}")

    def _key(self) -> "tuple[type, LiteralValue]":
        return (type(self.value), self.value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __lt__(self, other: "Literal") -> bool:
        """Deterministic total order: by type tag, then textual form."""
        if not isinstance(other, Literal):
            return NotImplemented
        return ((self.type_name, str(self.value))
                < (other.type_name, str(other.value)))

    def __str__(self) -> str:
        return repr(self.value)

    @property
    def type_name(self) -> str:
        """The literal's type tag: ``string``/``integer``/``float``/``boolean``."""
        if isinstance(self.value, bool):
            return "boolean"
        if isinstance(self.value, int):
            return "integer"
        if isinstance(self.value, float):
            return "float"
        return "string"


#: A triple's value slot holds either kind of node.
Node = Union[Resource, Literal]


@dataclass(frozen=True)
class Triple:
    """One statement: *subject* has *property* with *value*.

    Examples (SLIMPad's Bundle-Scrap data in triple form)::

        Triple(Resource('bundle-01'), Resource('slim:bundleName'), Literal('Electrolyte'))
        Triple(Resource('bundle-01'), Resource('slim:bundleContent'), Resource('scrap-07'))
    """

    subject: Resource
    property: Resource
    value: Node

    def __post_init__(self) -> None:
        if not isinstance(self.subject, Resource):
            raise InvalidTripleError(
                f"triple subject must be a Resource, got {type(self.subject).__name__}")
        if not isinstance(self.property, Resource):
            raise InvalidTripleError(
                f"triple property must be a Resource, got {type(self.property).__name__}")
        if not isinstance(self.value, (Resource, Literal)):
            raise InvalidTripleError(
                f"triple value must be Resource or Literal, got {type(self.value).__name__}")

    def __str__(self) -> str:
        return f"({self.subject} {self.property} {self.value})"

    def as_tuple(self) -> "tuple[Resource, Resource, Node]":
        """Return ``(subject, property, value)``."""
        return (self.subject, self.property, self.value)


def triple(subject: Union[str, Resource], prop: Union[str, Resource],
           value: Union[str, Resource, Literal, int, float, bool]) -> Triple:
    """Convenience constructor coercing plain Python values.

    Strings in subject/property positions become :class:`Resource`; a plain
    value in the value position becomes a :class:`Literal` **unless** it is
    already a node.  To state a resource-valued triple from strings, pass a
    :class:`Resource` explicitly::

        triple('scrap-01', 'slim:scrapName', 'K+ 3.9')          # literal value
        triple('scrap-01', 'slim:scrapMark', Resource('mh-02')) # resource value
    """
    subj = Resource(subject) if isinstance(subject, str) else subject
    pred = Resource(prop) if isinstance(prop, str) else prop
    if isinstance(value, (Resource, Literal)):
        val: Node = value
    else:
        val = Literal(value)
    return Triple(subj, pred, val)

"""TRIM — the Triple Manager (Section 4.4, Fig. 9).

The paper: *"To manage triples, we use the TRIM (Triple Manager)
sub-component, which handles basic operations over the triple
representation. Through TRIM, the DMI can create, remove, persist (through
XML files), query, and create simple views over the underlying triples."*

:class:`TrimManager` is the façade the DMIs program against.  It owns a
:class:`~repro.triples.store.TripleStore`, a namespace registry, an id
generator for minting resources, and an undo log; and it exposes exactly
the five operation families the paper lists: create, remove, persist,
query (selection), and views.

Persistence comes in two strengths.  :meth:`save`/:meth:`load` are the
paper's explicit whole-store XML dump (now written atomically).  The
opt-in ``durable=`` mode attaches a write-ahead log plus snapshot
compaction (:mod:`repro.triples.wal`), so every mutation is logged and a
crash at any point recovers to the last :meth:`commit` boundary.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.triples import persistence
from repro.triples.namespaces import NamespaceRegistry
from repro.triples.query import Query
from repro.triples.store import TripleStore
from repro.triples.transactions import Batch, UndoLog
from repro.triples.triple import (Literal, LiteralValue, Node, Resource,
                                  Triple, triple)
from repro.triples.views import View
from repro.triples.wal import Durability
from repro.util.identifiers import IdGenerator


class TrimManager:
    """Façade bundling store + namespaces + ids + persistence + views.

    Pass ``durable=<directory>`` (or call :meth:`enable_durability`) for
    crash-safe persistence: existing state under the directory is
    recovered into the store, every subsequent mutation is logged, and
    :meth:`commit` marks atomic group boundaries.
    """

    def __init__(self, namespaces: Optional[NamespaceRegistry] = None,
                 durable: Optional[str] = None,
                 compact_every: int = 64) -> None:
        self.store = TripleStore()
        self.namespaces = namespaces or NamespaceRegistry.with_defaults()
        self.ids = IdGenerator()
        self._undo: Optional[UndoLog] = None
        self._durability: Optional[Durability] = None
        if durable is not None:
            self.enable_durability(durable, compact_every=compact_every)

    # -- create / remove ------------------------------------------------------

    def new_resource(self, prefix: str) -> Resource:
        """Mint a fresh resource id like ``bundle-000004``."""
        return Resource(self.ids.next(prefix))

    def create(self, subject: Union[str, Resource], prop: Union[str, Resource],
               value: Union[str, Resource, Literal, LiteralValue]) -> Triple:
        """Create and store one triple (see :func:`repro.triples.triple.triple`)."""
        statement = triple(subject, prop, value)
        self.store.add(statement)
        return statement

    def remove(self, statement: Triple) -> None:
        """Remove one triple; raises if absent."""
        self.store.remove(statement)

    def remove_about(self, subject: Resource) -> int:
        """Remove every triple whose subject is *subject*; return count."""
        return self.store.remove_matching(subject=subject)

    def batch(self) -> Batch:
        """A rollback-on-error batch over the store."""
        return Batch(self.store)

    # -- query ----------------------------------------------------------------

    def select(self, subject: Optional[Resource] = None,
               prop: Optional[Resource] = None,
               value: Optional[Node] = None) -> List[Triple]:
        """TRIM's selection query: fix any subset of fields."""
        return self.store.select(subject=subject, property=prop, value=value)

    def count(self, subject: Optional[Resource] = None,
              prop: Optional[Resource] = None,
              value: Optional[Node] = None) -> int:
        """How many triples a selection would return, from index statistics
        alone — the counted fast path for existence and cardinality checks."""
        return self.store.count(subject=subject, property=prop, value=value)

    def query(self, query: Query) -> List[dict]:
        """Run a conjunctive :class:`~repro.triples.query.Query` (extension)."""
        return query.run_all(self.store)

    def explain(self, query: Query):
        """The plan :meth:`query` would evaluate, as
        :class:`~repro.triples.query.PlanStep` s."""
        return query.explain(self.store)

    # -- views ----------------------------------------------------------------

    def view(self, root: Resource, follow_properties=None,
             max_depth: Optional[int] = None) -> View:
        """A reachability view rooted at *root* (Section 4.4's "simple views")."""
        return View(self.store, root, follow_properties, max_depth)

    # -- persistence ----------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the store to an XML file (atomic temp+fsync+rename)."""
        persistence.save(self.store, path, self.namespaces)

    def load(self, path: str) -> None:
        """Replace the store contents from an XML file.

        Observed resource ids advance the id generator so subsequently
        minted ids never collide with loaded ones.  Under durable mode
        the clear and reload are logged like any other mutations.
        """
        loaded = persistence.load(path, self.namespaces)
        self.store.clear()
        self.store.add_all(loaded)
        for resource in self.store.resources():
            self.ids.observe(resource.uri)

    def dumps(self) -> str:
        """The store as an XML string."""
        return persistence.dumps(self.store, self.namespaces)

    # -- durability (WAL + snapshots) ------------------------------------------

    def enable_durability(self, directory: str, compact_every: int = 64,
                          fsync: bool = True) -> Durability:
        """Attach crash-safe persistence rooted at *directory*.

        Recovers any existing snapshot + WAL state into the store (which
        must then be empty), then logs every mutation.  Recovered resource
        ids advance the id generator, like :meth:`load`.  Idempotent:
        returns the existing handle when already enabled.
        """
        if self._durability is not None:
            return self._durability
        self._durability = Durability(self.store, directory,
                                      namespaces=self.namespaces,
                                      compact_every=compact_every,
                                      fsync=fsync)
        for resource in self.store.resources():
            self.ids.observe(resource.uri)
        return self._durability

    @property
    def durability(self) -> Optional[Durability]:
        """The attached durability handle, if durable mode is on."""
        return self._durability

    def commit(self) -> bool:
        """Close a durable group (fsync boundary); no-op when not durable.

        Call at user-level operation boundaries — everything since the
        previous commit becomes one atomic, crash-recoverable group.
        Returns whether anything was committed.
        """
        if self._durability is None:
            return False
        return self._durability.commit()

    def close(self) -> None:
        """Detach durability, if enabled (uncommitted changes are dropped)."""
        if self._durability is not None:
            self._durability.close()
            self._durability = None

    # -- undo -----------------------------------------------------------------

    def enable_undo(self) -> UndoLog:
        """Attach (or return the existing) undo log."""
        if self._undo is None:
            self._undo = UndoLog(self.store)
        return self._undo

    @property
    def undo_log(self) -> Optional[UndoLog]:
        """The attached undo log, if enable_undo was called."""
        return self._undo

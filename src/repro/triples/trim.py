"""TRIM — the Triple Manager (Section 4.4, Fig. 9).

The paper: *"To manage triples, we use the TRIM (Triple Manager)
sub-component, which handles basic operations over the triple
representation. Through TRIM, the DMI can create, remove, persist (through
XML files), query, and create simple views over the underlying triples."*

:class:`TrimManager` is the façade the DMIs program against.  It owns a
:class:`~repro.triples.store.TripleStore`, a namespace registry, an id
generator for minting resources, and an undo log; and it exposes exactly
the five operation families the paper lists: create, remove, persist,
query (selection), and views.

Persistence comes in two strengths.  :meth:`save`/:meth:`load` are the
paper's explicit whole-store XML dump (now written atomically).  The
opt-in ``durable=`` mode attaches a write-ahead log plus snapshot
compaction (:mod:`repro.triples.wal`), so every mutation is logged and a
crash at any point recovers to the last :meth:`commit` boundary.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.errors import TransactionError
from repro.triples import persistence
from repro.triples.cache import GenerationCache
from repro.triples.namespaces import NamespaceRegistry
from repro.triples.query import Query
from repro.triples.sharded import ShardedDurability, ShardedTripleStore
from repro.triples.store import TripleStore
from repro.triples.transactions import Batch, UndoLog
from repro.triples.triple import (Literal, LiteralValue, Node, Resource,
                                  Triple, triple)
from repro.triples.views import View
from repro.triples.wal import Durability
from repro.util.identifiers import IdGenerator


def _recovery_stats_dict(result) -> Dict[str, Any]:
    """Flatten one :class:`~repro.triples.wal.RecoveryResult` for
    :meth:`TrimManager.recovery_stats`; empty when nothing recovered."""
    if result is None:
        return {}
    return {
        "snapshot_group": result.snapshot_group,
        "snapshot_triples": result.snapshot_triples,
        "covered_group": result.covered_group,
        "delta_segments": result.delta_segments,
        "delta_changes": result.delta_changes,
        "groups_replayed": result.groups_replayed,
        "changes_replayed": result.changes_replayed,
        "last_group": result.last_group,
        "stage_seconds": dict(result.stage_seconds or {}),
    }


class IngestSession:
    """Context manager for a high-throughput ingest through a TRIM.

    Entering opens the store's bulk load (deferred index maintenance and
    listener fan-out); a clean exit flushes it and, under durable mode,
    commits everything as *one* WAL group — one fsync for the whole
    session.  An exception aborts still-pending inserts and commits
    nothing.  Obtained from :meth:`TrimManager.bulk_ingest`.
    """

    def __init__(self, trim: "TrimManager") -> None:
        self._trim = trim
        self._bulk = None

    def __enter__(self) -> "TrimManager":
        self._bulk = self._trim.store.bulk()
        self._bulk.__enter__()
        return self._trim

    def __exit__(self, exc_type, exc, tb) -> bool:
        bulk, self._bulk = self._bulk, None
        # The inner bulk's __exit__ return is deliberately discarded: even
        # if a future Batch/BulkLoad returned truthy, an exception raised
        # inside a ``with trim.bulk_ingest()`` block must propagate — a
        # swallowed ingest error would leave the WAL uncommitted while the
        # caller believes the session succeeded.
        bulk.__exit__(exc_type, exc, tb)
        if exc_type is None:
            self._trim.commit()
        return False


class TrimManager:
    """Façade bundling store + namespaces + ids + persistence + views.

    Pass ``durable=<directory>`` (or call :meth:`enable_durability`) for
    crash-safe persistence: existing state under the directory is
    recovered into the store, every subsequent mutation is logged, and
    :meth:`commit` marks atomic group boundaries.

    Pass ``concurrent=True`` when reader threads query while another
    thread ingests: reads (:meth:`select`, :meth:`count`, :meth:`query`,
    views) then run lock-free against the last-flushed snapshot and never
    force a mid-ingest index flush; index buckets publish copy-on-write.
    ``sync='group'``/``'async'`` moves commit fsyncs to a background
    flusher shared by all committing threads.

    Pass ``shards=N`` (N > 1) to hash-partition the pool by subject
    across N store instances (:mod:`repro.triples.sharded`): ingest fans
    out per shard, subject-bound queries route to one shard, and durable
    mode gives each shard its own WAL with two-phase commit across
    multi-shard groups.  ``commit(subject=...)`` then durably commits
    just that subject's shard, letting concurrent writers overlap fsyncs.
    """

    def __init__(self, namespaces: Optional[NamespaceRegistry] = None,
                 durable: Optional[str] = None,
                 compact_every: int = 64,
                 commit_every: Optional[int] = None,
                 sync: str = "inline",
                 concurrent: bool = False,
                 shards: int = 1,
                 cache: bool = True,
                 cache_entries: int = 1024,
                 delta_ratio: float = 0.5) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if shards > 1:
            self.store: TripleStore = ShardedTripleStore(
                shards, concurrent=concurrent)
        else:
            self.store = TripleStore(concurrent=concurrent)
        self.namespaces = namespaces or NamespaceRegistry.with_defaults()
        self.ids = IdGenerator()
        self._undo: Optional[UndoLog] = None
        self._durability: Optional[Union[Durability, ShardedDurability]] = None
        self._cache: Optional[GenerationCache] = \
            GenerationCache(self.store, max_entries=cache_entries) \
            if cache else None
        self._views: List["weakref.ref"] = []
        self._views_lock = threading.Lock()
        if durable is not None:
            self.enable_durability(durable, compact_every=compact_every,
                                   commit_every=commit_every, sync=sync,
                                   delta_ratio=delta_ratio)

    # -- create / remove ------------------------------------------------------

    def new_resource(self, prefix: str) -> Resource:
        """Mint a fresh resource id like ``bundle-000004``."""
        return Resource(self.ids.next(prefix))

    def create(self, subject: Union[str, Resource], prop: Union[str, Resource],
               value: Union[str, Resource, Literal, LiteralValue]) -> Triple:
        """Create and store one triple (see :func:`repro.triples.triple.triple`)."""
        statement = triple(subject, prop, value)
        self.store.add(statement)
        return statement

    def remove(self, statement: Triple) -> None:
        """Remove one triple; raises if absent."""
        self.store.remove(statement)

    def remove_about(self, subject: Resource) -> int:
        """Remove every triple whose subject is *subject*; return count."""
        return self.store.remove_matching(subject=subject)

    def batch(self) -> Batch:
        """A rollback-on-error batch over the store.

        Batches ride the store's bulk-ingest path: adds inside the batch
        defer index maintenance until the batch's first query, removal,
        or exit (see :class:`~repro.triples.transactions.Batch`).
        """
        return Batch(self.store)

    def bulk_ingest(self, triples: Optional[Iterable[Triple]] = None
                    ) -> Union[int, IngestSession]:
        """High-throughput ingest: deferred indexing + one commit group.

        With *triples*, adds them all through the store's bulk path,
        commits once (one fsync under durable mode), and returns how
        many were new::

            trim.bulk_ingest(statements)

        Without arguments, returns a session context manager for ingests
        that go through richer APIs (DMI creates, :meth:`create`)::

            with trim.bulk_ingest():
                for spec in specs:
                    trim.create(spec.subject, spec.prop, spec.value)

        Either way the whole ingest lands as a single WAL group, and an
        exception mid-ingest rolls back everything still pending without
        committing.
        """
        if triples is None:
            return IngestSession(self)
        with self.store.bulk():
            added = self.store.add_all(triples)
        self.commit()
        return added

    # -- query ----------------------------------------------------------------

    def select(self, subject: Optional[Resource] = None,
               prop: Optional[Resource] = None,
               value: Optional[Node] = None) -> List[Triple]:
        """TRIM's selection query: fix any subset of fields.

        Memoized against the store's generation stamp (per-shard when
        sharded), so repeated selections of an unchanged region cost a
        dict probe plus a list copy (see :mod:`repro.triples.cache`).
        """
        cache = self._cache
        if cache is None:
            return self.store.select(subject=subject, property=prop,
                                     value=value)
        return cache.get(
            ("select", subject, prop, value),
            lambda: self.store.select(subject=subject, property=prop,
                                      value=value),
            subject=subject)

    def value_of(self, subject: Resource, prop: Resource) -> Optional[Node]:
        """The single value of *prop* on *subject* (None when absent),
        through the select cache.  Raises ``LookupError`` on multiple."""
        hits = self.select(subject=subject, prop=prop)
        if not hits:
            return None
        if len(hits) > 1:
            raise LookupError(
                f"expected at most one match, found {len(hits)}")
        return hits[0].value

    def literal_of(self, subject: Resource, prop: Resource):
        """The single literal value of *prop* on *subject* (unwrapped),
        through the select cache; mirrors ``store.literal_of``."""
        node = self.value_of(subject, prop)
        if node is None:
            return None
        if not isinstance(node, Literal):
            raise LookupError(
                f"{subject} {prop} holds a resource, not a literal")
        return node.value

    def values_of(self, subject: Resource, prop: Resource) -> List[Node]:
        """All values of *prop* on *subject*, in insertion order, through
        the select cache."""
        return [t.value for t in self.select(subject=subject, prop=prop)]

    def count(self, subject: Optional[Resource] = None,
              prop: Optional[Resource] = None,
              value: Optional[Node] = None) -> int:
        """How many triples a selection would return, from index statistics
        alone — the counted fast path for existence and cardinality checks."""
        return self.store.count(subject=subject, property=prop, value=value)

    def query(self, query: Query) -> List[dict]:
        """Run a conjunctive :class:`~repro.triples.query.Query` (extension).

        Results are memoized on :meth:`Query.cache_key` plus the store's
        generation vector — structurally equal queries share entries, and
        any write anywhere invalidates (a conjunctive query can touch
        every shard).  Returned binding dicts are caller-safe copies.
        """
        cache = self._cache
        if cache is None:
            return query.run_all(self.store)
        return cache.get(query.cache_key(),
                         lambda: query.run_all(self.store),
                         copy=lambda rows: [dict(row) for row in rows])

    def explain(self, query: Query):
        """The plan :meth:`query` would evaluate, as
        :class:`~repro.triples.query.PlanStep` s."""
        return query.explain(self.store)

    # -- views ----------------------------------------------------------------

    def view(self, root: Resource, follow_properties=None,
             max_depth: Optional[int] = None,
             incremental: bool = True) -> View:
        """A reachability view rooted at *root* (Section 4.4's "simple views").

        Incrementally maintained from the store's change stream by
        default (``incremental=False`` restores the legacy
        recompute-on-generation-bump behaviour).  Views are tracked
        weakly so :meth:`cache_stats` can aggregate their maintenance
        counters without keeping transient views alive.
        """
        view = View(self.store, root, follow_properties, max_depth,
                    incremental=incremental)
        with self._views_lock:
            self._views = [ref for ref in self._views if ref() is not None]
            self._views.append(weakref.ref(view))
        return view

    # -- cache metrics ---------------------------------------------------------

    @property
    def cache(self) -> Optional[GenerationCache]:
        """The select/query result cache (None when disabled)."""
        return self._cache

    def cache_stats(self) -> Dict[str, Any]:
        """Read-path cache metrics: the select/query cache counters plus
        aggregated maintenance counters over live views.

        ::

            {"select_cache": {"hits": ..., "misses": ..., ...},
             "views": {"live": 2, "reads": ..., "recomputes": ...,
                       "events_applied": ..., ...}}
        """
        # Snapshot + prune under the views lock: ``view()`` on another
        # thread (e.g. the service's read executor) rebuilds this list
        # concurrently, and an unlocked read-modify-write here could drop
        # its freshly registered view — or hand admin.stats a torn list.
        with self._views_lock:
            live = [view for view in (ref() for ref in self._views)
                    if view is not None]
            self._views = [weakref.ref(view) for view in live]
        views: Dict[str, Any] = {"live": len(live), "reads": 0,
                                 "recomputes": 0, "events_applied": 0,
                                 "events_seen": 0, "events_queued": 0,
                                 "overflows": 0}
        for view in live:
            stats = view.cache_stats()
            for key in ("reads", "recomputes", "events_applied",
                        "events_seen", "events_queued", "overflows"):
                views[key] += stats[key]
        return {
            "select_cache": (self._cache.stats()
                             if self._cache is not None else None),
            "views": views,
        }

    # -- persistence ----------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the store to an XML file (atomic temp+fsync+rename)."""
        persistence.save(self.store, path, self.namespaces)

    def load(self, path: str) -> None:
        """Replace the store contents from an XML file.

        Observed resource ids advance the id generator so subsequently
        minted ids never collide with loaded ones.  Under durable mode
        the clear and reload are logged like any other mutations.  The
        reload runs through the store's bulk path, so indexes are
        rebuilt in one pass rather than per triple.
        """
        loaded = persistence.load(path, self.namespaces)
        self.store.clear()
        with self.store.bulk():
            self.store.add_all(loaded)
        for resource in self.store.resources():
            self.ids.observe(resource.uri)

    def dumps(self) -> str:
        """The store as an XML string."""
        return persistence.dumps(self.store, self.namespaces)

    # -- durability (WAL + snapshots) ------------------------------------------

    def enable_durability(self, directory: str, compact_every: int = 64,
                          fsync: bool = True,
                          commit_every: Optional[int] = None,
                          sync: str = "inline",
                          delta_ratio: float = 0.5) -> Durability:
        """Attach crash-safe persistence rooted at *directory*.

        Recovers any existing snapshot + WAL state into the store (which
        must then be empty), then logs every mutation.  Recovered resource
        ids advance the id generator, like :meth:`load`.  *commit_every*
        turns on auto-grouping and *sync* selects the commit path —
        ``'inline'`` fsyncs on the caller's thread, ``'group'``/``'async'``
        batch fsyncs on a background flusher (see
        :class:`~repro.triples.wal.Durability`).
        Idempotent: returns the existing handle when already enabled.

        A sharded TRIM gets a :class:`ShardedDurability`: one WAL
        directory per shard under *directory* plus a coordinator
        meta-WAL for multi-shard two-phase commit.
        """
        if self._durability is not None:
            return self._durability
        if isinstance(self.store, ShardedTripleStore):
            self._durability = ShardedDurability(self.store, directory,
                                                 namespaces=self.namespaces,
                                                 compact_every=compact_every,
                                                 fsync=fsync,
                                                 commit_every=commit_every,
                                                 sync=sync,
                                                 delta_ratio=delta_ratio)
        else:
            self._durability = Durability(self.store, directory,
                                          namespaces=self.namespaces,
                                          compact_every=compact_every,
                                          fsync=fsync,
                                          commit_every=commit_every,
                                          sync=sync,
                                          delta_ratio=delta_ratio)
        for resource in self.store.resources():
            self.ids.observe(resource.uri)
        return self._durability

    @property
    def durability(self) -> Optional[Union[Durability, ShardedDurability]]:
        """The attached durability handle, if durable mode is on."""
        return self._durability

    def recovery_stats(self) -> Dict[str, Any]:
        """What the last durable open recovered, and how long each stage
        took.

        Unsharded: one dict of volumes (triples, delta/WAL replay
        counts) plus ``stage_seconds`` with ``snapshot_s``/``deltas_s``/
        ``wal_s``.  Sharded: a ``shards`` list of those per-shard dicts
        plus aggregated ``stage_seconds``.  Empty when not durable or
        when the directory was fresh (nothing recovered).
        """
        dur = self._durability
        if dur is None:
            return {}
        if isinstance(dur, ShardedDurability):
            shards = [_recovery_stats_dict(result)
                      for result in dur.recovered]
            totals: Dict[str, float] = {}
            for entry in shards:
                for stage, seconds in entry.get("stage_seconds", {}).items():
                    totals[stage] = round(totals.get(stage, 0.0) + seconds, 6)
            if not any(shards):
                return {}
            return {"shards": shards, "stage_seconds": totals}
        return _recovery_stats_dict(dur.recovered)

    @property
    def shards(self) -> int:
        """How many shards partition the store (1 = unsharded)."""
        store = self.store
        if isinstance(store, ShardedTripleStore):
            return store.shard_count
        return 1

    @property
    def map_version(self) -> int:
        """The active shard-map version (1 = the implicit legacy map)."""
        store = self.store
        if isinstance(store, ShardedTripleStore):
            return store.map_version
        return 1

    def reshard(self, new_count: int, batch_subjects: int = 256,
                wait: bool = True):
        """Grow the shard count live (see
        :meth:`ShardedDurability.reshard`).

        A durable sharded TRIM migrates subjects under 2PC with the new
        map persisted in the meta-WAL; a purely in-memory sharded TRIM
        rebalances in place.  Raises :class:`TransactionError` on an
        unsharded TRIM — shard count is chosen at construction
        (``TrimManager(shards=N)``).
        """
        if isinstance(self._durability, ShardedDurability):
            return self._durability.reshard(new_count,
                                            batch_subjects=batch_subjects,
                                            wait=wait)
        store = self.store
        if isinstance(store, ShardedTripleStore):
            return store.reshard(new_count, batch_subjects=batch_subjects)
        raise TransactionError(
            "reshard() needs a sharded TRIM — construct with "
            "TrimManager(shards=N)")

    def commit(self, subject: Union[str, Resource, None] = None) -> bool:
        """Close a durable group (fsync boundary); no-op when not durable.

        Call at user-level operation boundaries — everything since the
        previous commit becomes one atomic, crash-recoverable group.
        Returns whether anything was committed.

        On a sharded TRIM, passing *subject* durably commits only the
        shard owning that subject — the partitioned fast path that lets
        concurrent writers on different shards overlap their fsyncs.  An
        unsharded TRIM ignores *subject* and commits everything.
        """
        if self._durability is None:
            return False
        if subject is not None and isinstance(self._durability,
                                              ShardedDurability):
            if isinstance(subject, str):
                subject = Resource(subject)
            return self._durability.commit_for(subject)
        return self._durability.commit()

    def close(self, wait: bool = True) -> None:
        """Detach durability, if enabled (uncommitted changes are dropped).

        Idempotent and safe from ``__del__``-time teardown: repeated
        calls, and calls racing interpreter shutdown, are no-ops.
        ``wait=False`` skips joining flusher/pool threads — finalizers
        must use it (see the :class:`ShardedTripleStore` pool docstring
        for the GC ``_shutdown_locks_lock`` deadlock a finalizer-time
        join can hit).
        """
        durability, self._durability = self._durability, None
        if durability is not None:
            if wait:
                durability.close()
            else:
                durability._close(join=False)
        store = self.store
        if isinstance(store, ShardedTripleStore):
            store.close(wait=wait)

    def __enter__(self) -> "TrimManager":
        """Context-manager entry: the manager itself.

        ``with TrimManager(durable=dir) as trim:`` commits and closes on
        a clean exit, so short-lived tools (the CLI, tests) cannot leak a
        WAL handle.
        """
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Commit (clean exit only) and close; **never** suppresses.

        An exception inside the ``with`` block skips the commit — the
        WAL stays at the last explicit boundary, exactly what crash
        recovery replays — and always propagates: this method returns
        ``False`` unconditionally, regardless of what any inner context
        manager returned.
        """
        try:
            if exc_type is None:
                self.commit()
        finally:
            self.close()
        return False

    def __del__(self) -> None:
        try:
            self.close(wait=False)
        except BaseException:
            pass

    # -- undo -----------------------------------------------------------------

    def enable_undo(self) -> UndoLog:
        """Attach (or return the existing) undo log."""
        if self._undo is None:
            self._undo = UndoLog(self.store)
        return self._undo

    @property
    def undo_log(self) -> Optional[UndoLog]:
        """The attached undo log, if enable_undo was called."""
        return self._undo

"""The base layer: six simulated base applications plus shared machinery.

Each subpackage provides a document model, an application facade exposing
the paper's narrow interface (report the address of the current selection;
navigate back to an address), and mark modules:

- :mod:`repro.base.spreadsheet` — Excel substitute (A1 range addressing)
- :mod:`repro.base.xmldoc` — XML viewer (element-path addressing)
- :mod:`repro.base.pdf` — Acrobat substitute (page + span addressing)
- :mod:`repro.base.html` — browser (element path + text span)
- :mod:`repro.base.worddoc` — Word substitute (paragraph + char range)
- :mod:`repro.base.slides` — PowerPoint substitute (slide + shape)
"""

from repro.base.application import (BaseApplication, BaseDocument,
                                    DocumentLibrary)

__all__ = [
    "BaseApplication",
    "BaseDocument",
    "DocumentLibrary",
    "standard_mark_manager",
]


def standard_mark_manager(library: DocumentLibrary, bus=None):
    """A Mark Manager wired with every base application and module.

    This is the Fig. 7 configuration: one manager, six applications, a
    viewer and an extractor module per mark type.
    """
    from repro.base.html import (BrowserApp, HtmlExtractorModule,
                                 HtmlMarkModule)
    from repro.base.pdf import (PdfExtractorModule, PdfMarkModule,
                                PdfViewerApp)
    from repro.base.slides import (SlideExtractorModule, SlideMarkModule,
                                   SlidesApp)
    from repro.base.spreadsheet import (ExcelExtractorModule, ExcelMarkModule,
                                        SpreadsheetApp)
    from repro.base.worddoc import (WordApp, WordExtractorModule,
                                    WordMarkModule)
    from repro.base.xmldoc import (XmlExtractorModule, XmlMarkModule,
                                   XmlViewerApp)
    from repro.marks.manager import MarkManager

    manager = MarkManager()
    for app_class in (SpreadsheetApp, XmlViewerApp, PdfViewerApp,
                      BrowserApp, WordApp, SlidesApp):
        manager.register_application(app_class(library, bus))
    for module_class in (ExcelMarkModule, ExcelExtractorModule,
                         XmlMarkModule, XmlExtractorModule,
                         PdfMarkModule, PdfExtractorModule,
                         HtmlMarkModule, HtmlExtractorModule,
                         WordMarkModule, WordExtractorModule,
                         SlideMarkModule, SlideExtractorModule):
        manager.register_module(module_class())
    return manager

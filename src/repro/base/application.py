"""The base layer: documents, the document library, and applications.

The paper's architecture makes exactly two assumptions about a base
application (Section 1): *"a base source can supply the address of a
currently selected information element, and … it can return to that
element given the address."*  :class:`BaseApplication` is that narrow
facade; every simulated application (spreadsheet, XML viewer, PDF viewer,
browser, word processor, slide show) extends it with its own selection
and navigation vocabulary, but the superimposed layer only ever touches
the narrow interface through mark modules.

The :class:`DocumentLibrary` stands in for the file system / web shared
by the base applications: documents are keyed by name (a file name or
URL).  Documents are *outside the box* — the library supports editing
them underneath the superimposed layer, which the redundancy experiments
(claim C-6) exploit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from repro.errors import AddressError, DocumentNotFoundError, NoSelectionError
from repro.util.events import EventBus


class BaseDocument(ABC):
    """A unit of base-layer information (a workbook, an XML file, a page…)."""

    #: The document kind tag; matches the owning application's kind.
    kind: str = "abstract"

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("document name must be non-empty")
        self.name = name

    @abstractmethod
    def estimated_bytes(self) -> int:
        """Approximate content size; used by the volume-fraction bench (C-3)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class DocumentLibrary:
    """All base documents available to the base applications.

    One library is shared by every application in a scenario, playing the
    role of the machine's file system and the web together.
    """

    def __init__(self) -> None:
        self._documents: Dict[str, BaseDocument] = {}

    def add(self, document: BaseDocument) -> BaseDocument:
        """Register (or replace) a document under its name."""
        self._documents[document.name] = document
        return document

    def get(self, name: str) -> BaseDocument:
        """Fetch a document; raises :class:`DocumentNotFoundError`."""
        try:
            return self._documents[name]
        except KeyError:
            raise DocumentNotFoundError(f"no document named {name!r}") from None

    def remove(self, name: str) -> BaseDocument:
        """Delete a document (simulating a file removed under our feet)."""
        try:
            return self._documents.pop(name)
        except KeyError:
            raise DocumentNotFoundError(f"no document named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._documents

    def names(self) -> List[str]:
        """All document names, in registration order."""
        return list(self._documents)

    def documents(self) -> List[BaseDocument]:
        """All documents, in registration order."""
        return list(self._documents.values())

    def total_bytes(self) -> int:
        """Combined size of every document (claim C-3's denominator)."""
        return sum(doc.estimated_bytes() for doc in self._documents.values())


class BaseApplication(ABC):
    """The narrow base-application facade.

    State every application shares:

    - the open document (at most one; real apps have many, one suffices),
    - the current selection (application-specific address, or None),
    - a highlight (set when a mark resolution navigated here),
    - window state (``visible``/``in_front``) for the viewing styles of
      Fig. 6.

    Events (when a bus is supplied): ``base.opened``, ``base.selection``,
    ``base.highlight``, each carrying ``app`` and ``document``.
    """

    #: Application kind tag (e.g. 'spreadsheet'); subclasses override.
    kind: str = "abstract"

    def __init__(self, library: DocumentLibrary,
                 bus: Optional[EventBus] = None) -> None:
        self.library = library
        self.bus = bus
        self._document: Optional[BaseDocument] = None
        self._selection: Optional[object] = None
        self._highlight: Optional[object] = None
        self.visible = False
        self.in_front = False

    # -- documents ---------------------------------------------------------------

    def open_document(self, name: str) -> BaseDocument:
        """Open a document from the library (clearing selection/highlight)."""
        document = self.library.get(name)
        if document.kind != self.kind:
            raise AddressError(
                f"{type(self).__name__} cannot open {document.kind!r} "
                f"document {name!r}")
        self._document = document
        self._selection = None
        self._highlight = None
        self.visible = True
        self._emit("base.opened", document=name)
        return document

    @property
    def current_document(self) -> Optional[BaseDocument]:
        """The open document, if any."""
        return self._document

    def require_document(self) -> BaseDocument:
        """The open document; raises when none is open."""
        if self._document is None:
            raise AddressError(f"no document open in {type(self).__name__}")
        return self._document

    # -- selection (the first narrow-interface capability) -------------------------

    @property
    def selection(self) -> Optional[object]:
        """The current selection address, if any (application-specific)."""
        return self._selection

    def _set_selection(self, address: object) -> None:
        self._selection = address
        self._emit("base.selection", address=address)

    def clear_selection(self) -> None:
        """Drop the current selection."""
        self._selection = None

    def current_selection_address(self) -> object:
        """The address of the current selection.

        This is the entire creation-side interface the superimposed layer
        relies on.  Raises :class:`NoSelectionError` when nothing is
        selected.
        """
        if self._selection is None:
            raise NoSelectionError(
                f"{type(self).__name__} has no current selection")
        return self._selection

    # -- navigation (the second narrow-interface capability) -------------------------

    @abstractmethod
    def navigate_to(self, address: object) -> object:
        """Drive the application to *address*; return the element content.

        Implementations open the right document, activate the right
        sub-context (worksheet, page, slide…), select the element and
        highlight it.  Raises :class:`AddressError` when the address
        cannot be honoured.
        """

    # -- highlight / window state ------------------------------------------------------

    @property
    def highlight(self) -> Optional[object]:
        """The address most recently highlighted by a resolution."""
        return self._highlight

    def _set_highlight(self, address: object) -> None:
        self._highlight = address
        self._emit("base.highlight", address=address)

    def bring_to_front(self) -> None:
        """Surface the application window (simultaneous viewing)."""
        self.visible = True
        self.in_front = True

    def send_to_back(self) -> None:
        """Hide the application window (independent viewing)."""
        self.in_front = False

    def hide(self) -> None:
        """Close the window entirely."""
        self.visible = False
        self.in_front = False

    # -- internals -----------------------------------------------------------------------

    def _emit(self, topic: str, **payload) -> None:
        if self.bus is not None:
            payload.setdefault("document",
                               self._document.name if self._document else None)
            self.bus.publish(topic, app=self.kind, **payload)

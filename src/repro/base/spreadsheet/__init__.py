"""The spreadsheet base application (Excel substitute) and its marks."""

from repro.base.spreadsheet.app import SpreadsheetAddress, SpreadsheetApp
from repro.base.spreadsheet.formulas import (evaluate_cell, evaluate_range,
                                             is_formula)
from repro.base.spreadsheet.marks import (ExcelExtractorModule, ExcelMark,
                                          ExcelMarkModule)
from repro.base.spreadsheet.workbook import (CellRange, Workbook, Worksheet,
                                             column_to_index, format_cell_ref,
                                             index_to_column, parse_cell_ref)

__all__ = [
    "SpreadsheetAddress",
    "SpreadsheetApp",
    "evaluate_cell",
    "evaluate_range",
    "is_formula",
    "ExcelExtractorModule",
    "ExcelMark",
    "ExcelMarkModule",
    "CellRange",
    "Workbook",
    "Worksheet",
    "column_to_index",
    "format_cell_ref",
    "index_to_column",
    "parse_cell_ref",
]

"""The simulated spreadsheet application (the Excel stand-in).

Exposes Excel-like verbs — open workbook, activate sheet, select range —
and the narrow base-application interface on top of them.  The resolve
protocol in Section 4.2 ("tell Microsoft Excel to open the file, activate
the worksheet, and select the appropriate range") is implemented verbatim
by :meth:`SpreadsheetApp.navigate_to`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import AddressError
from repro.base.application import BaseApplication
from repro.base.spreadsheet.workbook import CellRange, Workbook, Worksheet


@dataclass(frozen=True)
class SpreadsheetAddress:
    """The address form an Excel mark carries (Fig. 8):
    ``fileName``, ``sheetName``, ``range``."""

    file_name: str
    sheet_name: str
    range: str

    def __str__(self) -> str:
        return f"{self.file_name}!{self.sheet_name}!{self.range}"


class SpreadsheetApp(BaseApplication):
    """Open workbooks, activate sheets, select ranges."""

    kind = "spreadsheet"

    def __init__(self, library, bus=None) -> None:
        super().__init__(library, bus)
        self._active_sheet: Optional[str] = None

    # -- Excel-like verbs -----------------------------------------------------

    def open_workbook(self, file_name: str) -> Workbook:
        """Open a workbook, activating its first sheet."""
        workbook = self.open_document(file_name)
        assert isinstance(workbook, Workbook)
        names = workbook.sheet_names()
        self._active_sheet = names[0] if names else None
        return workbook

    def activate_sheet(self, sheet_name: str) -> Worksheet:
        """Make *sheet_name* the active sheet of the open workbook."""
        workbook = self.require_document()
        assert isinstance(workbook, Workbook)
        sheet = workbook.sheet(sheet_name)  # raises for unknown names
        self._active_sheet = sheet_name
        return sheet

    @property
    def active_sheet(self) -> Optional[str]:
        """The active sheet name, if a workbook is open."""
        return self._active_sheet

    def select_range(self, range_text: str) -> SpreadsheetAddress:
        """Select a range on the active sheet; returns its full address."""
        workbook = self.require_document()
        if self._active_sheet is None:
            raise AddressError("no active sheet to select on")
        cell_range = CellRange.parse(range_text)  # validates syntax
        address = SpreadsheetAddress(workbook.name, self._active_sheet,
                                     str(cell_range))
        self._set_selection(address)
        return address

    def selected_values(self) -> List[List]:
        """The values under the current selection (row-major matrix)."""
        address = self.current_selection_address()
        assert isinstance(address, SpreadsheetAddress)
        return self.values_at(address)

    # -- the narrow interface ------------------------------------------------------

    def navigate_to(self, address: SpreadsheetAddress) -> List[List]:
        """Open the file, activate the worksheet, select the range.

        Exactly the Section 4.2 resolution sequence.  Returns the range's
        values and leaves the range highlighted.
        """
        if not isinstance(address, SpreadsheetAddress):
            raise AddressError(f"not a spreadsheet address: {address!r}")
        self.open_workbook(address.file_name)
        self.activate_sheet(address.sheet_name)
        self.select_range(address.range)
        self._set_highlight(address)
        return self.values_at(address)

    def values_at(self, address: SpreadsheetAddress) -> List[List]:
        """Read the values a spreadsheet address covers (no UI effects).

        Formula cells (``=SUM(B2:B4)`` …) evaluate live, so a resolved
        mark always reports the current computed value.
        """
        from repro.base.spreadsheet.formulas import evaluate_range
        workbook = self.library.get(address.file_name)
        if not isinstance(workbook, Workbook):
            raise AddressError(f"{address.file_name!r} is not a workbook")
        sheet = workbook.sheet(address.sheet_name)
        return evaluate_range(sheet, address.range)

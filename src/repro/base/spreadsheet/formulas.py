"""Formula evaluation for the spreadsheet substitute.

Real medication lists and flowsheets compute: totals, averages, deltas.
To make the Excel stand-in a faithful substrate, worksheets may hold
formula cells (strings starting with ``=``) which evaluate on read:

- cell references: ``=B2``
- ranges inside functions: ``=SUM(B2:B9)``, ``AVG``, ``MIN``, ``MAX``,
  ``COUNT``
- arithmetic with ``+ - * /``, parentheses, and numeric literals:
  ``=(B2+B3)*2``

Evaluation is by recursive descent over a tokenized expression, pulling
referenced values live from the worksheet — so a mark resolved over a
formula cell reports the *current computed* value, which the redundancy
experiments exercise.  Reference cycles raise :class:`AddressError`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set, Tuple

from repro.errors import AddressError
from repro.base.spreadsheet.workbook import (CellRange, Worksheet,
                                             parse_cell_ref)

Number = float

_TOKEN_RE = re.compile(r"""
    (?P<range>[A-Za-z]+[1-9]\d*:[A-Za-z]+[1-9]\d*)
  | (?P<cell>[A-Za-z]+[1-9]\d*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<func>[A-Za-z]+)(?=\()
  | (?P<op>[()+\-*/,])
  | (?P<ws>\s+)
""", re.VERBOSE)

_FUNCTIONS = {
    "SUM": sum,
    "AVG": lambda values: sum(values) / len(values) if values else 0.0,
    "MIN": min,
    "MAX": max,
    "COUNT": len,
}


def is_formula(value: object) -> bool:
    """Whether a cell value is a formula (a string starting with '=')."""
    return isinstance(value, str) and value.startswith("=")


def evaluate_cell(sheet: Worksheet, ref: str,
                  _active: Optional[Set[Tuple[int, int]]] = None) -> object:
    """The cell's value with formulas evaluated (non-formulas pass through).

    ``_active`` carries the in-progress evaluation set for cycle
    detection; callers never pass it.
    """
    position = parse_cell_ref(ref)
    active = _active if _active is not None else set()
    if position in active:
        raise AddressError(f"formula reference cycle at {ref}")
    raw = sheet.cell(ref)
    if not is_formula(raw):
        return raw
    active.add(position)
    try:
        return _Evaluator(sheet, str(raw)[1:], active).evaluate()
    finally:
        active.discard(position)


def evaluate_range(sheet: Worksheet, range_text: str) -> List[List[object]]:
    """Range values with every formula cell evaluated."""
    cell_range = CellRange.parse(range_text)
    rows = []
    for row in range(cell_range.top, cell_range.bottom + 1):
        out_row = []
        for col in range(cell_range.left, cell_range.right + 1):
            from repro.base.spreadsheet.workbook import format_cell_ref
            out_row.append(evaluate_cell(sheet, format_cell_ref(row, col)))
        rows.append(out_row)
    return rows


class _Evaluator:
    """Recursive-descent evaluator over one formula expression."""

    def __init__(self, sheet: Worksheet, expression: str,
                 active: Set[Tuple[int, int]]) -> None:
        self._sheet = sheet
        self._active = active
        self._tokens = self._tokenize(expression)
        self._pos = 0

    @staticmethod
    def _tokenize(expression: str) -> List[Tuple[str, str]]:
        tokens: List[Tuple[str, str]] = []
        position = 0
        while position < len(expression):
            match = _TOKEN_RE.match(expression, position)
            if match is None:
                raise AddressError(
                    f"bad formula at {expression[position:]!r}")
            kind = match.lastgroup
            if kind != "ws":
                tokens.append((kind, match.group(0)))
            position = match.end()
        return tokens

    # -- grammar: expr := term (('+'|'-') term)*
    #             term := factor (('*'|'/') factor)*
    #             factor := number | cell | func '(' args ')' |
    #                       '(' expr ')' | '-' factor

    def evaluate(self) -> Number:
        value = self._expr()
        if self._pos != len(self._tokens):
            raise AddressError("trailing tokens in formula")
        return value

    def _expr(self) -> Number:
        value = self._term()
        while self._peek_op() in ("+", "-"):
            op = self._next()[1]
            right = self._term()
            value = value + right if op == "+" else value - right
        return value

    def _term(self) -> Number:
        value = self._factor()
        while self._peek_op() in ("*", "/"):
            op = self._next()[1]
            right = self._factor()
            if op == "/":
                if right == 0:
                    raise AddressError("division by zero in formula")
                value = value / right
            else:
                value = value * right
        return value

    def _factor(self) -> Number:
        if self._pos >= len(self._tokens):
            raise AddressError("formula ended unexpectedly")
        kind, text = self._tokens[self._pos]
        if kind == "op" and text == "-":
            self._pos += 1
            return -self._factor()
        if kind == "op" and text == "(":
            self._pos += 1
            value = self._expr()
            self._expect(")")
            return value
        if kind == "number":
            self._pos += 1
            return float(text)
        if kind == "cell":
            self._pos += 1
            return self._cell_value(text)
        if kind == "func":
            return self._function(text)
        raise AddressError(f"unexpected {text!r} in formula")

    def _function(self, name: str) -> Number:
        upper = name.upper()
        if upper not in _FUNCTIONS:
            raise AddressError(f"unknown function {name!r}")
        self._pos += 1
        self._expect("(")
        values: List[Number] = []
        while True:
            kind, text = self._tokens[self._pos] \
                if self._pos < len(self._tokens) else ("", "")
            if kind == "range":
                self._pos += 1
                values.extend(self._range_values(text))
            else:
                values.append(self._expr())
            if self._peek_op() == ",":
                self._pos += 1
                continue
            break
        self._expect(")")
        if upper in ("MIN", "MAX") and not values:
            raise AddressError(f"{upper} of nothing")
        return float(_FUNCTIONS[upper](values))

    def _range_values(self, range_text: str) -> List[Number]:
        values: List[Number] = []
        for row, col in CellRange.parse(range_text).cells():
            from repro.base.spreadsheet.workbook import format_cell_ref
            value = evaluate_cell(self._sheet, format_cell_ref(row, col),
                                  self._active)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue  # non-numeric cells are skipped, as Excel does
            values.append(float(value))
        return values

    def _cell_value(self, ref: str) -> Number:
        value = evaluate_cell(self._sheet, ref, self._active)
        if value is None:
            return 0.0  # empty cells count as zero, as Excel does
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise AddressError(f"cell {ref} is not numeric")
        return float(value)

    def _peek_op(self) -> str:
        if self._pos < len(self._tokens):
            kind, text = self._tokens[self._pos]
            if kind == "op":
                return text
        return ""

    def _next(self) -> Tuple[str, str]:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, op: str) -> None:
        if self._peek_op() != op:
            raise AddressError(f"expected {op!r} in formula")
        self._pos += 1

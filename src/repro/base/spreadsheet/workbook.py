"""A spreadsheet document model with A1-style addressing.

Stands in for Microsoft Excel workbooks (see DESIGN.md substitutions).
The model is deliberately close to what the paper's Excel mark needs:
workbooks contain named worksheets; worksheets hold sparse cells addressed
``A1``-style; a range like ``B2:C4`` selects a rectangle of cells.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import AddressError
from repro.base.application import BaseDocument

CellValue = Union[str, int, float, bool]

_CELL_RE = re.compile(r"^(?P<col>[A-Z]+)(?P<row>[1-9]\d*)$")


def column_to_index(letters: str) -> int:
    """Convert column letters to a 1-based index: A->1, Z->26, AA->27."""
    if not letters or not letters.isalpha():
        raise AddressError(f"bad column letters: {letters!r}")
    index = 0
    for ch in letters.upper():
        index = index * 26 + (ord(ch) - ord("A") + 1)
    return index


def index_to_column(index: int) -> str:
    """Convert a 1-based column index to letters: 1->A, 27->AA."""
    if index < 1:
        raise AddressError(f"bad column index: {index}")
    letters = []
    while index:
        index, rem = divmod(index - 1, 26)
        letters.append(chr(ord("A") + rem))
    return "".join(reversed(letters))


def parse_cell_ref(ref: str) -> Tuple[int, int]:
    """Parse ``'B3'`` into 1-based ``(row, column)`` = ``(3, 2)``."""
    match = _CELL_RE.match(ref.strip().upper())
    if match is None:
        raise AddressError(f"bad cell reference: {ref!r}")
    return int(match.group("row")), column_to_index(match.group("col"))


def format_cell_ref(row: int, col: int) -> str:
    """Format 1-based ``(row, column)`` as ``'B3'``."""
    if row < 1:
        raise AddressError(f"bad row index: {row}")
    return f"{index_to_column(col)}{row}"


@dataclass(frozen=True)
class CellRange:
    """A rectangular range, normalized so top-left <= bottom-right."""

    top: int
    left: int
    bottom: int
    right: int

    def __post_init__(self) -> None:
        if self.top < 1 or self.left < 1:
            raise AddressError("range indices are 1-based")
        if self.bottom < self.top or self.right < self.left:
            raise AddressError("range corners are not normalized")

    @classmethod
    def parse(cls, text: str) -> "CellRange":
        """Parse ``'B2:C4'`` (or a single cell ``'B2'``)."""
        first, colon, second = text.strip().partition(":")
        if colon and not second:
            raise AddressError(f"bad range: {text!r}")
        row1, col1 = parse_cell_ref(first)
        row2, col2 = parse_cell_ref(second) if second else (row1, col1)
        return cls(min(row1, row2), min(col1, col2),
                   max(row1, row2), max(col1, col2))

    def __str__(self) -> str:
        start = format_cell_ref(self.top, self.left)
        end = format_cell_ref(self.bottom, self.right)
        return start if start == end else f"{start}:{end}"

    @property
    def is_single_cell(self) -> bool:
        """Whether the range covers exactly one cell."""
        return self.top == self.bottom and self.left == self.right

    @property
    def height(self) -> int:
        """Number of rows covered."""
        return self.bottom - self.top + 1

    @property
    def width(self) -> int:
        """Number of columns covered."""
        return self.right - self.left + 1

    def cells(self) -> Iterator[Tuple[int, int]]:
        """Yield every (row, col) in the range, row-major."""
        for row in range(self.top, self.bottom + 1):
            for col in range(self.left, self.right + 1):
                yield row, col

    def contains(self, row: int, col: int) -> bool:
        """Whether 1-based (row, col) lies inside the range."""
        return self.top <= row <= self.bottom and self.left <= col <= self.right


class Worksheet:
    """A named sheet of sparse cells."""

    def __init__(self, name: str) -> None:
        if not name:
            raise AddressError("worksheet name must be non-empty")
        self.name = name
        self._cells: Dict[Tuple[int, int], CellValue] = {}

    def set_cell(self, ref: str, value: CellValue) -> None:
        """Write one cell by A1 reference."""
        self._cells[parse_cell_ref(ref)] = value

    def set_row(self, row: int, values: List[CellValue],
                start_col: int = 1) -> None:
        """Write a run of cells left to right starting at (row, start_col)."""
        for offset, value in enumerate(values):
            self._cells[(row, start_col + offset)] = value

    def cell(self, ref: str) -> Optional[CellValue]:
        """Read one cell (``None`` when empty)."""
        return self._cells.get(parse_cell_ref(ref))

    def clear_cell(self, ref: str) -> None:
        """Empty one cell."""
        self._cells.pop(parse_cell_ref(ref), None)

    def range_values(self, cell_range: CellRange) -> List[List[Optional[CellValue]]]:
        """The range's values as a row-major matrix (empty cells = None)."""
        return [[self._cells.get((row, col))
                 for col in range(cell_range.left, cell_range.right + 1)]
                for row in range(cell_range.top, cell_range.bottom + 1)]

    def used_range(self) -> Optional[CellRange]:
        """The smallest range covering every non-empty cell."""
        if not self._cells:
            return None
        rows = [rc[0] for rc in self._cells]
        cols = [rc[1] for rc in self._cells]
        return CellRange(min(rows), min(cols), max(rows), max(cols))

    def cell_count(self) -> int:
        """How many cells hold values."""
        return len(self._cells)

    def find(self, value: CellValue) -> List[str]:
        """A1 references of every cell equal to *value*, row-major order."""
        hits = [rc for rc, v in self._cells.items() if v == value]
        return [format_cell_ref(row, col) for row, col in sorted(hits)]


class Workbook(BaseDocument):
    """A spreadsheet file: an ordered collection of worksheets."""

    kind = "spreadsheet"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._sheets: Dict[str, Worksheet] = {}

    def add_sheet(self, sheet_name: str) -> Worksheet:
        """Create a worksheet; duplicate names are an error."""
        if sheet_name in self._sheets:
            raise AddressError(f"sheet {sheet_name!r} already exists")
        sheet = Worksheet(sheet_name)
        self._sheets[sheet_name] = sheet
        return sheet

    def sheet(self, sheet_name: str) -> Worksheet:
        """Fetch a worksheet by name."""
        try:
            return self._sheets[sheet_name]
        except KeyError:
            raise AddressError(
                f"workbook {self.name!r} has no sheet {sheet_name!r}") from None

    def remove_sheet(self, sheet_name: str) -> None:
        """Delete a worksheet."""
        if sheet_name not in self._sheets:
            raise AddressError(
                f"workbook {self.name!r} has no sheet {sheet_name!r}")
        del self._sheets[sheet_name]

    def sheet_names(self) -> List[str]:
        """Worksheet names, in creation order."""
        return list(self._sheets)

    def estimated_bytes(self) -> int:
        total = 0
        for sheet in self._sheets.values():
            total += len(sheet.name)
            for value in sheet._cells.values():
                total += len(str(value)) + 8  # value text + coordinates
        return total

"""The Excel mark and its modules (Fig. 8, left).

``ExcelMark`` carries exactly the fields the paper draws: ``markId``,
``fileName``, ``sheetName``, ``range``.  Two modules serve it:

- :class:`ExcelMarkModule` (viewer) — resolves by driving the spreadsheet
  app through open/activate/select and surfaces the window;
- :class:`ExcelExtractorModule` (extractor) — reads the range's values
  without disturbing the application's windows.  This pair demonstrates
  the architecture's answer to Monikers: multiple resolution behaviours
  for one inert mark type (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.errors import (AddressError, DocumentNotFoundError,
                          MarkResolutionError)
from repro.base.spreadsheet.app import SpreadsheetAddress, SpreadsheetApp
from repro.marks.mark import Mark
from repro.marks.modules import (ROLE_EXTRACTOR, ROLE_VIEWER, MarkModule,
                                 Resolution)


@dataclass(frozen=True)
class ExcelMark(Mark):
    """Addresses a cell or range of cells within a workbook."""

    file_name: str = ""
    sheet_name: str = ""
    range: str = ""

    mark_type: ClassVar[str] = "excel"

    def to_address(self) -> SpreadsheetAddress:
        """The application-level address this mark stores."""
        return SpreadsheetAddress(self.file_name, self.sheet_name, self.range)


class ExcelMarkModule(MarkModule):
    """Viewer-role module: resolve in context (open/activate/select)."""

    mark_class = ExcelMark
    application_kind = SpreadsheetApp.kind
    role = ROLE_VIEWER

    def create_from_selection(self, app: SpreadsheetApp, mark_id: str) -> ExcelMark:
        address = app.current_selection_address()
        return ExcelMark(mark_id, file_name=address.file_name,
                         sheet_name=address.sheet_name, range=address.range)

    def resolve(self, mark: ExcelMark, app: SpreadsheetApp) -> Resolution:
        self.check_mark(mark)
        address = mark.to_address()
        try:
            values = app.navigate_to(address)
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(f"cannot resolve {mark.describe()}: {exc}") from exc
        app.bring_to_front()
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.file_name, address=str(address),
                          content=values,
                          context=f"sheet {mark.sheet_name}", surfaced=True)


class ExcelExtractorModule(MarkModule):
    """Extractor-role module: fetch values without surfacing the app."""

    mark_class = ExcelMark
    application_kind = SpreadsheetApp.kind
    role = ROLE_EXTRACTOR

    def create_from_selection(self, app: SpreadsheetApp, mark_id: str) -> ExcelMark:
        # Creation is identical regardless of role.
        return ExcelMarkModule().create_from_selection(app, mark_id)

    def resolve(self, mark: ExcelMark, app: SpreadsheetApp) -> Resolution:
        self.check_mark(mark)
        address = mark.to_address()
        try:
            values = app.values_at(address)
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(f"cannot resolve {mark.describe()}: {exc}") from exc
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.file_name, address=str(address),
                          content=values,
                          context=f"sheet {mark.sheet_name}", surfaced=False)

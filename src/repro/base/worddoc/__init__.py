"""The word-processor base application (Microsoft Word substitute)."""

from repro.base.worddoc.app import WordAddress, WordApp
from repro.base.worddoc.document import WordComment, WordDocument
from repro.base.worddoc.marks import (WordExtractorModule, WordMark,
                                      WordMarkModule)

__all__ = [
    "WordAddress",
    "WordApp",
    "WordComment",
    "WordDocument",
    "WordExtractorModule",
    "WordMark",
    "WordMarkModule",
]

"""A paragraph-structured document model (the Microsoft Word stand-in).

Word marks in SLIMPad address character ranges within named documents;
the model is a list of paragraphs of plain text.  The document also
supports embedded comments — used by the in-situ annotation baseline
(Section 5 compares SLIMPad to Word Comments' next/previous navigation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import AddressError
from repro.base.application import BaseDocument


@dataclass(frozen=True)
class WordComment:
    """An in-document comment anchored to a span of one paragraph.

    Columns are 0-based with an exclusive end — matching Word's behaviour
    of anchoring comments to a run of characters.
    """

    paragraph: int
    start: int
    end: int
    text: str
    author: str = ""


class WordDocument(BaseDocument):
    """A named document: ordered paragraphs plus anchored comments."""

    kind = "word"

    def __init__(self, name: str, paragraphs: List[str]) -> None:
        super().__init__(name)
        self.paragraphs = list(paragraphs)
        self.comments: List[WordComment] = []

    def paragraph(self, index: int) -> str:
        """The 1-based *index*-th paragraph."""
        if index < 1 or index > len(self.paragraphs):
            raise AddressError(
                f"{self.name!r} has no paragraph {index} "
                f"(has {len(self.paragraphs)})")
        return self.paragraphs[index - 1]

    def span_text(self, paragraph: int, start: int, end: int) -> str:
        """The text of a character span within one paragraph."""
        text = self.paragraph(paragraph)
        if not (0 <= start <= end <= len(text)):
            raise AddressError(
                f"span [{start}, {end}) outside paragraph {paragraph} "
                f"of length {len(text)}")
        return text[start:end]

    def replace_paragraph(self, index: int, text: str) -> None:
        """Edit one paragraph in place (base-layer edits happen!)."""
        self.paragraph(index)  # validates
        self.paragraphs[index - 1] = text

    def insert_paragraph(self, index: int, text: str) -> None:
        """Insert a paragraph so it becomes the 1-based *index*-th."""
        if index < 1 or index > len(self.paragraphs) + 1:
            raise AddressError(f"cannot insert at position {index}")
        self.paragraphs.insert(index - 1, text)

    # -- comments (for the in-situ annotation baseline) ---------------------------

    def add_comment(self, comment: WordComment) -> WordComment:
        """Anchor a comment (validating its span)."""
        self.span_text(comment.paragraph, comment.start, comment.end)
        self.comments.append(comment)
        return comment

    def comments_in_order(self) -> List[WordComment]:
        """Comments sorted by document position (for next/previous)."""
        return sorted(self.comments,
                      key=lambda c: (c.paragraph, c.start, c.end))

    def estimated_bytes(self) -> int:
        total = sum(len(p) + 1 for p in self.paragraphs)
        total += sum(len(c.text) + len(c.author) + 12 for c in self.comments)
        return total

"""The Word mark and its modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.errors import (AddressError, DocumentNotFoundError,
                          MarkResolutionError)
from repro.base.worddoc.app import WordAddress, WordApp
from repro.marks.mark import Mark
from repro.marks.modules import (ROLE_EXTRACTOR, ROLE_VIEWER, MarkModule,
                                 Resolution)


@dataclass(frozen=True)
class WordMark(Mark):
    """Addresses a character span within a paragraph of a document."""

    file_name: str = ""
    paragraph: int = 1
    start: int = 0
    end: int = 0

    mark_type: ClassVar[str] = "word"

    def to_address(self) -> WordAddress:
        """The application-level address this mark stores."""
        return WordAddress(self.file_name, self.paragraph, self.start, self.end)


class WordMarkModule(MarkModule):
    """Viewer-role module."""

    mark_class = WordMark
    application_kind = WordApp.kind
    role = ROLE_VIEWER

    def create_from_selection(self, app: WordApp, mark_id: str) -> WordMark:
        address = app.current_selection_address()
        return WordMark(mark_id, file_name=address.file_name,
                        paragraph=address.paragraph,
                        start=address.start, end=address.end)

    def resolve(self, mark: WordMark, app: WordApp) -> Resolution:
        self.check_mark(mark)
        try:
            content = app.navigate_to(mark.to_address())
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(
                f"cannot resolve {mark.describe()}: {exc}") from exc
        app.bring_to_front()
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.file_name,
                          address=str(mark.to_address()), content=content,
                          context=f"paragraph {mark.paragraph}", surfaced=True)


class WordExtractorModule(MarkModule):
    """Extractor-role module."""

    mark_class = WordMark
    application_kind = WordApp.kind
    role = ROLE_EXTRACTOR

    def create_from_selection(self, app: WordApp, mark_id: str) -> WordMark:
        return WordMarkModule().create_from_selection(app, mark_id)

    def resolve(self, mark: WordMark, app: WordApp) -> Resolution:
        self.check_mark(mark)
        try:
            content = app.text_at(mark.to_address())
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(
                f"cannot resolve {mark.describe()}: {exc}") from exc
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.file_name,
                          address=str(mark.to_address()), content=content,
                          context=f"paragraph {mark.paragraph}", surfaced=False)

"""The simulated word processor."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError
from repro.base.application import BaseApplication
from repro.base.worddoc.document import WordDocument


@dataclass(frozen=True)
class WordAddress:
    """A character span within one paragraph of a document."""

    file_name: str
    paragraph: int
    start: int
    end: int

    def __str__(self) -> str:
        return f"{self.file_name} ¶{self.paragraph}[{self.start}:{self.end}]"


class WordApp(BaseApplication):
    """Open documents and select character runs."""

    kind = "word"

    def select_span(self, paragraph: int, start: int, end: int) -> WordAddress:
        """Select a character span in the open document."""
        document = self.require_document()
        assert isinstance(document, WordDocument)
        document.span_text(paragraph, start, end)  # validates
        address = WordAddress(document.name, paragraph, start, end)
        self._set_selection(address)
        return address

    def selected_text(self) -> str:
        """The text under the current selection."""
        address = self.current_selection_address()
        assert isinstance(address, WordAddress)
        return self.text_at(address)

    # -- the narrow interface -----------------------------------------------------

    def navigate_to(self, address: WordAddress) -> str:
        """Open the document and highlight the span."""
        if not isinstance(address, WordAddress):
            raise AddressError(f"not a Word address: {address!r}")
        self.open_document(address.file_name)
        content = self.text_at(address)
        self._set_selection(address)
        self._set_highlight(address)
        return content

    def text_at(self, address: WordAddress) -> str:
        """Read the span's text (no UI effects)."""
        document = self.library.get(address.file_name)
        if not isinstance(document, WordDocument):
            raise AddressError(f"{address.file_name!r} is not a Word document")
        return document.span_text(address.paragraph, address.start, address.end)

"""The simulated slide-show application."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AddressError
from repro.base.application import BaseApplication
from repro.base.slides.presentation import Presentation, Shape


@dataclass(frozen=True)
class SlideAddress:
    """A shape on a numbered slide of a presentation."""

    file_name: str
    slide: int
    shape: str

    def __str__(self) -> str:
        return f"{self.file_name} slide {self.slide} / {self.shape}"


class SlidesApp(BaseApplication):
    """Open decks, turn slides, select shapes."""

    kind = "slides"

    def __init__(self, library, bus=None) -> None:
        super().__init__(library, bus)
        self._current_slide: Optional[int] = None

    # -- deck verbs ------------------------------------------------------------

    def open_presentation(self, file_name: str) -> Presentation:
        """Open a deck at its first slide."""
        deck = self.open_document(file_name)
        assert isinstance(deck, Presentation)
        self._current_slide = deck.slides[0].number if deck.slides else None
        return deck

    def goto_slide(self, number: int) -> None:
        """Show a slide of the open deck."""
        deck = self.require_document()
        assert isinstance(deck, Presentation)
        deck.slide(number)  # validates
        self._current_slide = number

    @property
    def current_slide(self) -> Optional[int]:
        """The displayed slide number, if a deck is open."""
        return self._current_slide

    def select_shape(self, shape_name: str) -> SlideAddress:
        """Select a shape on the current slide."""
        deck = self.require_document()
        assert isinstance(deck, Presentation)
        if self._current_slide is None:
            raise AddressError("no current slide to select on")
        deck.slide(self._current_slide).shape(shape_name)  # validates
        address = SlideAddress(deck.name, self._current_slide, shape_name)
        self._set_selection(address)
        return address

    def selected_shape(self) -> Shape:
        """The shape under the current selection."""
        address = self.current_selection_address()
        assert isinstance(address, SlideAddress)
        return self.shape_at(address)

    # -- the narrow interface -----------------------------------------------------

    def navigate_to(self, address: SlideAddress) -> str:
        """Open the deck, show the slide, highlight the shape."""
        if not isinstance(address, SlideAddress):
            raise AddressError(f"not a slide address: {address!r}")
        self.open_presentation(address.file_name)
        self.goto_slide(address.slide)
        self.select_shape(address.shape)
        self._set_highlight(address)
        return self.shape_at(address).text

    def shape_at(self, address: SlideAddress) -> Shape:
        """The shape an address names (no UI effects)."""
        deck = self.library.get(address.file_name)
        if not isinstance(deck, Presentation):
            raise AddressError(f"{address.file_name!r} is not a presentation")
        return deck.slide(address.slide).shape(address.shape)

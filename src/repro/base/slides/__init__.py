"""The slide-show base application (Microsoft PowerPoint substitute)."""

from repro.base.slides.app import SlideAddress, SlidesApp
from repro.base.slides.marks import (SlideExtractorModule, SlideMark,
                                     SlideMarkModule)
from repro.base.slides.presentation import Presentation, Shape, Slide

__all__ = [
    "SlideAddress",
    "SlidesApp",
    "SlideExtractorModule",
    "SlideMark",
    "SlideMarkModule",
    "Presentation",
    "Shape",
    "Slide",
]

"""A slide-deck document model (the Microsoft PowerPoint stand-in).

PowerPoint marks address a shape on a numbered slide (optionally a text
run within the shape's text frame).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import AddressError
from repro.base.application import BaseDocument


class Shape:
    """A named shape with a text frame."""

    def __init__(self, name: str, text: str = "") -> None:
        if not name:
            raise AddressError("shape name must be non-empty")
        self.name = name
        self.text = text


class Slide:
    """A numbered slide holding named shapes."""

    def __init__(self, number: int, shapes: Optional[List[Shape]] = None) -> None:
        if number < 1:
            raise AddressError("slide numbers are 1-based")
        self.number = number
        self.shapes = list(shapes or [])

    def shape(self, name: str) -> Shape:
        """Fetch a shape by name."""
        for shape in self.shapes:
            if shape.name == name:
                return shape
        raise AddressError(f"slide {self.number} has no shape {name!r}")

    def add_shape(self, shape: Shape) -> Shape:
        """Add a shape; duplicate names are an error."""
        if any(s.name == shape.name for s in self.shapes):
            raise AddressError(
                f"slide {self.number} already has shape {shape.name!r}")
        self.shapes.append(shape)
        return shape


class Presentation(BaseDocument):
    """A named deck of slides."""

    kind = "slides"

    def __init__(self, name: str, slides: Optional[List[Slide]] = None) -> None:
        super().__init__(name)
        self.slides = list(slides or [])
        numbers = [s.number for s in self.slides]
        if numbers != sorted(set(numbers)):
            raise AddressError("slide numbers must be unique and ascending")

    def slide(self, number: int) -> Slide:
        """Fetch a slide by its 1-based number."""
        for slide in self.slides:
            if slide.number == number:
                return slide
        raise AddressError(f"{self.name!r} has no slide {number}")

    def add_slide(self) -> Slide:
        """Append a new empty slide."""
        number = self.slides[-1].number + 1 if self.slides else 1
        slide = Slide(number)
        self.slides.append(slide)
        return slide

    @property
    def slide_count(self) -> int:
        """How many slides the deck has."""
        return len(self.slides)

    def estimated_bytes(self) -> int:
        return sum(len(shape.name) + len(shape.text) + 8
                   for slide in self.slides for shape in slide.shapes)

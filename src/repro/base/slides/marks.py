"""The PowerPoint-style mark and its modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.errors import (AddressError, DocumentNotFoundError,
                          MarkResolutionError)
from repro.base.slides.app import SlideAddress, SlidesApp
from repro.marks.mark import Mark
from repro.marks.modules import (ROLE_EXTRACTOR, ROLE_VIEWER, MarkModule,
                                 Resolution)


@dataclass(frozen=True)
class SlideMark(Mark):
    """Addresses a shape on a slide of a presentation."""

    file_name: str = ""
    slide: int = 1
    shape: str = ""

    mark_type: ClassVar[str] = "slides"

    def to_address(self) -> SlideAddress:
        """The application-level address this mark stores."""
        return SlideAddress(self.file_name, self.slide, self.shape)


class SlideMarkModule(MarkModule):
    """Viewer-role module."""

    mark_class = SlideMark
    application_kind = SlidesApp.kind
    role = ROLE_VIEWER

    def create_from_selection(self, app: SlidesApp, mark_id: str) -> SlideMark:
        address = app.current_selection_address()
        return SlideMark(mark_id, file_name=address.file_name,
                         slide=address.slide, shape=address.shape)

    def resolve(self, mark: SlideMark, app: SlidesApp) -> Resolution:
        self.check_mark(mark)
        try:
            content = app.navigate_to(mark.to_address())
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(
                f"cannot resolve {mark.describe()}: {exc}") from exc
        app.bring_to_front()
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.file_name,
                          address=str(mark.to_address()), content=content,
                          context=f"slide {mark.slide}", surfaced=True)


class SlideExtractorModule(MarkModule):
    """Extractor-role module."""

    mark_class = SlideMark
    application_kind = SlidesApp.kind
    role = ROLE_EXTRACTOR

    def create_from_selection(self, app: SlidesApp, mark_id: str) -> SlideMark:
        return SlideMarkModule().create_from_selection(app, mark_id)

    def resolve(self, mark: SlideMark, app: SlidesApp) -> Resolution:
        self.check_mark(mark)
        try:
            shape = app.shape_at(mark.to_address())
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(
                f"cannot resolve {mark.describe()}: {exc}") from exc
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.file_name,
                          address=str(mark.to_address()), content=shape.text,
                          context=f"slide {mark.slide}", surfaced=False)

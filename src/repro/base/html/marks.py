"""The HTML mark and its modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.errors import (AddressError, DocumentNotFoundError,
                          MarkResolutionError)
from repro.base.html.app import BrowserApp, HtmlAddress
from repro.marks.mark import Mark
from repro.marks.modules import (ROLE_EXTRACTOR, ROLE_VIEWER, MarkModule,
                                 Resolution)


@dataclass(frozen=True)
class HTMLMark(Mark):
    """Addresses an element (or a text span within one) on a web page."""

    url: str = ""
    element_path: str = ""
    start: int = 0
    end: int = 0
    whole_element: bool = True

    mark_type: ClassVar[str] = "html"

    def to_address(self) -> HtmlAddress:
        """The application-level address this mark stores."""
        return HtmlAddress(self.url, self.element_path, self.start,
                           self.end, self.whole_element)


class HtmlMarkModule(MarkModule):
    """Viewer-role module: load the page, highlight the element."""

    mark_class = HTMLMark
    application_kind = BrowserApp.kind
    role = ROLE_VIEWER

    def create_from_selection(self, app: BrowserApp, mark_id: str) -> HTMLMark:
        address = app.current_selection_address()
        return HTMLMark(mark_id, url=address.url,
                        element_path=address.element_path,
                        start=address.start, end=address.end,
                        whole_element=address.whole_element)

    def resolve(self, mark: HTMLMark, app: BrowserApp) -> Resolution:
        self.check_mark(mark)
        try:
            content = app.navigate_to(mark.to_address())
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(
                f"cannot resolve {mark.describe()}: {exc}") from exc
        app.bring_to_front()
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.url,
                          address=str(mark.to_address()), content=content,
                          context=mark.element_path, surfaced=True)


class HtmlExtractorModule(MarkModule):
    """Extractor-role module: read the text without surfacing the browser."""

    mark_class = HTMLMark
    application_kind = BrowserApp.kind
    role = ROLE_EXTRACTOR

    def create_from_selection(self, app: BrowserApp, mark_id: str) -> HTMLMark:
        return HtmlMarkModule().create_from_selection(app, mark_id)

    def resolve(self, mark: HTMLMark, app: BrowserApp) -> Resolution:
        self.check_mark(mark)
        try:
            content = app.text_at(mark.to_address())
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(
                f"cannot resolve {mark.describe()}: {exc}") from exc
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.url,
                          address=str(mark.to_address()), content=content,
                          context=mark.element_path, surfaced=False)

"""The simulated web browser.

HTML marks are application-centric: the browser supplies the address of
the current selection — an element path (shared with the XML side) plus an
optional character span within the element's text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError
from repro.base.application import BaseApplication
from repro.base.html.parser import HtmlPage
from repro.base.xmldoc.dom import XmlElement
from repro.base.xmldoc.xpath import path_of, resolve_path


@dataclass(frozen=True)
class HtmlAddress:
    """An element (and optional text span within it) on a page.

    ``start``/``end`` are character offsets into the element's own text;
    ``(0, 0)`` with ``whole_element=True`` addresses the element itself.
    """

    url: str
    element_path: str
    start: int = 0
    end: int = 0
    whole_element: bool = True

    def __str__(self) -> str:
        span = "" if self.whole_element else f"@{self.start}-{self.end}"
        return f"{self.url}#{self.element_path}{span}"


class BrowserApp(BaseApplication):
    """Load pages by URL and select elements or text runs."""

    kind = "html"

    # -- browser verbs -------------------------------------------------------------

    def load(self, url: str) -> HtmlPage:
        """Navigate the browser to *url*."""
        page = self.open_document(url)
        assert isinstance(page, HtmlPage)
        return page

    def select_element(self, element: XmlElement) -> HtmlAddress:
        """Select a whole element of the loaded page."""
        page = self.require_document()
        address = HtmlAddress(page.name, path_of(element))
        self._set_selection(address)
        return address

    def select_text(self, element_path: str, start: int, end: int) -> HtmlAddress:
        """Select a character span within an element's text."""
        page = self.require_document()
        assert isinstance(page, HtmlPage)
        element = resolve_path(page.root, element_path)
        if not (0 <= start <= end <= len(element.text)):
            raise AddressError(
                f"span [{start}, {end}) outside element text "
                f"of length {len(element.text)}")
        address = HtmlAddress(page.name, element_path, start, end,
                              whole_element=False)
        self._set_selection(address)
        return address

    def selected_text(self) -> str:
        """The text under the current selection."""
        address = self.current_selection_address()
        assert isinstance(address, HtmlAddress)
        return self.text_at(address)

    # -- the narrow interface -----------------------------------------------------------

    def navigate_to(self, address: HtmlAddress) -> str:
        """Load the page and highlight the addressed element/span."""
        if not isinstance(address, HtmlAddress):
            raise AddressError(f"not an HTML address: {address!r}")
        self.load(address.url)
        content = self.text_at(address)
        self._set_selection(address)
        self._set_highlight(address)
        return content

    def element_at(self, address: HtmlAddress) -> XmlElement:
        """The element an address names (no UI effects)."""
        page = self.library.get(address.url)
        if not isinstance(page, HtmlPage):
            raise AddressError(f"{address.url!r} is not an HTML page")
        return resolve_path(page.root, address.element_path)

    def text_at(self, address: HtmlAddress) -> str:
        """The text an address covers (whole element or span)."""
        element = self.element_at(address)
        if address.whole_element:
            return element.full_text()
        if not (0 <= address.start <= address.end <= len(element.text)):
            raise AddressError(
                f"span [{address.start}, {address.end}) no longer fits "
                f"element text of length {len(element.text)}")
        return element.text[address.start:address.end]

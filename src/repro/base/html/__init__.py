"""The HTML base application (web-browser substitute)."""

from repro.base.html.app import BrowserApp, HtmlAddress
from repro.base.html.marks import HTMLMark, HtmlExtractorModule, HtmlMarkModule
from repro.base.html.parser import HtmlPage, parse_html

__all__ = [
    "BrowserApp",
    "HtmlAddress",
    "HTMLMark",
    "HtmlExtractorModule",
    "HtmlMarkModule",
    "HtmlPage",
    "parse_html",
]

"""A tolerant HTML parser for the base layer (the web-browser stand-in).

Real web pages are tag soup, and the paper's HTML marks must survive them.
This parser produces the same :class:`~repro.base.xmldoc.dom.XmlElement`
tree the XML side uses (so the path addressing in
:mod:`repro.base.xmldoc.xpath` applies), while tolerating HTML's habits:

- void elements (``<br>``, ``<img>`` …) never take children;
- ``<p>`` and ``<li>`` auto-close when a sibling opens;
- unclosed tags at end-of-input are closed implicitly;
- stray end tags are ignored;
- tag and attribute names are case-folded to lower case;
- attribute values may be unquoted;
- ``<script>``/``<style>`` content is treated as opaque text.
"""

from __future__ import annotations

import re
from typing import List

from repro.base.application import BaseDocument
from repro.base.xmldoc.dom import XmlElement

VOID_ELEMENTS = frozenset({
    "area", "base", "br", "col", "embed", "hr", "img", "input",
    "link", "meta", "param", "source", "track", "wbr",
})

#: Opening the key closes an open element whose tag is in the value set.
_AUTO_CLOSE = {
    "li": {"li"},
    "tr": {"tr", "td", "th"},
    "td": {"td", "th"},
    "th": {"td", "th"},
    "option": {"option"},
}
#: Block-level elements implicitly close an open <p> (HTML5 rules).
_CLOSES_P = frozenset({
    "p", "ul", "ol", "div", "table", "blockquote", "pre", "section",
    "article", "aside", "h1", "h2", "h3", "h4", "h5", "h6", "hr",
    "form", "fieldset", "address",
})
for _tag in _CLOSES_P:
    _AUTO_CLOSE.setdefault(_tag, set()).add("p")

_RAW_TEXT = frozenset({"script", "style"})

_TAG_RE = re.compile(r"<(/?)([A-Za-z][A-Za-z0-9\-]*)((?:[^>'\"]|'[^']*'|\"[^\"]*\")*?)(/?)>")
_ATTR_RE = re.compile(
    r"([A-Za-z_:][-A-Za-z0-9_:.]*)(?:\s*=\s*(\"[^\"]*\"|'[^']*'|[^\s\"'>]+))?")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"',
             "apos": "'", "nbsp": " "}


class HtmlPage(BaseDocument):
    """A web page: a URL (its name) plus a parsed element tree."""

    kind = "html"

    def __init__(self, url: str, root: XmlElement) -> None:
        super().__init__(url)
        self.root = root

    @classmethod
    def parse(cls, url: str, source: str) -> "HtmlPage":
        """Parse HTML source into a page."""
        return cls(url, parse_html(source))

    @property
    def url(self) -> str:
        """Alias: a page's name is its URL."""
        return self.name

    def title(self) -> str:
        """The page's <title> text, or '' when absent."""
        titles = self.root.find_all("title")
        return titles[0].full_text() if titles else ""

    def estimated_bytes(self) -> int:
        total = 0
        for element in self.root.iter():
            total += len(element.tag) + len(element.text)
            total += sum(len(k) + len(v) for k, v in element.attributes.items())
        return total


def parse_html(source: str) -> XmlElement:
    """Parse tag soup into an element tree rooted at ``<html>``.

    A synthetic ``<html>`` root is supplied when the source lacks one, so
    every page yields a single rooted tree for path addressing.
    """
    root = XmlElement("html")
    stack: List[XmlElement] = [root]
    text_parts: List[str] = []
    pos = 0
    source = _strip_comments_and_doctype(source)

    def flush_text(target: XmlElement) -> None:
        text = _decode("".join(text_parts)).strip()
        if text:
            target.text = f"{target.text} {text}".strip() if target.text else text
        text_parts.clear()

    while pos < len(source):
        lt = source.find("<", pos)
        if lt < 0:
            text_parts.append(source[pos:])
            break
        if lt > pos:
            text_parts.append(source[pos:lt])
        match = _TAG_RE.match(source, lt)
        if match is None:
            # A lone '<' in text: keep it and move on (tag soup!).
            text_parts.append("<")
            pos = lt + 1
            continue
        closing, raw_tag, raw_attrs, self_closing = match.groups()
        tag = raw_tag.lower()
        pos = match.end()
        flush_text(stack[-1])

        if closing:
            _close_tag(stack, root, tag)
            continue

        if tag == "html" and stack[-1] is root and not root.children \
                and not root.text:
            # The page supplies its own <html>: adopt its attributes
            # instead of nesting a second root.
            root.attributes.update(_parse_attrs(raw_attrs))
            continue

        _auto_close(stack, root, tag)
        element = XmlElement(tag, _parse_attrs(raw_attrs))
        stack[-1].append(element)
        if self_closing or tag in VOID_ELEMENTS:
            continue
        if tag in _RAW_TEXT:
            end = source.lower().find(f"</{tag}", pos)
            if end < 0:
                element.text = source[pos:].strip()
                pos = len(source)
            else:
                element.text = source[pos:end].strip()
                close = source.find(">", end)
                pos = len(source) if close < 0 else close + 1
            continue
        stack.append(element)

    flush_text(stack[-1])
    return root


def _strip_comments_and_doctype(source: str) -> str:
    source = re.sub(r"<!--.*?-->", "", source, flags=re.DOTALL)
    source = re.sub(r"<!DOCTYPE[^>]*>", "", source, flags=re.IGNORECASE)
    return source


def _parse_attrs(raw: str) -> dict:
    attributes = {}
    for match in _ATTR_RE.finditer(raw):
        name = match.group(1).lower()
        value = match.group(2)
        if value is None:
            attributes[name] = name  # boolean attribute, HTML-style
        else:
            if value[:1] in ("'", '"'):
                value = value[1:-1]
            attributes[name] = _decode(value)
    return attributes


def _auto_close(stack: List[XmlElement], root: XmlElement, tag: str) -> None:
    closers = _AUTO_CLOSE.get(tag)
    if closers and len(stack) > 1 and stack[-1].tag in closers:
        stack.pop()


def _close_tag(stack: List[XmlElement], root: XmlElement, tag: str) -> None:
    """Pop to the matching open tag; ignore stray end tags entirely."""
    for depth in range(len(stack) - 1, 0, -1):
        if stack[depth].tag == tag:
            del stack[depth:]
            return
    # No matching open tag: tag soup says ignore it.


def _decode(raw: str) -> str:
    def replace(match: "re.Match[str]") -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except ValueError:
                return match.group(0)
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except ValueError:
                return match.group(0)
        return _ENTITIES.get(body, match.group(0))

    return re.sub(r"&([^;&\s]+);", replace, raw)

"""The simulated XML viewer application.

Fig. 4's lab-report window: the viewer opens an XML document, the user
selects an element (by clicking, here by path), and mark resolution
*"opens the lab report and highlights the appropriate section of the XML
document"*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError
from repro.base.application import BaseApplication
from repro.base.xmldoc.dom import XmlDocument, XmlElement
from repro.base.xmldoc.xpath import path_of, resolve_path


@dataclass(frozen=True)
class XmlAddress:
    """The address form an XML mark carries (Fig. 8): ``fileName``,
    ``xmlPath``."""

    file_name: str
    xml_path: str

    def __str__(self) -> str:
        return f"{self.file_name}#{self.xml_path}"


class XmlViewerApp(BaseApplication):
    """Open XML documents and select elements by path."""

    kind = "xml"

    # -- viewer verbs -----------------------------------------------------------

    def select_element(self, element: XmlElement) -> XmlAddress:
        """Select a DOM element of the open document (user click)."""
        document = self.require_document()
        assert isinstance(document, XmlDocument)
        address = XmlAddress(document.name, path_of(element))
        self._set_selection(address)
        return address

    def select_path(self, xml_path: str) -> XmlAddress:
        """Select by path directly (validates the path exists)."""
        document = self.require_document()
        assert isinstance(document, XmlDocument)
        resolve_path(document.root, xml_path)
        address = XmlAddress(document.name, xml_path)
        self._set_selection(address)
        return address

    def selected_element(self) -> XmlElement:
        """The DOM element under the current selection."""
        address = self.current_selection_address()
        assert isinstance(address, XmlAddress)
        return self.element_at(address)

    # -- the narrow interface ------------------------------------------------------

    def navigate_to(self, address: XmlAddress) -> str:
        """Open the document and highlight the addressed element.

        Returns the element's full text content.
        """
        if not isinstance(address, XmlAddress):
            raise AddressError(f"not an XML address: {address!r}")
        self.open_document(address.file_name)
        element = self.element_at(address)
        self._set_selection(address)
        self._set_highlight(address)
        return element.full_text()

    def element_at(self, address: XmlAddress) -> XmlElement:
        """The DOM element an address names (no UI effects)."""
        document = self.library.get(address.file_name)
        if not isinstance(document, XmlDocument):
            raise AddressError(f"{address.file_name!r} is not an XML document")
        return resolve_path(document.root, address.xml_path)

"""The XML base application (viewer + parser + path addressing)."""

from repro.base.xmldoc.app import XmlAddress, XmlViewerApp
from repro.base.xmldoc.dom import XmlDocument, XmlElement, parse_xml
from repro.base.xmldoc.marks import XMLMark, XmlExtractorModule, XmlMarkModule
from repro.base.xmldoc.xpath import format_path, parse_path, path_of, resolve_path

__all__ = [
    "XmlAddress",
    "XmlViewerApp",
    "XmlDocument",
    "XmlElement",
    "parse_xml",
    "XMLMark",
    "XmlExtractorModule",
    "XmlMarkModule",
    "format_path",
    "parse_path",
    "path_of",
    "resolve_path",
]

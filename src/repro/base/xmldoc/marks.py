"""The XML mark and its modules (Fig. 8, right).

``XMLMark`` carries ``markId``, ``fileName``, ``xmlPath`` — the element-
path addressing of the lab-report scraps in Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.errors import (AddressError, DocumentNotFoundError,
                          MarkResolutionError)
from repro.base.xmldoc.app import XmlAddress, XmlViewerApp
from repro.marks.mark import Mark
from repro.marks.modules import (ROLE_EXTRACTOR, ROLE_VIEWER, MarkModule,
                                 Resolution)


@dataclass(frozen=True)
class XMLMark(Mark):
    """Addresses an element within an XML file."""

    file_name: str = ""
    xml_path: str = ""

    mark_type: ClassVar[str] = "xml"

    def to_address(self) -> XmlAddress:
        """The application-level address this mark stores."""
        return XmlAddress(self.file_name, self.xml_path)


class XmlMarkModule(MarkModule):
    """Viewer-role module: open the document, highlight the element."""

    mark_class = XMLMark
    application_kind = XmlViewerApp.kind
    role = ROLE_VIEWER

    def create_from_selection(self, app: XmlViewerApp, mark_id: str) -> XMLMark:
        address = app.current_selection_address()
        return XMLMark(mark_id, file_name=address.file_name,
                       xml_path=address.xml_path)

    def resolve(self, mark: XMLMark, app: XmlViewerApp) -> Resolution:
        self.check_mark(mark)
        try:
            content = app.navigate_to(mark.to_address())
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(
                f"cannot resolve {mark.describe()}: {exc}") from exc
        app.bring_to_front()
        element = app.element_at(mark.to_address())
        parent = element.parent
        context = f"under <{parent.tag}>" if parent is not None else "document root"
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.file_name,
                          address=str(mark.to_address()), content=content,
                          context=context, surfaced=True)


class XmlExtractorModule(MarkModule):
    """Extractor-role module: read the element's text without surfacing."""

    mark_class = XMLMark
    application_kind = XmlViewerApp.kind
    role = ROLE_EXTRACTOR

    def create_from_selection(self, app: XmlViewerApp, mark_id: str) -> XMLMark:
        return XmlMarkModule().create_from_selection(app, mark_id)

    def resolve(self, mark: XMLMark, app: XmlViewerApp) -> Resolution:
        self.check_mark(mark)
        try:
            element = app.element_at(mark.to_address())
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(
                f"cannot resolve {mark.describe()}: {exc}") from exc
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.file_name,
                          address=str(mark.to_address()),
                          content=element.full_text(),
                          context=f"<{element.tag}>", surfaced=False)

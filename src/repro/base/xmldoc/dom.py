"""A minimal XML document model and parser for the base layer.

Stands in for the XML files SLIMPad marks into (lab reports in Fig. 4).
This is *base-layer* machinery — a document an external application owns —
so it is independent of TRIM's persistence format.

The parser handles the well-formed subset that matters for documents:
elements, attributes (single- or double-quoted), character data with the
five standard entities, comments, processing instructions, and CDATA
sections.  Errors carry the character offset where parsing failed.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional

from repro.errors import ParseError
from repro.base.application import BaseDocument

_NAME_RE = re.compile(r"[A-Za-z_][\w.\-]*")
_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}


class XmlElement:
    """One element: tag, attributes, text pieces and child elements.

    ``children`` holds child *elements*; interleaved character data is
    concatenated into :attr:`text` (enough for addressing and display —
    we do not need mixed-content fidelity).
    """

    def __init__(self, tag: str, attributes: Optional[Dict[str, str]] = None) -> None:
        self.tag = tag
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.children: List["XmlElement"] = []
        self.text = ""
        self.parent: Optional["XmlElement"] = None

    def append(self, child: "XmlElement") -> "XmlElement":
        """Add a child element (setting its parent)."""
        child.parent = self
        self.children.append(child)
        return child

    def remove(self, child: "XmlElement") -> None:
        """Remove a direct child element."""
        self.children.remove(child)
        child.parent = None

    def child_tagged(self, tag: str, occurrence: int = 1) -> "XmlElement":
        """The *occurrence*-th (1-based) child with tag *tag*."""
        seen = 0
        for child in self.children:
            if child.tag == tag:
                seen += 1
                if seen == occurrence:
                    return child
        raise ParseError(f"<{self.tag}> has no {occurrence}-th <{tag}> child")

    def iter(self) -> Iterator["XmlElement"]:
        """This element and all descendants, document order."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find_all(self, tag: str) -> List["XmlElement"]:
        """Every descendant (or self) with tag *tag*, document order."""
        return [el for el in self.iter() if el.tag == tag]

    def full_text(self) -> str:
        """This element's text plus all descendants' text, in order."""
        parts = [self.text] if self.text else []
        for child in self.children:
            inner = child.full_text()
            if inner:
                parts.append(inner)
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"<XmlElement {self.tag} children={len(self.children)}>"


class XmlDocument(BaseDocument):
    """An XML file: a name plus a root element."""

    kind = "xml"

    def __init__(self, name: str, root: XmlElement) -> None:
        super().__init__(name)
        self.root = root

    @classmethod
    def parse(cls, name: str, text: str) -> "XmlDocument":
        """Parse XML source into a document."""
        return cls(name, parse_xml(text))

    def estimated_bytes(self) -> int:
        total = 0
        for element in self.root.iter():
            total += len(element.tag) + len(element.text)
            total += sum(len(k) + len(v) for k, v in element.attributes.items())
        return total


def parse_xml(text: str) -> XmlElement:
    """Parse well-formed XML source; returns the root element."""
    parser = _Parser(text)
    return parser.parse()


class _Parser:
    """A small recursive-descent XML parser."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0

    def parse(self) -> XmlElement:
        self._skip_misc()
        root = self._parse_element()
        self._skip_misc()
        if self._pos != len(self._text):
            self._fail("content after document element")
        return root

    # -- grammar -------------------------------------------------------------

    def _parse_element(self) -> XmlElement:
        if not self._consume("<"):
            self._fail("expected '<'")
        tag = self._parse_name()
        element = XmlElement(tag, self._parse_attributes())
        self._skip_ws()
        if self._consume("/>"):
            return element
        if not self._consume(">"):
            self._fail(f"malformed start tag <{tag}>")
        self._parse_content(element)
        return element

    def _parse_content(self, element: XmlElement) -> None:
        text_parts: List[str] = []
        while True:
            if self._pos >= len(self._text):
                self._fail(f"unexpected end of input inside <{element.tag}>")
            if self._peek("</"):
                self._pos += 2
                closing = self._parse_name()
                self._skip_ws()
                if not self._consume(">"):
                    self._fail("malformed end tag")
                if closing != element.tag:
                    self._fail(f"mismatched end tag </{closing}> "
                               f"for <{element.tag}>")
                element.text = "".join(text_parts).strip()
                return
            if self._peek("<!--"):
                self._skip_comment()
            elif self._peek("<![CDATA["):
                text_parts.append(self._parse_cdata())
            elif self._peek("<?"):
                self._skip_pi()
            elif self._peek("<"):
                element.append(self._parse_element())
            else:
                text_parts.append(self._parse_chardata())

    def _parse_attributes(self) -> Dict[str, str]:
        attributes: Dict[str, str] = {}
        while True:
            self._skip_ws()
            if self._peek(">") or self._peek("/>") or self._pos >= len(self._text):
                return attributes
            name = self._parse_name()
            self._skip_ws()
            if not self._consume("="):
                self._fail(f"attribute {name!r} missing '='")
            self._skip_ws()
            quote = self._text[self._pos:self._pos + 1]
            if quote not in ("'", '"'):
                self._fail(f"attribute {name!r} value must be quoted")
            self._pos += 1
            end = self._text.find(quote, self._pos)
            if end < 0:
                self._fail(f"unterminated attribute value for {name!r}")
            if name in attributes:
                self._fail(f"duplicate attribute {name!r}")
            attributes[name] = _decode_entities(self._text[self._pos:end],
                                                self)
            self._pos = end + 1

    def _parse_chardata(self) -> str:
        end = self._text.find("<", self._pos)
        if end < 0:
            self._fail("character data outside any element")
        raw = self._text[self._pos:end]
        self._pos = end
        return _decode_entities(raw, self)

    def _parse_cdata(self) -> str:
        self._pos += len("<![CDATA[")
        end = self._text.find("]]>", self._pos)
        if end < 0:
            self._fail("unterminated CDATA section")
        raw = self._text[self._pos:end]
        self._pos = end + 3
        return raw

    def _parse_name(self) -> str:
        match = _NAME_RE.match(self._text, self._pos)
        if match is None:
            self._fail("expected a name")
        self._pos = match.end()
        return match.group(0)

    # -- low-level helpers ------------------------------------------------------

    def _skip_misc(self) -> None:
        """Skip whitespace, comments, PIs and the XML declaration."""
        while True:
            self._skip_ws()
            if self._peek("<!--"):
                self._skip_comment()
            elif self._peek("<?"):
                self._skip_pi()
            elif self._peek("<!DOCTYPE"):
                end = self._text.find(">", self._pos)
                if end < 0:
                    self._fail("unterminated DOCTYPE")
                self._pos = end + 1
            else:
                return

    def _skip_comment(self) -> None:
        end = self._text.find("-->", self._pos)
        if end < 0:
            self._fail("unterminated comment")
        self._pos = end + 3

    def _skip_pi(self) -> None:
        end = self._text.find("?>", self._pos)
        if end < 0:
            self._fail("unterminated processing instruction")
        self._pos = end + 2

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1

    def _peek(self, token: str) -> bool:
        return self._text.startswith(token, self._pos)

    def _consume(self, token: str) -> bool:
        if self._peek(token):
            self._pos += len(token)
            return True
        return False

    def _fail(self, message: str) -> None:
        raise ParseError(f"XML parse error at offset {self._pos}: {message}")


def _decode_entities(raw: str, parser: _Parser) -> str:
    """Replace the five standard entities and numeric references."""
    def replace(match: "re.Match[str]") -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        if body in _ENTITIES:
            return _ENTITIES[body]
        parser._fail(f"unknown entity &{body};")
        raise AssertionError("unreachable")

    try:
        return re.sub(r"&([^;&\s]+);", replace, raw)
    except ValueError:
        parser._fail("malformed numeric character reference")
        raise AssertionError("unreachable")

"""Child-index path addressing for XML elements (the ``xmlPath`` of Fig. 8).

A path looks like ``/labReport/panel[1]/result[3]`` — rooted, one step per
level, each step a tag name with a 1-based occurrence index among
same-tagged siblings (``[1]`` may be omitted when writing, but
:func:`path_of` always writes it, so paths are canonical).

This is the fine-granularity addressing scheme the XML mark stores; it is
stable under edits elsewhere in the document and resolvable in O(depth).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import AddressError
from repro.base.xmldoc.dom import XmlElement

_STEP_RE = re.compile(r"^(?P<tag>[A-Za-z_][\w.\-]*)(?:\[(?P<index>[1-9]\d*)\])?$")


def parse_path(path: str) -> List[Tuple[str, int]]:
    """Parse ``'/a/b[2]/c'`` into ``[('a', 1), ('b', 2), ('c', 1)]``."""
    if not path.startswith("/"):
        raise AddressError(f"xmlPath must be rooted (start with '/'): {path!r}")
    steps: List[Tuple[str, int]] = []
    for raw in path[1:].split("/"):
        match = _STEP_RE.match(raw)
        if match is None:
            raise AddressError(f"bad xmlPath step {raw!r} in {path!r}")
        steps.append((match.group("tag"), int(match.group("index") or 1)))
    if not steps:
        raise AddressError(f"empty xmlPath: {path!r}")
    return steps


def format_path(steps: List[Tuple[str, int]]) -> str:
    """The canonical text form of parsed steps (indices always written)."""
    return "/" + "/".join(f"{tag}[{index}]" for tag, index in steps)


def resolve_path(root: XmlElement, path: str) -> XmlElement:
    """Walk *path* from *root*; raises :class:`AddressError` when absent."""
    steps = parse_path(path)
    tag, index = steps[0]
    if root.tag != tag or index != 1:
        raise AddressError(
            f"path {path!r} does not start at root <{root.tag}>")
    element = root
    for tag, index in steps[1:]:
        seen = 0
        found = None
        for child in element.children:
            if child.tag == tag:
                seen += 1
                if seen == index:
                    found = child
                    break
        if found is None:
            raise AddressError(
                f"no {index}-th <{tag}> under <{element.tag}> for {path!r}")
        element = found
    return element


def path_of(element: XmlElement) -> str:
    """The canonical rooted path addressing *element*.

    Inverse of :func:`resolve_path` for elements attached to a tree.
    """
    steps: List[Tuple[str, int]] = []
    current = element
    while current is not None:
        parent = current.parent
        if parent is None:
            steps.append((current.tag, 1))
        else:
            index = 0
            for sibling in parent.children:
                if sibling.tag == current.tag:
                    index += 1
                if sibling is current:
                    break
            steps.append((current.tag, index))
        current = parent
    steps.reverse()
    return format_path(steps)

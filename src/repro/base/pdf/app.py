"""The simulated PDF viewer (the Adobe Acrobat stand-in)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AddressError
from repro.base.application import BaseApplication
from repro.base.pdf.document import PdfDocument


@dataclass(frozen=True)
class PdfAddress:
    """A text span within a page of a PDF document.

    Lines are 1-based; columns are 0-based with an exclusive end.
    """

    file_name: str
    page: int
    start_line: int
    start_col: int
    end_line: int
    end_col: int

    def __str__(self) -> str:
        return (f"{self.file_name} p.{self.page} "
                f"{self.start_line}:{self.start_col}-{self.end_line}:{self.end_col}")


class PdfViewerApp(BaseApplication):
    """Open documents, turn pages, select text spans."""

    kind = "pdf"

    def __init__(self, library, bus=None) -> None:
        super().__init__(library, bus)
        self._current_page: Optional[int] = None

    # -- viewer verbs -------------------------------------------------------------

    def open_pdf(self, file_name: str) -> PdfDocument:
        """Open a document at its first page."""
        document = self.open_document(file_name)
        assert isinstance(document, PdfDocument)
        self._current_page = document.pages[0].number if document.pages else None
        return document

    def goto_page(self, number: int) -> None:
        """Turn to a page of the open document."""
        document = self.require_document()
        assert isinstance(document, PdfDocument)
        document.page(number)  # validates
        self._current_page = number

    @property
    def current_page(self) -> Optional[int]:
        """The displayed page number, if a document is open."""
        return self._current_page

    def select_span(self, start_line: int, start_col: int,
                    end_line: int, end_col: int) -> PdfAddress:
        """Select a text span on the current page."""
        document = self.require_document()
        assert isinstance(document, PdfDocument)
        if self._current_page is None:
            raise AddressError("no current page to select on")
        page = document.page(self._current_page)
        page.span_text(start_line, start_col, end_line, end_col)  # validates
        address = PdfAddress(document.name, self._current_page,
                             start_line, start_col, end_line, end_col)
        self._set_selection(address)
        return address

    def selected_text(self) -> str:
        """The text under the current selection."""
        address = self.current_selection_address()
        assert isinstance(address, PdfAddress)
        return self.text_at(address)

    # -- the narrow interface ----------------------------------------------------------

    def navigate_to(self, address: PdfAddress) -> str:
        """Open the document, turn to the page, highlight the span."""
        if not isinstance(address, PdfAddress):
            raise AddressError(f"not a PDF address: {address!r}")
        self.open_pdf(address.file_name)
        self.goto_page(address.page)
        self.select_span(address.start_line, address.start_col,
                         address.end_line, address.end_col)
        self._set_highlight(address)
        return self.text_at(address)

    def text_at(self, address: PdfAddress) -> str:
        """Read the span's text (no UI effects)."""
        document = self.library.get(address.file_name)
        if not isinstance(document, PdfDocument):
            raise AddressError(f"{address.file_name!r} is not a PDF document")
        page = document.page(address.page)
        return page.span_text(address.start_line, address.start_col,
                              address.end_line, address.end_col)

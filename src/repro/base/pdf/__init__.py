"""The PDF base application (Acrobat substitute)."""

from repro.base.pdf.app import PdfAddress, PdfViewerApp
from repro.base.pdf.document import PdfDocument, PdfPage
from repro.base.pdf.marks import PDFMark, PdfExtractorModule, PdfMarkModule

__all__ = [
    "PdfAddress",
    "PdfViewerApp",
    "PdfDocument",
    "PdfPage",
    "PDFMark",
    "PdfExtractorModule",
    "PdfMarkModule",
]

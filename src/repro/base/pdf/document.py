"""A paginated text document model (the Adobe PDF stand-in).

SLIMPad marks into PDF documents at sub-document granularity; our
substitute models what that addressing needs: numbered pages of text
lines, with spans addressed as (page, start line/column, end line/column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import AddressError
from repro.base.application import BaseDocument


class PdfPage:
    """One page: a 1-based number and its text lines."""

    def __init__(self, number: int, lines: List[str]) -> None:
        if number < 1:
            raise AddressError("page numbers are 1-based")
        self.number = number
        self.lines = list(lines)

    def line(self, index: int) -> str:
        """The 1-based *index*-th line."""
        if index < 1 or index > len(self.lines):
            raise AddressError(
                f"page {self.number} has no line {index} "
                f"(has {len(self.lines)})")
        return self.lines[index - 1]

    def span_text(self, start_line: int, start_col: int,
                  end_line: int, end_col: int) -> str:
        """The text covered by a span; columns are 0-based, end exclusive."""
        if end_line < start_line or \
                (end_line == start_line and end_col < start_col):
            raise AddressError("span end precedes start")
        first = self.line(start_line)
        last = self.line(end_line)
        if start_col < 0 or start_col > len(first):
            raise AddressError(f"start column {start_col} outside line")
        if end_col < 0 or end_col > len(last):
            raise AddressError(f"end column {end_col} outside line")
        if start_line == end_line:
            return first[start_col:end_col]
        pieces = [first[start_col:]]
        pieces.extend(self.lines[start_line:end_line - 1])
        pieces.append(last[:end_col])
        return "\n".join(pieces)

    def text(self) -> str:
        """The whole page as one string."""
        return "\n".join(self.lines)


class PdfDocument(BaseDocument):
    """A named, paginated document."""

    kind = "pdf"

    def __init__(self, name: str, pages: List[PdfPage]) -> None:
        super().__init__(name)
        self.pages = list(pages)
        numbers = [p.number for p in self.pages]
        if numbers != sorted(set(numbers)):
            raise AddressError("page numbers must be unique and ascending")

    @classmethod
    def from_text(cls, name: str, text: str,
                  lines_per_page: int = 40) -> "PdfDocument":
        """Paginate running text into a document."""
        if lines_per_page < 1:
            raise AddressError("lines_per_page must be >= 1")
        lines = text.split("\n")
        pages = []
        for start in range(0, max(1, len(lines)), lines_per_page):
            pages.append(PdfPage(len(pages) + 1,
                                 lines[start:start + lines_per_page]))
        return cls(name, pages)

    def page(self, number: int) -> PdfPage:
        """Fetch a page by its 1-based number."""
        for page in self.pages:
            if page.number == number:
                return page
        raise AddressError(f"{self.name!r} has no page {number}")

    @property
    def page_count(self) -> int:
        """How many pages the document has."""
        return len(self.pages)

    def estimated_bytes(self) -> int:
        return sum(len(line) + 1 for page in self.pages for line in page.lines)

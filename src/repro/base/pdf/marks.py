"""The PDF mark and its modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.errors import (AddressError, DocumentNotFoundError,
                          MarkResolutionError)
from repro.base.pdf.app import PdfAddress, PdfViewerApp
from repro.marks.mark import Mark
from repro.marks.modules import (ROLE_EXTRACTOR, ROLE_VIEWER, MarkModule,
                                 Resolution)


@dataclass(frozen=True)
class PDFMark(Mark):
    """Addresses a text span on a page of a PDF document."""

    file_name: str = ""
    page: int = 1
    start_line: int = 1
    start_col: int = 0
    end_line: int = 1
    end_col: int = 0

    mark_type: ClassVar[str] = "pdf"

    def to_address(self) -> PdfAddress:
        """The application-level address this mark stores."""
        return PdfAddress(self.file_name, self.page, self.start_line,
                          self.start_col, self.end_line, self.end_col)


class PdfMarkModule(MarkModule):
    """Viewer-role module: open, turn to the page, highlight the span."""

    mark_class = PDFMark
    application_kind = PdfViewerApp.kind
    role = ROLE_VIEWER

    def create_from_selection(self, app: PdfViewerApp, mark_id: str) -> PDFMark:
        address = app.current_selection_address()
        return PDFMark(mark_id, file_name=address.file_name, page=address.page,
                       start_line=address.start_line, start_col=address.start_col,
                       end_line=address.end_line, end_col=address.end_col)

    def resolve(self, mark: PDFMark, app: PdfViewerApp) -> Resolution:
        self.check_mark(mark)
        try:
            content = app.navigate_to(mark.to_address())
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(
                f"cannot resolve {mark.describe()}: {exc}") from exc
        app.bring_to_front()
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.file_name,
                          address=str(mark.to_address()), content=content,
                          context=f"page {mark.page}", surfaced=True)


class PdfExtractorModule(MarkModule):
    """Extractor-role module: fetch the span text without surfacing."""

    mark_class = PDFMark
    application_kind = PdfViewerApp.kind
    role = ROLE_EXTRACTOR

    def create_from_selection(self, app: PdfViewerApp, mark_id: str) -> PDFMark:
        return PdfMarkModule().create_from_selection(app, mark_id)

    def resolve(self, mark: PDFMark, app: PdfViewerApp) -> Resolution:
        self.check_mark(mark)
        try:
            content = app.text_at(mark.to_address())
        except (DocumentNotFoundError, AddressError) as exc:
            raise MarkResolutionError(
                f"cannot resolve {mark.describe()}: {exc}") from exc
        return Resolution(mark=mark, application_kind=self.application_kind,
                          document_name=mark.file_name,
                          address=str(mark.to_address()), content=content,
                          context=f"page {mark.page}", surfaced=False)

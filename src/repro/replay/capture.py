"""The capture tap: record a live durable TRIM session as a replay bundle.

:class:`CaptureTap` attaches to a durable :class:`~repro.triples.trim.TrimManager`
and records the complete externally-visible operation stream:

- every store mutation, through the 3-argument change-listener contract
  (``action, triple, sequence``) — so adds made via DMI calls, bulk
  ingests, undo restores, and plain :meth:`TrimManager.create` all land
  in the bundle with their *global insertion sequences*, which is what
  lets the replayer rebuild byte-identical state;
- every durable commit boundary, by wrapping :meth:`TrimManager.commit`
  on the instance (detached cleanly by :meth:`detach`);
- the injected crash, either a 2PC protocol-stage kill armed with
  :meth:`arm_crash` (sharded stores) or a WAL byte-offset truncation
  recorded with :meth:`record_kill` (single-store WALs).

The tap deliberately records at the change-stream level rather than the
API-call level: the stream is the store's linearization of whatever
concurrency produced it, so a race observed once is captured as the
exact interleaving that exposed it (free-form :meth:`note` hints can
annotate which thread did what).

Typical capture::

    trim = TrimManager(shards=4, durable=directory)
    tap = CaptureTap(trim, seeds={"workload": 2001})
    ...drive the workload...
    tap.arm_crash("decided")            # kill after the 2PC decision
    with pytest.raises(SimulatedCrash):
        trim.commit()
    recovered = recover_sharded(directory)
    bundle = tap.finish(recovered.store)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.errors import ReplayError
from repro.replay import bundle as bundle_format
from repro.replay.digest import state_digest
from repro.triples.sharded import ShardedDurability, SimulatedCrash
from repro.triples.triple import Resource, Triple
from repro.triples.trim import TrimManager


class CaptureTap:
    """Records one durable TRIM session's ops, commits, and crash point.

    The session must already be durable (the replayer's contract is
    *recovered* state) and must use ``sync='inline'`` — background
    flushers commit at wall-clock-dependent moments no bundle could
    reproduce.
    """

    def __init__(self, trim: TrimManager,
                 seeds: Optional[Dict[str, int]] = None,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        durability = trim.durability
        if durability is None:
            raise ReplayError("capture requires a durable TrimManager "
                              "(the replay contract is recovered state)")
        if durability.sync != "inline":
            raise ReplayError(
                f"capture requires sync='inline', not {durability.sync!r} — "
                f"background flushers are not deterministically replayable")
        self._trim = trim
        self._seeds = dict(seeds or {})
        self._meta = dict(meta or {})
        self._ops: List[Dict[str, Any]] = []
        self._interleave: List[str] = []
        self._armed: Optional[Dict[str, Any]] = None
        self._terminal = False
        self._detached = False
        self.config: Dict[str, Any] = {
            "shards": trim.shards,
            "map_version": trim.map_version,
            "compact_every": durability.compact_every,
            "commit_every": durability.commit_every,
            "fsync": self._wal_fsync(durability),
        }
        self._unsubscribe = trim.store.add_listener(self._on_change)
        # Shadow the bound method with an instance attribute so every
        # commit path — direct calls, SLIMPad, DMI batches — is seen.
        self._wrapped_commit = trim.commit
        trim.commit = self._commit  # type: ignore[method-assign]

    @staticmethod
    def _wal_fsync(durability) -> bool:
        if isinstance(durability, ShardedDurability):
            durability = durability.shard_durabilities[0]
        return durability._wal._fsync

    @property
    def ops(self) -> List[Dict[str, Any]]:
        """The operation stream recorded so far (live list)."""
        return self._ops

    # -- recording ------------------------------------------------------------

    def _on_change(self, action: str, statement: Triple,
                   sequence: int) -> None:
        if self._terminal:
            return
        self._ops.append(bundle_format.encode_change(action, statement,
                                                     sequence))

    def _commit(self, subject: Union[str, Resource, None] = None) -> bool:
        if self._armed is None:
            changed = self._wrapped_commit(subject)
            if changed:
                op: Dict[str, Any] = {"op": "commit"}
                if subject is not None:
                    op["subject"] = (subject.uri
                                     if isinstance(subject, Resource)
                                     else subject)
                self._ops.append(op)
            return changed
        # A crash is armed: this commit is expected to die mid-protocol.
        armed, self._armed = self._armed, None
        try:
            self._wrapped_commit(subject)
        except SimulatedCrash:
            self._ops.append({"op": "crash", "stage": armed["stage"],
                              "index": armed["index"]})
            self._terminal = True
            durability = self._trim.durability
            if durability is not None:
                durability.abandon()
            self.detach()
            # The session is dead; release the shard pool now rather
            # than from a GC finalizer (where the join can deadlock).
            self._trim.close()
            raise
        raise ReplayError(
            f"armed crash at 2PC stage {armed['stage']!r} never fired — "
            f"the commit completed (single-participant group?)")

    def note(self, hint: str) -> None:
        """Append one free-form interleaving hint (e.g. which thread ran)."""
        self._interleave.append(hint)

    def arm_crash(self, stage: str, index: Optional[int] = None) -> None:
        """Arm a 2PC protocol-stage kill for the *next* commit.

        Installs a crash hook on the sharded durability orchestrator that
        raises :class:`~repro.triples.sharded.SimulatedCrash` when the
        protocol reaches *stage* (optionally only for participant
        *index*); the wrapped commit records the crash op, abandons the
        coordinator (a dead process writes nothing more), and re-raises.
        """
        if stage not in bundle_format.CRASH_STAGES:
            raise ReplayError(f"unknown 2PC stage {stage!r} "
                              f"(valid: {bundle_format.CRASH_STAGES})")
        durability = self._trim.durability
        if not isinstance(durability, ShardedDurability):
            raise ReplayError("arm_crash needs a sharded TRIM (shards > 1); "
                              "use record_kill for single-WAL truncations")

        def hook(hook_stage: str, txn: int, i: Optional[int]) -> None:
            if hook_stage == stage and (index is None or i == index):
                raise SimulatedCrash(f"{hook_stage}[{i}] txn {txn}")

        durability.crash_hook = hook
        self._armed = {"stage": stage, "index": index}

    def record_kill(self, offset: int) -> None:
        """Record a WAL truncation at byte *offset* as the terminal op.

        The capturing harness performs the truncation itself (on the real
        WAL file or a copy); this just fixes the kill point in the
        bundle so the replayer cuts the regenerated log at the same byte.
        """
        if self._trim.shards != 1:
            raise ReplayError("record_kill models a single-WAL truncation; "
                              "use arm_crash on sharded stores")
        if self._terminal:
            raise ReplayError("the session already has a terminal op")
        self._ops.append({"op": "kill", "offset": int(offset)})
        self._terminal = True

    # -- teardown -------------------------------------------------------------

    def detach(self) -> None:
        """Stop recording: unsubscribe the listener, unwrap commit."""
        if self._detached:
            return
        self._detached = True
        self._unsubscribe()
        # `==`, not `is`: accessing self._commit builds a fresh bound-
        # method object each time, so identity would never match.
        if self._trim.__dict__.get("commit") == self._commit:
            del self._trim.__dict__["commit"]

    def finish(self, recovered_store=None,
               captured_at: Optional[str] = None) -> Dict[str, Any]:
        """Detach and assemble the validated bundle document.

        *recovered_store* — the store the original session recovered to
        (via :func:`~repro.triples.wal.recover` /
        :func:`~repro.triples.sharded.recover_sharded`) — stamps the
        bundle's ``outcome`` digest, the ground truth replays are
        checked against.  ``None`` leaves the outcome open (the first
        replay then defines it).
        """
        self.detach()
        # A reshard mid-capture rewrites routing under the recorded ops;
        # stamp the final version so replay can fail closed on v > 1.
        self.config["map_version"] = self._trim.map_version
        outcome = None
        if recovered_store is not None:
            outcome = {"digest": state_digest(recovered_store),
                       "triples": len(recovered_store)}
        return bundle_format.make_bundle(
            self.config, self._ops, seeds=self._seeds,
            interleave=self._interleave, outcome=outcome,
            meta=self._meta, captured_at=captured_at)

"""Deterministic replay: capture a failing TRIM session, re-run it exactly.

The crash matrices and race sweeps (PRs 2–6) shake failures out; this
package makes any failure they see *portable*: a versioned, schema-
validated **replay bundle** (:mod:`repro.replay.bundle`) records the
operation stream, seeds, interleaving hints, and injected crash point of
a durable session, and the **replayer** (:mod:`repro.replay.replayer`)
re-executes the bundle against a fresh store and asserts byte-identical
recovered state via canonical digests (:mod:`repro.replay.digest`).
Capture is a tap on a live ``TrimManager`` (:mod:`repro.replay.capture`);
``python -m repro replay`` drives record/run/verify from the shell.

See DESIGN.md §13 for the architecture and the regression-gate policy
this pairs with (``benchmarks/check_floors.py --baseline``).
"""

from repro.replay.bundle import (BUNDLE_KIND, BUNDLE_VERSION, CRASH_STAGES,
                                 MAX_OPS, MAX_TEXT, make_bundle,
                                 validate_bundle)
from repro.replay.bundle import dumps as dump_bundle
from repro.replay.bundle import load as load_bundle
from repro.replay.bundle import loads as loads_bundle
from repro.replay.bundle import save as save_bundle
from repro.replay.capture import CaptureTap
from repro.replay.digest import canonical_lines, state_digest
from repro.replay.replayer import ReplayResult, replay, replay_check

__all__ = [
    "BUNDLE_KIND",
    "BUNDLE_VERSION",
    "CRASH_STAGES",
    "MAX_OPS",
    "MAX_TEXT",
    "CaptureTap",
    "ReplayResult",
    "canonical_lines",
    "dump_bundle",
    "load_bundle",
    "loads_bundle",
    "make_bundle",
    "replay",
    "replay_check",
    "save_bundle",
    "state_digest",
    "validate_bundle",
]

"""Built-in capture scenarios: the two crash families, bundled on demand.

These drive the same failure shapes the crash-injection suites sweep —
a WAL kill at a byte offset (``tests/test_triples_wal.py``) and a 2PC
coordinator death at a protocol stage (``tests/test_sharding.py``) —
through a :class:`~repro.replay.capture.CaptureTap`, producing a
validated bundle whose recorded outcome is the state the original run
actually recovered to.  The ``python -m repro replay record`` command
fronts them; the test suite captures its own scenarios directly.

Both scenarios are seed-deterministic: the same seed yields the same
workload, the same kill point, and therefore the same bundle outcome.
"""

from __future__ import annotations

import os
import random
from typing import Any, Dict, Optional

from repro.replay.capture import CaptureTap
from repro.triples.sharded import SimulatedCrash, recover_sharded
from repro.triples.triple import Resource
from repro.triples.trim import TrimManager
from repro.triples.wal import MAGIC, WAL_FILE, recover


def _workload(trim: TrimManager, tap: CaptureTap, rng: random.Random,
              commits: int) -> None:
    """A small mixed mutation script: adds, removes, commit boundaries."""
    for group in range(commits):
        tap.note(f"writer-0: group {group}")
        for j in range(rng.randrange(3, 8)):
            trim.create(f"slim:s{rng.randrange(16)}", f"slim:p{j % 3}",
                        rng.randrange(1000))
        if rng.random() < 0.5:
            hits = trim.store.select()
            if hits:
                trim.store.discard(hits[rng.randrange(len(hits))])
        trim.commit()


def capture_wal_kill(directory: str, seed: int = 2001,
                     offset: Optional[int] = None) -> Dict[str, Any]:
    """Capture an unsharded session killed at a WAL byte offset.

    Runs a seeded workload under *directory*, leaves an uncommitted
    tail (the classic never-recover case), truncates the WAL at
    *offset* (seed-chosen when ``None``), recovers, and returns the
    bundle with the recovered state as its outcome.
    """
    rng = random.Random(seed)
    trim = TrimManager(durable=directory, compact_every=10_000)
    tap = CaptureTap(trim, seeds={"workload": seed},
                     meta={"scenario": "wal-kill"})
    _workload(trim, tap, rng, commits=4)
    trim.create("ghost", "slim:p0", "uncommitted tail")
    tap.detach()
    trim.close()
    wal_path = os.path.join(directory, WAL_FILE)
    size = os.path.getsize(wal_path)
    if offset is None:
        offset = rng.randrange(len(MAGIC), size + 1)
    tap.record_kill(offset)
    with open(wal_path, "r+b") as handle:
        handle.truncate(offset)
    recovered = recover(directory).store
    return tap.finish(recovered)


def capture_2pc_crash(directory: str, seed: int = 2001,
                      stage: str = "decided", index: Optional[int] = None,
                      shards: int = 4) -> Dict[str, Any]:
    """Capture a sharded session whose coordinator dies mid-2PC.

    Seeds committed base state, then arms a kill at *stage* (optionally
    participant *index*) and drives a multi-shard group into it; the
    bundle's outcome is the state :func:`recover_sharded` repaired or
    rolled back to.
    """
    rng = random.Random(seed)
    trim = TrimManager(shards=shards, durable=directory,
                       compact_every=10_000)
    tap = CaptureTap(trim, seeds={"workload": seed},
                     meta={"scenario": "2pc-crash", "stage": stage})
    _workload(trim, tap, rng, commits=3)
    tap.arm_crash(stage, index)
    tap.note(f"coordinator: killed at {stage}"
             + (f"[{index}]" if index is not None else ""))
    for i in range(shards * 3):   # spread the doomed group over all shards
        trim.create(f"slim:s{i}", "slim:inflight", 10_000 + i)
    try:
        trim.commit()
    except SimulatedCrash:
        pass
    recovered = recover_sharded(directory).store
    try:
        return tap.finish(recovered)
    finally:
        recovered.close()

"""The replay bundle: a versioned, schema-validated failure capsule.

A *bundle* is one JSON document holding everything needed to re-execute
a TRIM session — the operation stream (adds/removes with their global
insertion sequences, commit boundaries), the injected crash point (a 2PC
protocol stage or a WAL byte offset), the store configuration, the
workload seeds, and thread-interleaving hints — plus the digest of the
state the original run recovered to.  A failure seen once in a crash
matrix or a race sweep becomes a file that replays exactly, anywhere.

Schema discipline is the point: :func:`validate_bundle` rejects unknown
versions, unknown operation kinds, and oversized payloads *before*
anything executes, so a bundle from a newer (or corrupted) harness fails
loudly instead of replaying something subtly different.  String payloads
are bounded (:data:`MAX_TEXT`) and the free-form ``meta`` block is
recursively redacted (:func:`redact`) so bundles are safe to attach to
bug reports.

Format (version :data:`BUNDLE_VERSION`)::

    {"version": 1, "kind": "trim-replay",
     "config": {"shards": 1, "compact_every": 64,
                "commit_every": null, "fsync": false},
     "seeds": {"workload": 2001},
     "interleave": ["writer-0: commit", ...],       # hints, not a schedule
     "ops": [{"op": "add", "s": ..., "p": ..., "v": ["l","integer",3],
              "seq": 0},
             {"op": "commit"},
             {"op": "crash", "stage": "decided", "index": null},
             {"op": "kill", "offset": 142}],
     "outcome": {"digest": "<sha256>", "triples": 12},
     "meta": {...}}

Node values are tagged — ``["r", uri]`` for resources, ``["l", type,
value]`` for literals — because JSON alone cannot tell ``Literal(3)``
from ``Literal(3.0)`` from ``Literal(True)``, and node identity is part
of store equality (see :mod:`repro.triples.triple`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import BundleError
from repro.triples.triple import Literal, Node, Resource, Triple

#: Current bundle format version; bumped on any incompatible change.
BUNDLE_VERSION = 1

#: The bundle ``kind`` tag this harness produces and accepts.
BUNDLE_KIND = "trim-replay"

#: Hard caps a valid bundle must respect — bounded payloads by schema,
#: not by reviewer vigilance.
MAX_OPS = 50_000
MAX_TEXT = 4_096
MAX_INTERLEAVE = 512
MAX_SEEDS = 64

#: Operation kinds a version-1 bundle may contain.
OP_KINDS = ("add", "remove", "commit", "crash", "kill")

#: 2PC protocol stages a ``crash`` op may name (the crash matrix in
#: ``tests/test_sharding.py`` sweeps exactly these).
CRASH_STAGES = ("prepare", "decide", "decided", "fence", "finish")

#: ``meta`` keys whose values are always replaced by this marker.
REDACTED = "<redacted>"
_SENSITIVE = ("token", "password", "secret", "api_key", "auth")


# -- node / op encoding -------------------------------------------------------

def encode_node(node: Node) -> List[Any]:
    """One triple slot as a JSON-safe tagged array."""
    if isinstance(node, Resource):
        return ["r", node.uri]
    return ["l", node.type_name, node.value]


def decode_node(payload: Any) -> Node:
    """Inverse of :func:`encode_node`; raises :class:`BundleError`."""
    if not isinstance(payload, list) or not payload:
        raise BundleError(f"malformed node payload: {payload!r}")
    tag = payload[0]
    if tag == "r":
        if len(payload) != 2 or not isinstance(payload[1], str):
            raise BundleError(f"malformed resource node: {payload!r}")
        return Resource(payload[1])
    if tag == "l":
        if len(payload) != 3:
            raise BundleError(f"malformed literal node: {payload!r}")
        type_name, value = payload[1], payload[2]
        coerce = {"string": str, "integer": int, "float": float,
                  "boolean": bool}.get(type_name)
        if coerce is None:
            raise BundleError(f"unknown literal type {type_name!r}")
        if type_name == "string" and not isinstance(value, str):
            raise BundleError(f"literal type/value mismatch: {payload!r}")
        if type_name != "string" and isinstance(value, str):
            raise BundleError(f"literal type/value mismatch: {payload!r}")
        return Literal(coerce(value))
    raise BundleError(f"unknown node tag {tag!r}")


def encode_change(action: str, statement: Triple, sequence: int) -> Dict[str, Any]:
    """An ``add``/``remove`` op from one store change-listener event."""
    return {"op": action, "s": statement.subject.uri,
            "p": statement.property.uri,
            "v": encode_node(statement.value), "seq": sequence}


def decode_change(op: Dict[str, Any]) -> Tuple[str, Triple, int]:
    """Inverse of :func:`encode_change` -> ``(action, triple, sequence)``."""
    statement = Triple(Resource(op["s"]), Resource(op["p"]),
                       decode_node(op["v"]))
    return op["op"], statement, op["seq"]


# -- redaction ----------------------------------------------------------------

def redact(value: Any) -> Any:
    """Recursively replace secret-looking ``meta`` values.

    Any dict key containing one of the usual credential substrings
    (token/password/secret/api_key/auth) has its whole value replaced
    with :data:`REDACTED`; everything else passes through structurally
    unchanged.
    """
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            lowered = str(key).lower()
            if any(marker in lowered for marker in _SENSITIVE):
                out[key] = REDACTED
            else:
                out[key] = redact(item)
        return out
    if isinstance(value, list):
        return [redact(item) for item in value]
    return value


# -- validation ---------------------------------------------------------------

def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BundleError(message)


def _check_text(value: Any, where: str) -> None:
    _require(isinstance(value, str), f"{where}: expected string, "
             f"got {type(value).__name__}")
    _require(len(value) <= MAX_TEXT,
             f"{where}: string of {len(value)} chars exceeds the "
             f"{MAX_TEXT}-char payload bound")


def _check_node(payload: Any, where: str) -> None:
    node = decode_node(payload)  # raises BundleError on malformed shapes
    if isinstance(node, Resource):
        _check_text(node.uri, where)
    elif isinstance(node.value, str):
        _check_text(node.value, where)


def _check_op(op: Any, index: int, shards: int) -> None:
    where = f"ops[{index}]"
    _require(isinstance(op, dict), f"{where}: expected object")
    kind = op.get("op")
    _require(kind in OP_KINDS,
             f"{where}: unknown op kind {kind!r} (valid: {OP_KINDS})")
    if kind in ("add", "remove"):
        for field in ("s", "p", "v", "seq"):
            _require(field in op, f"{where}: missing field {field!r}")
        _check_text(op["s"], f"{where}.s")
        _check_text(op["p"], f"{where}.p")
        _check_node(op["v"], f"{where}.v")
        _require(isinstance(op["seq"], int) and not isinstance(op["seq"], bool)
                 and op["seq"] >= 0, f"{where}.seq: expected int >= 0")
    elif kind == "commit":
        subject = op.get("subject")
        if subject is not None:
            _check_text(subject, f"{where}.subject")
    elif kind == "crash":
        _require(shards > 1,
                 f"{where}: 'crash' (a 2PC stage kill) needs shards > 1")
        _require(op.get("stage") in CRASH_STAGES,
                 f"{where}.stage: unknown 2PC stage {op.get('stage')!r}")
        shard = op.get("index")
        _require(shard is None or (isinstance(shard, int)
                 and 0 <= shard < shards),
                 f"{where}.index: expected null or 0..{shards - 1}")
    elif kind == "kill":
        _require(shards == 1,
                 f"{where}: 'kill' (a WAL byte truncation) needs shards == 1")
        offset = op.get("offset")
        _require(isinstance(offset, int) and not isinstance(offset, bool)
                 and offset >= 0, f"{where}.offset: expected int >= 0")


def validate_bundle(bundle: Any) -> Dict[str, Any]:
    """Validate one decoded bundle document; return it on success.

    Raises :class:`~repro.errors.BundleError` naming the first violation:
    wrong version/kind, structural mismatches, unknown op kinds, caps
    exceeded, or a terminal op (``crash``/``kill``) that is not last.
    """
    _require(isinstance(bundle, dict), "bundle must be a JSON object")
    _require(bundle.get("version") == BUNDLE_VERSION,
             f"unsupported bundle version {bundle.get('version')!r} "
             f"(this harness reads version {BUNDLE_VERSION})")
    _require(bundle.get("kind") == BUNDLE_KIND,
             f"unsupported bundle kind {bundle.get('kind')!r}")

    config = bundle.get("config")
    _require(isinstance(config, dict), "config must be an object")
    shards = config.get("shards", 1)
    _require(isinstance(shards, int) and shards >= 1,
             "config.shards must be an int >= 1")
    map_version = config.get("map_version", 1)
    _require(isinstance(map_version, int) and map_version >= 1,
             "config.map_version must be an int >= 1")
    compact_every = config.get("compact_every", 64)
    _require(isinstance(compact_every, int) and compact_every >= 1,
             "config.compact_every must be an int >= 1")
    commit_every = config.get("commit_every")
    _require(commit_every is None
             or (isinstance(commit_every, int) and commit_every >= 1),
             "config.commit_every must be null or an int >= 1")
    _require(isinstance(config.get("fsync", False), bool),
             "config.fsync must be a bool")

    seeds = bundle.get("seeds", {})
    _require(isinstance(seeds, dict) and len(seeds) <= MAX_SEEDS,
             f"seeds must be an object of at most {MAX_SEEDS} entries")
    for key, value in seeds.items():
        _require(isinstance(value, int) and not isinstance(value, bool),
                 f"seeds[{key!r}] must be an int")

    interleave = bundle.get("interleave", [])
    _require(isinstance(interleave, list)
             and len(interleave) <= MAX_INTERLEAVE,
             f"interleave must be a list of at most {MAX_INTERLEAVE} hints")
    for i, hint in enumerate(interleave):
        _check_text(hint, f"interleave[{i}]")

    ops = bundle.get("ops")
    _require(isinstance(ops, list), "ops must be a list")
    _require(len(ops) <= MAX_OPS,
             f"ops: {len(ops)} operations exceed the {MAX_OPS}-op bound")
    for index, op in enumerate(ops):
        _check_op(op, index, shards)
        if isinstance(op, dict) and op.get("op") in ("crash", "kill"):
            _require(index == len(ops) - 1,
                     f"ops[{index}]: a {op['op']!r} op terminates the "
                     f"session and must be the final op")

    outcome = bundle.get("outcome")
    if outcome is not None:
        _require(isinstance(outcome, dict), "outcome must be an object")
        digest = outcome.get("digest")
        _require(isinstance(digest, str) and len(digest) == 64,
                 "outcome.digest must be a 64-char sha256 hex digest")
        triples = outcome.get("triples")
        _require(isinstance(triples, int) and triples >= 0,
                 "outcome.triples must be an int >= 0")
    return bundle


# -- (de)serialization --------------------------------------------------------

def dumps(bundle: Dict[str, Any]) -> str:
    """Validate and serialize one bundle to canonical (sorted-key) JSON."""
    validate_bundle(bundle)
    return json.dumps(bundle, indent=2, sort_keys=True) + "\n"


def loads(text: Union[str, bytes]) -> Dict[str, Any]:
    """Parse and validate one bundle document."""
    try:
        payload = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise BundleError(f"bundle is not valid JSON: {exc}") from exc
    return validate_bundle(payload)


def save(bundle: Dict[str, Any], path: str) -> None:
    """Validate and write one bundle to *path*."""
    text = dumps(bundle)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def load(path: str) -> Dict[str, Any]:
    """Read and validate the bundle at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def make_bundle(config: Dict[str, Any], ops: List[Dict[str, Any]],
                seeds: Optional[Dict[str, int]] = None,
                interleave: Optional[List[str]] = None,
                outcome: Optional[Dict[str, Any]] = None,
                meta: Optional[Dict[str, Any]] = None,
                captured_at: Optional[str] = None) -> Dict[str, Any]:
    """Assemble (and validate) a bundle document from its parts.

    ``meta`` is redacted here — a bundle never stores raw credential
    values no matter what the capturing harness passed in.
    """
    bundle: Dict[str, Any] = {
        "version": BUNDLE_VERSION,
        "kind": BUNDLE_KIND,
        "config": dict(config),
        "seeds": dict(seeds or {}),
        "interleave": list(interleave or []),
        "ops": list(ops),
        "outcome": dict(outcome) if outcome is not None else None,
        "meta": redact(dict(meta or {})),
    }
    if captured_at is not None:
        bundle["captured_at"] = captured_at
    return validate_bundle(bundle)

"""Re-execute a replay bundle against a fresh store and check the state.

:func:`replay` builds a fresh durable :class:`~repro.triples.trim.TrimManager`
with the bundle's recorded configuration, re-applies the operation
stream — every add at its captured global insertion sequence (via
``store.restore``, so ordering is reproduced exactly, not merely
membership), every remove, every commit boundary — injects the recorded
crash (a 2PC stage kill or a WAL byte truncation), runs recovery, and
returns the recovered store with its canonical digest.

Against the bundle's recorded ``outcome``, and between any two runs,
the digest must match byte for byte; :func:`replay_check` packages the
two-independent-runs assertion the acceptance criteria name.  A
mismatch raises :class:`~repro.errors.ReplayDivergenceError` carrying
both digests — the one-line signal that determinism broke somewhere
between the capture and this machine.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, NamedTuple, Optional

from repro.errors import ReplayDivergenceError, ReplayError
from repro.replay import bundle as bundle_format
from repro.replay.digest import state_digest
from repro.triples.sharded import ShardedDurability, SimulatedCrash, \
    recover_sharded
from repro.triples.triple import Resource
from repro.triples.trim import TrimManager
from repro.triples.wal import WAL_FILE, recover
from repro.util.stats import percentiles_us


class ReplayResult(NamedTuple):
    """What one replay run produced."""

    digest: str           #: sha256 of the recovered store's canonical form
    triples: int          #: recovered triple count
    ops_applied: int      #: operations re-executed from the bundle
    crashed: bool         #: a 2PC stage kill fired
    killed_at: Optional[int]  #: WAL truncation offset, when one was replayed
    store: Any            #: the recovered store itself
    #: Per-op re-execution latency percentiles (``p50_us``/``p95_us``/
    #: ``p99_us``) over every op in the bundle — the perf-regression
    #: gate reads these so a slow op class shows up as a tail shift,
    #: not just a total-seconds drift.  Empty dict on zero-op bundles.
    op_latency_us: Dict[str, float] = {}


def _crash_hook(stage: str, index: Optional[int]):
    def hook(hook_stage: str, txn: int, i: Optional[int]) -> None:
        if hook_stage == stage and (index is None or i == index):
            raise SimulatedCrash(f"{hook_stage}[{i}] txn {txn}")
    return hook


def replay(bundle: Dict[str, Any], directory: str,
           verify_outcome: bool = True) -> ReplayResult:
    """Execute *bundle* under *directory* (which must be fresh/empty).

    With *verify_outcome* (the default), a bundle carrying a recorded
    ``outcome`` digest raises :class:`ReplayDivergenceError` unless the
    recovered state reproduces it exactly.
    """
    bundle = bundle_format.validate_bundle(bundle)
    config = bundle["config"]
    shards = config.get("shards", 1)
    map_version = config.get("map_version", 1)
    if map_version != 1:
        # A replay rebuilds from an empty directory, whose map is the
        # version-1 layout; ops captured under a rebalanced map would
        # route (and recover) onto different shards, breaking the
        # byte-identical contract.  Fail closed rather than diverge.
        raise ReplayError(
            f"bundle was captured under shard-map version {map_version}; "
            f"replay only reproduces the version-1 layout — re-record the "
            f"session against a fresh directory")
    if os.path.isdir(directory) and os.listdir(directory):
        raise ReplayError(f"replay target {directory!r} is not empty — "
                          f"a replay must start from nothing")
    trim = TrimManager(shards=shards, cache=False)
    trim.enable_durability(directory,
                           compact_every=config.get("compact_every", 64),
                           fsync=config.get("fsync", False),
                           commit_every=config.get("commit_every"))
    crashed = False
    killed_at: Optional[int] = None
    ops_applied = 0
    op_latencies: "list[float]" = []
    try:
        for op in bundle["ops"]:
            kind = op["op"]
            op_started = time.perf_counter()
            if kind == "add":
                _, statement, sequence = bundle_format.decode_change(op)
                trim.store.restore(statement, sequence)
            elif kind == "remove":
                _, statement, _ = bundle_format.decode_change(op)
                trim.store.discard(statement)
            elif kind == "commit":
                trim.commit(subject=op.get("subject"))
            elif kind == "crash":
                crashed = _replay_crash(trim, op)
            elif kind == "kill":
                killed_at = op["offset"]
            op_latencies.append(time.perf_counter() - op_started)
            ops_applied += 1
    finally:
        # Always close: after a crash the durability is already
        # abandoned (close is then a no-op on it), but the shard pool
        # must still be shut down here — leaking it to GC risks a
        # finalizer-time thread join (see ShardedTripleStore.close).
        trim.close()
    if killed_at is not None:
        _truncate_wal(directory, killed_at)
    if shards > 1:
        recovered = recover_sharded(directory).store
    else:
        recovered = recover(directory).store
    result = ReplayResult(state_digest(recovered), len(recovered),
                          ops_applied, crashed, killed_at, recovered,
                          percentiles_us(op_latencies)
                          if op_latencies else {})
    outcome = bundle.get("outcome")
    if verify_outcome and outcome is not None \
            and result.digest != outcome["digest"]:
        raise ReplayDivergenceError(
            f"replay diverged from the captured outcome: recovered "
            f"{result.triples} triple(s) with digest {result.digest}, "
            f"bundle recorded {outcome['triples']} with "
            f"{outcome['digest']}")
    return result


def _replay_crash(trim: TrimManager, op: Dict[str, Any]) -> bool:
    """Arm and fire the recorded 2PC stage kill; abandon the coordinator."""
    durability = trim.durability
    if not isinstance(durability, ShardedDurability):
        raise ReplayError("bundle contains a 'crash' op but the store "
                          "is not sharded")  # validate_bundle precludes this
    durability.crash_hook = _crash_hook(op["stage"], op.get("index"))
    try:
        trim.commit()
    except SimulatedCrash:
        durability.abandon()
        return True
    raise ReplayDivergenceError(
        f"recorded crash at 2PC stage {op['stage']!r} did not fire on "
        f"replay — the commit completed, so the re-executed group lost "
        f"its multi-shard spread")


def _truncate_wal(directory: str, offset: int) -> None:
    """Cut the regenerated WAL at the recorded kill offset."""
    path = os.path.join(directory, WAL_FILE)
    size = os.path.getsize(path) if os.path.exists(path) else 0
    if offset > size:
        raise ReplayDivergenceError(
            f"recorded kill offset {offset} lies past the regenerated "
            f"WAL ({size} bytes) — the replayed log diverged from the "
            f"captured one")
    with open(path, "r+b") as handle:
        handle.truncate(offset)


def replay_check(bundle: Dict[str, Any], directory: str,
                 runs: int = 2) -> "list[ReplayResult]":
    """The determinism gate: *runs* independent replays must agree.

    Each run executes in its own fresh subdirectory of *directory*; all
    resulting digests (and the bundle's recorded outcome, when present)
    must be identical, else :class:`ReplayDivergenceError`.
    """
    if runs < 1:
        raise ReplayError("runs must be >= 1")
    results = []
    for run in range(runs):
        target = os.path.join(directory, f"run-{run:02d}")
        os.makedirs(target, exist_ok=True)
        results.append(replay(bundle, target))
    digests = {result.digest for result in results}
    if len(digests) != 1:
        raise ReplayDivergenceError(
            f"{runs} replays of the same bundle produced "
            f"{len(digests)} distinct states: {sorted(digests)}")
    return results

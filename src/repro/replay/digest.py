"""Canonical state digests: one sha256 per store state, bytes-for-bytes.

Replay's acceptance contract is *byte-identical recovered state*: two
independent replays of the same bundle must land on stores no observer
can tell apart.  The digest canonicalizes everything observable — each
triple with its type-tagged value **and its global insertion sequence**,
in iteration order — so a store that differs in ordering, in sequence
numbering, or in literal typing (``Literal(3)`` vs ``Literal(3.0)`` vs
``Literal(True)``) hashes differently even where the triple *sets*
match.  Strings are encoded with ``surrogatepass`` to match the lossless
v2 persistence escapes (lone surrogates round-trip through the WAL).
"""

from __future__ import annotations

import hashlib

from repro.triples.triple import Resource


def canonical_lines(store) -> "list[bytes]":
    """The store's canonical byte serialization, one line per triple."""
    lines = []
    for statement in store:
        sequence = store.sequence_of(statement)
        value = statement.value
        if isinstance(value, Resource):
            tail = "r\t" + value.uri
        else:
            tail = f"l\t{value.type_name}\t{value.value!r}"
        line = (f"{sequence}\t{statement.subject.uri}\t"
                f"{statement.property.uri}\t{tail}\n")
        lines.append(line.encode("utf-8", "surrogatepass"))
    return lines


def state_digest(store) -> str:
    """The sha256 hex digest of the store's canonical serialization.

    Works on plain, interned, and sharded stores alike — anything
    iterable in global insertion order with a ``sequence_of``.
    """
    digest = hashlib.sha256()
    for line in canonical_lines(store):
        digest.update(line)
    return digest.hexdigest()

"""The resident's worksheet as digital bundles (Fig. 2, bottom row).

*"The bottom of Figure 2 shows one row (corresponding to one patient) of
a resident's worksheet … The first column identifies the patient, the
second lists significant problems, the third contains selected lab
results and vital signs, and the last is a to-do list. The multiple rows
on the worksheet illustrate another observation: bundles can be grouped
into larger bundles."*

:func:`build_rounds_worksheet` reproduces exactly that: a worksheet pad
whose root holds one bundle per patient; each patient bundle holds four
region bundles (identity / problems / labs / to-dos); labs are marked
scraps into the patient's XML report arranged as a gridlet, problems are
marked scraps into the admission note, medications come from the Excel
medication list, and to-dos are plain note scraps (information that
exists only on the bundle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.base import standard_mark_manager
from repro.marks.manager import MarkManager
from repro.slimpad.app import SlimPadApplication
from repro.util.coordinates import Coordinate
from repro.workloads.icu import IcuDataset, Patient

#: Layout constants for one worksheet row (a patient bundle).
#: Regions are sized so a 3-wide gridlet of standard scrap boxes
#: (layout.SCRAP_WIDTH = 90) fits without overlap.
ROW_HEIGHT = 170.0
ROW_WIDTH = 1280.0
_REGION_WIDTH = 300.0
_REGION_HEIGHT = 130.0
_GRID_DX = 96.0
_GRID_DY = 30.0

#: The electrolyte gridlet shows these six tests in a 2x3 grid.
GRIDLET_TESTS = ["Na", "K", "Cl", "HCO3", "BUN", "Cr"]


@dataclass
class WorksheetRow:
    """Handles to the pieces of one patient's worksheet row."""

    patient: Patient
    bundle: object            # the patient bundle (EntityObject)
    identity: object          # region bundles
    problems: object
    labs: object
    todos: object


def build_rounds_worksheet(dataset: IcuDataset,
                           manager: Optional[MarkManager] = None,
                           slimpad: Optional[SlimPadApplication] = None,
                           meds_in_identity: bool = True
                           ) -> "tuple[SlimPadApplication, List[WorksheetRow]]":
    """Build the full worksheet pad for a census; returns (app, rows)."""
    if manager is None:
        manager = standard_mark_manager(dataset.library)
    if slimpad is None:
        slimpad = SlimPadApplication(manager)
        slimpad.new_pad("Rounds")
    rows = [build_patient_row(slimpad, dataset, patient, row_index)
            for row_index, patient in enumerate(dataset.patients)]
    if meds_in_identity:
        pass  # medications are placed inside build_patient_row
    return slimpad, rows


def build_patient_row(slimpad: SlimPadApplication, dataset: IcuDataset,
                      patient: Patient, row_index: int) -> WorksheetRow:
    """One worksheet row: patient bundle + the four region bundles."""
    top = 20.0 + row_index * (ROW_HEIGHT + 14.0)
    bundle = slimpad.create_bundle(patient.name, Coordinate(16, top),
                                   width=ROW_WIDTH, height=ROW_HEIGHT)

    def region(name: str, column: int):
        return slimpad.create_bundle(
            name, Coordinate(24 + column * (_REGION_WIDTH + 12), top + 26),
            width=_REGION_WIDTH, height=_REGION_HEIGHT, parent=bundle)

    identity = region("Patient", 0)
    problems = region("Problems", 1)
    labs = region("Labs", 2)
    todos = region("To do", 3)

    _fill_identity(slimpad, dataset, patient, identity)
    _fill_problems(slimpad, dataset, patient, problems)
    _fill_labs(slimpad, dataset, patient, labs)
    _fill_todos(slimpad, patient, todos)
    return WorksheetRow(patient, bundle, identity, problems, labs, todos)


def _fill_identity(slimpad: SlimPadApplication, dataset: IcuDataset,
                   patient: Patient, bundle) -> None:
    origin = bundle.bundlePos
    slimpad.create_note_scrap(f"{patient.name} / bed {patient.bed}",
                              origin.translated(8, 8), bundle=bundle)
    # Selected medications from the Excel list (like Fig. 4's med scraps).
    excel = slimpad.marks.application("spreadsheet")
    excel.open_workbook(patient.meds_file)
    for i, medication in enumerate(patient.medications[:2]):
        excel.select_range(f"A{i + 2}:D{i + 2}")
        slimpad.create_scrap_from_selection(
            excel, label=f"{medication[0]} {medication[1]} {medication[2]}",
            pos=origin.translated(8, 34 + i * 26), bundle=bundle)


def _fill_problems(slimpad: SlimPadApplication, dataset: IcuDataset,
                   patient: Patient, bundle) -> None:
    origin = bundle.bundlePos
    word = slimpad.marks.application("word")
    word.open_document(patient.note_file)
    problems_text = word.current_document.paragraph(2)
    for i, problem in enumerate(patient.problems):
        start = problems_text.find(problem)
        if start < 0:
            slimpad.create_note_scrap(problem, origin.translated(8, 8 + i * 26),
                                      bundle=bundle)
            continue
        word.select_span(2, start, start + len(problem))
        slimpad.create_scrap_from_selection(
            word, label=problem, pos=origin.translated(8, 8 + i * 26),
            bundle=bundle)


def _fill_labs(slimpad: SlimPadApplication, dataset: IcuDataset,
               patient: Patient, bundle) -> None:
    """The electrolyte gridlet: 2x3 marked lab scraps plus the grid."""
    origin = bundle.bundlePos
    slimpad.dmi.Create_Graphic(bundle, "grid", Coordinate(6, 24),
                               _REGION_WIDTH - 16, 70.0)
    xml = slimpad.marks.application("xml")
    document = xml.open_document(patient.labs_file)
    results = {element.attributes["test"]: element
               for element in document.root.find_all("result")}
    for i, test in enumerate(GRIDLET_TESTS):
        element = results[test]
        row, col = divmod(i, 3)
        xml.select_element(element)
        slimpad.create_scrap_from_selection(
            xml, label=f"{test} {element.text}",
            pos=origin.translated(10 + col * _GRID_DX, 28 + row * _GRID_DY),
            bundle=bundle)


def _fill_todos(slimpad: SlimPadApplication, patient: Patient,
                bundle) -> None:
    origin = bundle.bundlePos
    for i, todo in enumerate(patient.todos):
        slimpad.create_note_scrap(f"[ ] {todo}",
                                  origin.translated(8, 8 + i * 24),
                                  bundle=bundle)

"""A concordance as superimposed information (the paper's opening example).

*"Consider a concordance for the works of Shakespeare. For a given term,
we can find out every line (in a play) where the term is used. …
Superimposed information relies on an addressing scheme for information
elements in the original documents, often at a fine granularity, e.g.,
play-act-scene-line."*

The corpus here is a small set of original pseudo-Elizabethan verse
fragments (written for this reproduction; no copyrighted text), encoded
as XML with explicit play/act/scene/line structure — so the XML marks'
``xmlPath`` is literally the play-act-scene-line addressing scheme.
:func:`build_concordance` then constructs the concordance as superimposed
information: for each term, one bundle whose scraps mark every line using
that term.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.base import standard_mark_manager
from repro.base.application import DocumentLibrary
from repro.base.xmldoc.dom import XmlDocument
from repro.marks.manager import MarkManager
from repro.slimpad.app import SlimPadApplication
from repro.util.coordinates import Coordinate
from repro.util.text import excerpt, tokenize

#: Original verse written for this reproduction.
_PLAYS = {
    "The Winter Tide": [
        # (act, scene, lines)
        (1, 1, ["The tide returns though no man bids it come,",
                "And time, like water, wears the proudest stone.",
                "What king commands the sea to stay its sum?",
                "No crown was ever dry that sat alone."]),
        (1, 2, ["Speak not of storms to one who built on sand;",
                "The wise man counts the water, not the waves.",
                "A kingdom is a tide held in the hand,",
                "And every hand, at last, the water laves."]),
        (2, 1, ["Come night, come counsel, come the quiet hour,",
                "For day has spent its argument in vain.",
                "The stone that stood at noon against all power",
                "By night is only stone, and feels the rain."]),
    ],
    "A Fool of Fortune": [
        (1, 1, ["Fortune, they say, is but a turning wheel,",
                "Yet I have seen her walk a crooked mile.",
                "The fool who laughs has little left to steal;",
                "The king who weeps has gold in every tile."]),
        (2, 1, ["Give me the fool who knows himself a fool,",
                "Not wisdom wearing motley out of season.",
                "Time is the only uncorrupted school,",
                "And laughter, in the end, the only reason."]),
        (2, 2, ["The wheel turns up, the wheel must then turn down;",
                "No fortune holds the water of the sea.",
                "I'd rather wear the motley than the crown —",
                "The crown must watch, the motley may go free."]),
    ],
}


def corpus_library() -> DocumentLibrary:
    """The verse corpus as XML documents with play/act/scene/line structure."""
    library = DocumentLibrary()
    for title, scenes in _PLAYS.items():
        parts = [f'<play title="{title}">']
        acts: Dict[int, List] = {}
        for act, scene, lines in scenes:
            acts.setdefault(act, []).append((scene, lines))
        for act in sorted(acts):
            parts.append(f'  <act number="{act}">')
            for scene, lines in acts[act]:
                parts.append(f'    <scene number="{scene}">')
                for number, line in enumerate(lines, start=1):
                    escaped = (line.replace("&", "&amp;")
                               .replace("<", "&lt;").replace(">", "&gt;"))
                    parts.append(f'      <line number="{number}">'
                                 f"{escaped}</line>")
                parts.append("    </scene>")
            parts.append("  </act>")
        parts.append("</play>")
        file_name = title.lower().replace(" ", "-") + ".xml"
        library.add(XmlDocument.parse(file_name, "\n".join(parts)))
    return library


def play_titles() -> List[str]:
    """The corpus titles."""
    return list(_PLAYS)


def build_concordance(terms: List[str],
                      library: Optional[DocumentLibrary] = None,
                      manager: Optional[MarkManager] = None
                      ) -> "tuple[SlimPadApplication, Dict[str, List[str]]]":
    """Build a concordance pad: one bundle per term, one scrap per use.

    Returns the SLIMPad application and, per term, the list of
    play-act-scene-line citations it found.  Each scrap's mark addresses
    the exact ``<line>`` element, so double-clicking re-establishes the
    line in its original context — what a print concordance cannot do.
    """
    if library is None:
        library = corpus_library()
    if manager is None:
        manager = standard_mark_manager(library)
    slimpad = SlimPadApplication(manager)
    slimpad.new_pad("Concordance")
    xml = manager.application("xml")

    wanted = {term.lower() for term in terms}
    citations: Dict[str, List[str]] = {term.lower(): [] for term in terms}
    bundles = {}
    for i, term in enumerate(sorted(wanted)):
        bundles[term] = slimpad.create_bundle(
            term, Coordinate(16, 20 + i * 140), width=620.0, height=120.0)

    for file_name in library.names():
        document = library.get(file_name)
        if not isinstance(document, XmlDocument):
            continue
        title = document.root.attributes.get("title", file_name)
        xml.open_document(file_name)
        for act in document.root.find_all("act"):
            for scene in act.find_all("scene"):
                for line in scene.find_all("line"):
                    words = {t.normalized() for t in tokenize(line.text)}
                    for term in wanted & words:
                        citation = (f"{title} "
                                    f"{act.attributes['number']}."
                                    f"{scene.attributes['number']}."
                                    f"{line.attributes['number']}")
                        bundle = bundles[term]
                        count = len(citations[term])
                        xml.select_element(line)
                        slimpad.create_scrap_from_selection(
                            xml, label=citation,
                            pos=bundle.bundlePos.translated(
                                8 + (count % 3) * 200, 8 + (count // 3) * 26),
                            bundle=bundle)
                        citations[term].append(citation)
    return slimpad, citations


def kwic(term: str, library: Optional[DocumentLibrary] = None,
         context: int = 18) -> List[str]:
    """Keyword-in-context lines for *term* across the corpus.

    Each entry is ``'citation: …context TERM context…'`` — the classic
    KWIC presentation a print concordance would give, generated from the
    same line addressing the superimposed marks use.
    """
    if library is None:
        library = corpus_library()
    wanted = term.lower()
    lines: List[str] = []
    for file_name in library.names():
        document = library.get(file_name)
        if not isinstance(document, XmlDocument):
            continue
        title = document.root.attributes.get("title", file_name)
        for act in document.root.find_all("act"):
            for scene in act.find_all("scene"):
                for line in scene.find_all("line"):
                    for token in tokenize(line.text):
                        if token.normalized() == wanted:
                            citation = (f"{title} "
                                        f"{act.attributes['number']}."
                                        f"{scene.attributes['number']}."
                                        f"{line.attributes['number']}")
                            snippet = excerpt(line.text, token.start,
                                              token.end, context=context)
                            lines.append(f"{citation}: {snippet}")
    return lines


def term_frequencies(library: Optional[DocumentLibrary] = None
                     ) -> Dict[str, int]:
    """Word frequencies over the whole corpus (lower-cased)."""
    if library is None:
        library = corpus_library()
    counts: Dict[str, int] = {}
    for file_name in library.names():
        document = library.get(file_name)
        if not isinstance(document, XmlDocument):
            continue
        for line in document.root.find_all("line"):
            for token in tokenize(line.text):
                word = token.normalized()
                counts[word] = counts.get(word, 0) + 1
    return counts

"""Synthetic ICU base-layer data (the Fig. 2 substitution).

Real intensive-care traces are not available, so this generator produces
the same *shapes* the paper's field observations describe: a census of
patients, each with a medication list (a spreadsheet — the Fig. 4
medication workbook), an XML lab report (electrolytes + CBC panels), an
admission note (a Word document), a guideline page (HTML), a printed
handbook (PDF), and a rounds deck (slides).

Everything is seeded: the same seed yields byte-identical documents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.base.application import DocumentLibrary
from repro.base.html.parser import HtmlPage
from repro.base.pdf.document import PdfDocument, PdfPage
from repro.base.slides.presentation import Presentation, Shape, Slide
from repro.base.spreadsheet.workbook import Workbook
from repro.base.worddoc.document import WordDocument
from repro.base.xmldoc.dom import XmlDocument

_FIRST_NAMES = ["John", "Mary", "Luis", "Aisha", "Chen", "Priya", "Olga",
                "Kwame", "Elena", "Marcus", "Yuki", "Fatima"]
_LAST_NAMES = ["Smith", "Jones", "Garcia", "Khan", "Wei", "Patel", "Ivanova",
               "Mensah", "Rossi", "Brown", "Tanaka", "Hassan"]
_PROBLEMS = ["CHF exacerbation", "septic shock", "ARDS", "GI bleed",
             "DKA", "pneumonia", "acute renal failure", "hypokalemia",
             "respiratory failure", "post-op day 1"]
_DRUGS = [("Lasix", "40mg", "IV", "BID"), ("Captopril", "25mg", "PO", "TID"),
          ("KCl", "20mEq", "IV", "PRN"), ("Heparin", "5000u", "SC", "BID"),
          ("Ceftriaxone", "1g", "IV", "QD"), ("Insulin", "6u", "SC", "AC"),
          ("Metoprolol", "25mg", "PO", "BID"), ("Morphine", "2mg", "IV", "PRN")]
_LABS = [("Na", "mmol/L", 135, 148), ("K", "mmol/L", 3.0, 5.4),
         ("Cl", "mmol/L", 96, 108), ("HCO3", "mmol/L", 20, 29),
         ("BUN", "mg/dL", 8, 40), ("Cr", "mg/dL", 0.6, 2.4),
         ("WBC", "K/uL", 4.0, 16.0), ("Hgb", "g/dL", 8.0, 16.0)]
_TODOS = ["recheck lytes", "wean vent", "family meeting", "renal consult",
          "echo today", "culture results", "adjust drips", "PT eval"]


@dataclass
class Patient:
    """One synthetic patient and the names of their documents."""

    number: int
    name: str
    bed: int
    problems: List[str]
    medications: List["tuple[str, str, str, str]"]
    labs: Dict[str, float]
    todos: List[str]

    @property
    def meds_file(self) -> str:
        """The medication workbook's document name."""
        return f"meds-{self.number:03d}.xls"

    @property
    def labs_file(self) -> str:
        """The lab report's document name."""
        return f"labs-{self.number:03d}.xml"

    @property
    def note_file(self) -> str:
        """The admission note's document name."""
        return f"note-{self.number:03d}.doc"


@dataclass
class IcuDataset:
    """A generated census plus the base documents in a library."""

    patients: List[Patient]
    library: DocumentLibrary
    guideline_url: str = "http://icu.example/protocol"
    handbook_file: str = "handbook.pdf"
    rounds_deck: str = "rounds.ppt"


def generate_icu(num_patients: int = 8, seed: int = 2001,
                 meds_per_patient: int = 4,
                 problems_per_patient: int = 3) -> IcuDataset:
    """Generate a deterministic ICU census and its base documents."""
    if num_patients < 1:
        raise ValueError("need at least one patient")
    rng = random.Random(seed)
    library = DocumentLibrary()
    patients: List[Patient] = []

    for number in range(1, num_patients + 1):
        name = (f"{rng.choice(_FIRST_NAMES)} "
                f"{rng.choice(_LAST_NAMES)}")
        problems = rng.sample(_PROBLEMS,
                              min(problems_per_patient, len(_PROBLEMS)))
        medications = rng.sample(_DRUGS, min(meds_per_patient, len(_DRUGS)))
        labs = {}
        for test, _unit, low, high in _LABS:
            value = round(rng.uniform(low, high), 1)
            labs[test] = value
        todos = rng.sample(_TODOS, min(3, len(_TODOS)))
        patient = Patient(number, name, number, problems, medications,
                          labs, todos)
        patients.append(patient)

        _build_meds_workbook(library, patient)
        _build_lab_report(library, patient)
        _build_note(library, patient)

    _build_guideline(library)
    _build_handbook(library)
    _build_rounds_deck(library, patients)
    return IcuDataset(patients, library)


def _build_meds_workbook(library: DocumentLibrary, patient: Patient) -> None:
    workbook = Workbook(patient.meds_file)
    sheet = workbook.add_sheet("Current")
    sheet.set_row(1, ["Drug", "Dose", "Route", "Schedule"])
    for row, medication in enumerate(patient.medications, start=2):
        sheet.set_row(row, list(medication))
    library.add(workbook)


def _build_lab_report(library: DocumentLibrary, patient: Patient) -> None:
    results = []
    for test, unit, _lo, _hi in _LABS:
        panel = "electrolytes" if test in ("Na", "K", "Cl", "HCO3",
                                           "BUN", "Cr") else "cbc"
        results.append((panel, test, unit, patient.labs[test]))
    parts = [f'<labReport patient="{patient.name}" bed="{patient.bed}">']
    for panel_name in ("electrolytes", "cbc"):
        parts.append(f'  <panel name="{panel_name}">')
        for panel, test, unit, value in results:
            if panel == panel_name:
                parts.append(f'    <result test="{test}" unit="{unit}">'
                             f"{value}</result>")
        parts.append("  </panel>")
    parts.append("</labReport>")
    library.add(XmlDocument.parse(patient.labs_file, "\n".join(parts)))


def _build_note(library: DocumentLibrary, patient: Patient) -> None:
    paragraphs = [
        f"Admission note for {patient.name} (bed {patient.bed}).",
        "Problems: " + "; ".join(patient.problems) + ".",
        "Plan: " + ", ".join(patient.todos) + ".",
    ]
    library.add(WordDocument(patient.note_file, paragraphs))


def _build_guideline(library: DocumentLibrary) -> None:
    html = ("<html><head><title>ICU Potassium Protocol</title></head><body>"
            "<h1>Potassium replacement</h1>"
            "<p>For serum K below 3.5 give 20 mEq KCl IV over one hour.</p>"
            "<p>Recheck potassium two hours after each dose.</p>"
            "<ul><li>Monitor for arrhythmia</li>"
            "<li>Check renal function first</li></ul>"
            "</body></html>")
    library.add(HtmlPage.parse("http://icu.example/protocol", html))


def _build_handbook(library: DocumentLibrary) -> None:
    library.add(PdfDocument("handbook.pdf", [
        PdfPage(1, ["ICU Handbook", "Chapter 3: Electrolytes",
                    "Potassium should stay above 3.5 mmol/L."]),
        PdfPage(2, ["Replacement protocol:",
                    "Give 20 mEq KCl IV per hour of infusion.",
                    "Never exceed 10 mEq per hour peripherally."]),
    ]))


def _build_rounds_deck(library: DocumentLibrary,
                       patients: List[Patient]) -> None:
    slides = [Slide(1, [Shape("Title", "Morning rounds")])]
    for i, patient in enumerate(patients, start=2):
        slides.append(Slide(i, [
            Shape("Patient", f"{patient.name}, bed {patient.bed}"),
            Shape("Problems", "; ".join(patient.problems)),
        ]))
    library.add(Presentation("rounds.ppt", slides))

"""The flowsheet: a structured bundle tracking status over time (Fig. 2).

*"On the upper left we see … a more structured bundle called a flowsheet,
where the status of an intensive-care patient is tracked over time."*

A flowsheet is a grid: one row per tracked parameter, one column per
observation time.  Here each cell is a *marked scrap* into the lab report
of its time point, so the whole sheet stays live — re-resolving a cell
reads the then-current base value, and trends can be computed from the
resolved series.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.base.xmldoc.dom import XmlDocument
from repro.marks.behaviors import extract_content
from repro.slimpad.app import SlimPadApplication
from repro.util.coordinates import Coordinate
from repro.workloads.icu import IcuDataset, Patient

#: The parameters a basic flowsheet tracks.
FLOWSHEET_TESTS = ["Na", "K", "Cr", "WBC"]

#: Cell pitch; horizontal pitch exceeds layout.SCRAP_WIDTH so neighbouring
#: value scraps never overlap.
_CELL_DX = 96.0
_CELL_DY = 26.0


def _stable_seed(seed: int, number: int) -> int:
    """Mix *seed* and a patient *number* into one RNG seed, stably.

    ``hash((seed, number))`` varies with the interpreter's tuple-hash
    algorithm (and siphash key handling), so the lab series it seeded
    were only reproducible within one Python build — unacceptable now
    that replay bundles pin workload output across machines.  This is a
    splitmix64-style arithmetic mix: pure 64-bit integer ops, identical
    everywhere.
    """
    mixed = (seed * 0x9E3779B97F4A7C15 + number * 0xBF58476D1CE4E5B9) \
        & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 31
    mixed = (mixed * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return mixed ^ (mixed >> 29)


def generate_lab_series(dataset: IcuDataset, patient: Patient,
                        times: List[str], seed: int = 0) -> List[str]:
    """Create one time-stamped lab report per entry of *times*.

    Values random-walk from the patient's baseline labs, deterministically
    from *seed*.  Returns the created document names
    (``labs-NNN-tK.xml``).
    """
    rng = random.Random(_stable_seed(seed, patient.number))
    names: List[str] = []
    values = dict(patient.labs)
    for index, time_label in enumerate(times):
        if index > 0:
            for test in values:
                values[test] = round(values[test] *
                                     (1.0 + rng.uniform(-0.08, 0.08)), 1)
        parts = [f'<labReport patient="{patient.name}" '
                 f'time="{time_label}">', '  <panel name="flowsheet">']
        for test, value in values.items():
            parts.append(f'    <result test="{test}">{value}</result>')
        parts.append("  </panel>")
        parts.append("</labReport>")
        name = f"labs-{patient.number:03d}-t{index}.xml"
        dataset.library.add(XmlDocument.parse(name, "\n".join(parts)))
        names.append(name)
    return names


@dataclass
class Flowsheet:
    """Handles to a built flowsheet: the bundle and its cell grid."""

    patient: Patient
    bundle: object                      # the flowsheet bundle
    times: List[str]
    tests: List[str]
    cells: Dict["tuple[str, int]", object]   # (test, time index) -> scrap

    def cell(self, test: str, time_index: int):
        """The scrap at one grid position."""
        return self.cells[(test, time_index)]


def build_flowsheet(slimpad: SlimPadApplication, dataset: IcuDataset,
                    patient: Patient, times: List[str],
                    tests: Optional[List[str]] = None,
                    seed: int = 0,
                    origin: Coordinate = Coordinate(16, 20)) -> Flowsheet:
    """Build the flowsheet bundle for one patient.

    Generates the time-stamped lab reports, then lays out a grid of
    marked scraps: row = test, column = time.  Row and column headers are
    note scraps (they exist only on the bundle).
    """
    tests = list(tests) if tests is not None else list(FLOWSHEET_TESTS)
    report_names = generate_lab_series(dataset, patient, times, seed=seed)
    bundle = slimpad.create_bundle(
        f"Flowsheet {patient.name}", origin,
        width=80.0 + _CELL_DX * (len(times) + 1),
        height=40.0 + _CELL_DY * (len(tests) + 1))
    slimpad.dmi.Create_Graphic(bundle, "grid", Coordinate(8, 26),
                               _CELL_DX * (len(times) + 1),
                               _CELL_DY * len(tests))
    # Column headers: the observation times.
    for column, time_label in enumerate(times):
        slimpad.create_note_scrap(
            time_label,
            origin.translated(_CELL_DX * (column + 1) + 10, 28),
            bundle=bundle)
    xml = slimpad.marks.application("xml")
    cells: Dict["tuple[str, int]", object] = {}
    for row, test in enumerate(tests):
        # Row header: the test name.
        slimpad.create_note_scrap(
            test, origin.translated(10, 28 + _CELL_DY * (row + 1)),
            bundle=bundle)
        for column, report_name in enumerate(report_names):
            document = xml.open_document(report_name)
            element = next(e for e in document.root.find_all("result")
                           if e.attributes["test"] == test)
            xml.select_element(element)
            scrap = slimpad.create_scrap_from_selection(
                xml, label=element.text,
                pos=origin.translated(_CELL_DX * (column + 1) + 10,
                                      28 + _CELL_DY * (row + 1)),
                bundle=bundle)
            cells[(test, column)] = scrap
    return Flowsheet(patient, bundle, list(times), tests, cells)


def resolve_series(slimpad: SlimPadApplication, sheet: Flowsheet,
                   test: str) -> List[float]:
    """Re-read one row's values through its marks (always current)."""
    values = []
    for column in range(len(sheet.times)):
        scrap = sheet.cell(test, column)
        resolution = extract_content(slimpad.marks,
                                     scrap.scrapMark[0].markId)
        values.append(float(resolution.content_text()))
    return values


def trend(slimpad: SlimPadApplication, sheet: Flowsheet,
          test: str) -> str:
    """'rising' / 'falling' / 'flat' over the resolved series."""
    series = resolve_series(slimpad, sheet, test)
    if len(series) < 2 or series[-1] == series[0]:
        return "flat"
    return "rising" if series[-1] > series[0] else "falling"

"""Parameterized scale generators for the benchmarks.

Benches need pads and stores of controlled size; these helpers build them
deterministically from simple scale parameters.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.baselines.schema_first import SchemaFirstStore
from repro.slimpad.dmi import SlimPadDMI
from repro.triples.store import TripleStore
from repro.triples.triple import Resource, triple
from repro.util.coordinates import Coordinate


def build_pad_via_dmi(num_bundles: int, scraps_per_bundle: int,
                      dmi: Optional[SlimPadDMI] = None) -> SlimPadDMI:
    """A pad of *num_bundles* bundles × *scraps_per_bundle* marked scraps,
    built through the triple-backed DMI (the flexible representation).

    The build runs as one ingest session (``trim.bulk_ingest()``): the
    whole pad lands through the store's bulk path and, when the DMI's
    TRIM is durable, commits as a single WAL group."""
    dmi = dmi or SlimPadDMI()
    with dmi.runtime.trim.bulk_ingest():
        root = dmi.Create_Bundle(bundleName="root")
        dmi.Create_SlimPad(padName="bench", rootBundle=root)
        mark_seq = 0
        for b in range(num_bundles):
            bundle = dmi.Create_Bundle(bundleName=f"bundle {b}",
                                       bundlePos=Coordinate(10.0 * b, 20.0),
                                       bundleWidth=200.0, bundleHeight=120.0)
            dmi.Add_nestedBundle(root, bundle)
            for s in range(scraps_per_bundle):
                mark_seq += 1
                scrap = dmi.Create_Scrap(scrapName=f"scrap {b}.{s}",
                                         scrapPos=Coordinate(5.0 * s, 8.0 * s))
                handle = dmi.Create_MarkHandle(markId=f"mark-{mark_seq:06d}")
                dmi.Add_scrapMark(scrap, handle)
                dmi.Add_bundleContent(bundle, scrap)
    return dmi


def build_pad_native(num_bundles: int, scraps_per_bundle: int
                     ) -> SchemaFirstStore:
    """The same pad shape in the schema-first native store (the ablation
    counterpart of :func:`build_pad_via_dmi`)."""
    store = SchemaFirstStore()
    pad = store.create_pad("bench")
    root = store.create_bundle("root")
    store.update(pad, "root", root)
    mark_seq = 0
    for b in range(num_bundles):
        bundle = store.create_bundle(f"bundle {b}", Coordinate(10.0 * b, 20.0),
                                     200.0, 120.0)
        store.nest_bundle(root, bundle)
        for s in range(scraps_per_bundle):
            mark_seq += 1
            scrap = store.create_scrap(f"scrap {b}.{s}",
                                       Coordinate(5.0 * s, 8.0 * s))
            handle = store.create_handle(f"mark-{mark_seq:06d}")
            store.add_mark(scrap, handle)
            store.add_scrap(bundle, scrap)
    return store


def random_triples(count: int, num_subjects: int = 100,
                   num_properties: int = 12, seed: int = 7
                   ) -> List:
    """Deterministic random triples for store micro-benchmarks."""
    rng = random.Random(seed)
    items = []
    for i in range(count):
        subject = f"subject-{rng.randrange(num_subjects):04d}"
        prop = f"slim:p{rng.randrange(num_properties)}"
        if rng.random() < 0.5:
            items.append(triple(subject, prop, f"value {i}"))
        else:
            items.append(triple(subject, prop,
                                Resource(f"subject-{rng.randrange(num_subjects):04d}")))
    return items


def populate_store(count: int, **kwargs) -> TripleStore:
    """A TripleStore holding :func:`random_triples`."""
    store = TripleStore()
    store.add_all(random_triples(count, **kwargs))
    return store


#: The rare scrap name planted once by :func:`build_planner_store` — the
#: selective end of the adversarially-ordered conjunctive query.
PLANNER_NEEDLE = "needle K+ 3.9"


def build_planner_store(num_bundles: int = 1500, scraps_per_bundle: int = 8,
                        store: Optional[TripleStore] = None) -> TripleStore:
    """A pad-shaped store sized for the query-planning benchmark.

    One root bundle (``wl-root``) nests *num_bundles* bundles, each holding
    *scraps_per_bundle* named scraps; exactly one scrap (the last) is named
    :data:`PLANNER_NEEDLE`.  The shape deliberately exhibits both planner
    pain points: a hub subject (the root's bucket holds every nesting edge,
    so two-field reads on it degrade without a compound index) and a
    high-cardinality ``slim:bundleContent`` property against a
    one-hit ``slim:scrapName`` value, so pattern order decides whether the
    conjunctive query touches every scrap or just one.  Everything is
    reachable from the root, which makes the same store the repeated-view-
    read workload.
    """
    store = store if store is not None else TripleStore()
    items = [triple("wl-root", "slim:bundleName", "workload root")]
    for b in range(num_bundles):
        bundle = f"wl-bundle-{b:05d}"
        items.append(triple("wl-root", "slim:nestedBundle", Resource(bundle)))
        items.append(triple(bundle, "slim:bundleName", f"bundle {b}"))
        for s in range(scraps_per_bundle):
            scrap = f"wl-scrap-{b:05d}-{s:03d}"
            items.append(triple(bundle, "slim:bundleContent", Resource(scrap)))
            if b == num_bundles - 1 and s == scraps_per_bundle - 1:
                items.append(triple(scrap, "slim:scrapName", PLANNER_NEEDLE))
            else:
                items.append(triple(scrap, "slim:scrapName", f"scrap {b}.{s}"))
    with store.bulk():
        store.add_all(items)
    return store

"""Workload generators: ICU census, rounds worksheets, concordances, scale."""

from repro.workloads.concordance import (build_concordance, corpus_library,
                                         play_titles)
from repro.workloads.flowsheet import (FLOWSHEET_TESTS, Flowsheet,
                                       build_flowsheet, generate_lab_series,
                                       resolve_series, trend)
from repro.workloads.generator import (build_pad_native, build_pad_via_dmi,
                                       populate_store, random_triples)
from repro.workloads.icu import IcuDataset, Patient, generate_icu
from repro.workloads.rounds import (GRIDLET_TESTS, WorksheetRow,
                                    build_patient_row,
                                    build_rounds_worksheet)

__all__ = [
    "FLOWSHEET_TESTS",
    "Flowsheet",
    "build_flowsheet",
    "generate_lab_series",
    "resolve_series",
    "trend",
    "build_concordance",
    "corpus_library",
    "play_titles",
    "build_pad_native",
    "build_pad_via_dmi",
    "populate_store",
    "random_triples",
    "IcuDataset",
    "Patient",
    "generate_icu",
    "GRIDLET_TESTS",
    "WorksheetRow",
    "build_patient_row",
    "build_rounds_worksheet",
]

"""A small blocking-socket client for the TRIM service.

:class:`ServiceClient` speaks the NDJSON protocol of
:mod:`repro.service.protocol` over one TCP connection.  It is
deliberately simple — synchronous, one request inflight at a time —
because that is what the tests, benchmarks, and CLI smoke paths need;
a fancier pipelined client can be layered on the same protocol module.

::

    with ServiceClient("127.0.0.1", 7421, tenant="ward-6") as client:
        client.create("slim:pat-4", "slim:hr", 88)
        rows = client.select(s="slim:pat-4")

Error frames surface as typed exceptions: ``RETRY_AFTER`` raises
:class:`~repro.errors.BackpressureError` (carrying the server's
suggested ``retry_after_ms``), ``SHUTTING_DOWN`` raises
:class:`~repro.errors.ServiceUnavailableError`, and everything else
raises :class:`~repro.errors.RemoteOpError` with the frame's code.
``submit_with_retry`` wraps a mutation in bounded backoff-and-retry so
callers can opt into riding out backpressure instead of handling it.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (BackpressureError, ProtocolError, RemoteOpError,
                          ServiceUnavailableError)
from repro.service import protocol
from repro.triples.triple import Node

__all__ = ["ServiceClient"]


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.server.TrimService`.

    *tenant* is the default tenant for every operation (overridable per
    call).  The client is **not** thread-safe — use one per thread, the
    way the benchmark drives one per simulated connection.
    """

    def __init__(self, host: str, port: int, tenant: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._seq = 0

    # -- plumbing --------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Context-manager exit: close the socket; never suppress."""
        self.close()
        return False

    def _next_id(self) -> str:
        self._seq += 1
        return f"c{self._seq}"

    def request(self, op: str, params: Optional[Dict[str, Any]] = None,
                tenant: Optional[str] = None) -> Any:
        """Send one request and block for its response's ``result``.

        Raises the typed exception matching the error frame's code when
        the server answers ``ok: false``.
        """
        if self._sock is None:
            raise ServiceUnavailableError("client is closed")
        envelope = protocol.request(
            op, self._next_id(),
            tenant=tenant if tenant is not None else self.tenant,
            params=params)
        self._sock.sendall(protocol.encode_frame(envelope))
        line = self._reader.readline()
        if not line:
            raise ServiceUnavailableError(
                "server closed the connection (draining?)")
        response = protocol.decode_frame(line)
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        code = error.get("code", "INTERNAL")
        message = error.get("message", "")
        if code == "RETRY_AFTER":
            raise BackpressureError(
                message, retry_after_ms=error.get("retry_after_ms", 50))
        if code == "SHUTTING_DOWN":
            raise ServiceUnavailableError(message)
        raise RemoteOpError(code, message)

    def submit_with_retry(self, op: str,
                          params: Optional[Dict[str, Any]] = None,
                          tenant: Optional[str] = None,
                          max_attempts: int = 50) -> Tuple[Any, int]:
        """Run *op*, backing off and retrying through ``RETRY_AFTER``.

        Returns ``(result, retries)`` so callers (the benchmark) can
        count how often admission control pushed back.  Re-raises the
        final :class:`BackpressureError` after *max_attempts*.
        """
        retries = 0
        while True:
            try:
                return self.request(op, params, tenant=tenant), retries
            except BackpressureError as exc:
                retries += 1
                if retries >= max_attempts:
                    raise
                time.sleep(exc.retry_after_ms / 1000.0)

    # -- TRIM surface ----------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; also reports whether the server is draining."""
        return self.request("ping")

    def create(self, s: str, p: str, value: Any) -> Dict[str, Any]:
        """Durably add one triple (``trim.create``)."""
        return self.request("trim.create", {
            "s": s, "p": p, "value": protocol.encode_value(value)})

    def remove(self, s: str, p: str, value: Any) -> Dict[str, Any]:
        """Durably remove one exact triple (``trim.remove``)."""
        return self.request("trim.remove", {
            "s": s, "p": p, "value": protocol.encode_value(value)})

    def remove_about(self, s: str) -> int:
        """Remove every triple about a subject; returns the count."""
        return self.request("trim.remove_about", {"s": s})["removed"]

    def add_all(self, triples: List[Tuple[str, str, Any]]) -> int:
        """Durably add a batch of ``(s, p, value)`` triples at once."""
        payload = [{"s": s, "p": p, "v": protocol.encode_value(v)}
                   for s, p, v in triples]
        return self.request("trim.add_all", {"triples": payload})["added"]

    def commit(self) -> bool:
        """Force a durability boundary for this tenant."""
        return self.request("trim.commit")["committed"]

    def select(self, s: Optional[str] = None, p: Optional[str] = None,
               value: Any = None) -> List[Tuple[str, str, Node]]:
        """TRIM selection; returns decoded ``(s_uri, p_uri, value)`` rows."""
        params: Dict[str, Any] = {}
        if s is not None:
            params["s"] = s
        if p is not None:
            params["p"] = p
        if value is not None:
            params["value"] = protocol.encode_value(value)
        result = self.request("trim.select", params)
        return [protocol.decode_triple(t) for t in result["triples"]]

    def count(self, s: Optional[str] = None, p: Optional[str] = None,
              value: Any = None) -> int:
        """Count matching triples without shipping them."""
        params: Dict[str, Any] = {}
        if s is not None:
            params["s"] = s
        if p is not None:
            params["p"] = p
        if value is not None:
            params["value"] = protocol.encode_value(value)
        return self.request("trim.count", params)["count"]

    def values(self, s: str, p: str) -> List[Any]:
        """All values of one (subject, property) pair, decoded."""
        result = self.request("trim.values", {"s": s, "p": p})
        return [protocol.decode_value(v) for v in result["values"]]

    def query(self, patterns: List[Tuple[Any, Any, Any]],
              planner: bool = True) -> List[Dict[str, Any]]:
        """Conjunctive query; ``"?x"`` strings are variables, ``None``
        wildcards.  Returns decoded binding dicts."""
        payload = [[s, p,
                    protocol.encode_value(v) if v is not None
                    and not (isinstance(v, str) and v.startswith("?"))
                    else v]
                   for s, p, v in patterns]
        result = self.request("trim.query", {"patterns": payload,
                                             "planner": planner})
        return [{name: protocol.decode_value(node)
                 for name, node in row.items()}
                for row in result["bindings"]]

    def view(self, root: str, follow: Optional[List[str]] = None,
             max_depth: Optional[int] = None
             ) -> List[Tuple[str, str, Node]]:
        """Reachability view from *root* (``trim.view``), decoded."""
        params: Dict[str, Any] = {"root": root}
        if follow is not None:
            params["follow"] = follow
        if max_depth is not None:
            params["max_depth"] = max_depth
        result = self.request("trim.view", params)
        return [protocol.decode_triple(t) for t in result["triples"]]

    def stats(self) -> Dict[str, Any]:
        """This tenant's counters (coalescer, durability, cache)."""
        return self.request("trim.stats")

    # -- DMI / SLIMPad surface -------------------------------------------------

    def dmi_create(self, entity: str, **attrs: Any) -> str:
        """Create one entity instance; returns its id."""
        encoded = {name: protocol.encode_value(value)
                   for name, value in attrs.items()}
        return self.request("dmi.create", {"entity": entity,
                                           "attrs": encoded})["id"]

    def dmi_update(self, entity: str, instance_id: str, attr: str,
                   value: Any) -> None:
        """Update one attribute of one instance."""
        self.request("dmi.update", {
            "entity": entity, "id": instance_id, "attr": attr,
            "value": protocol.encode_value(value)})

    def dmi_value(self, entity: str, instance_id: str, attr: str) -> Any:
        """Read one attribute of one instance, decoded."""
        result = self.request("dmi.value", {
            "entity": entity, "id": instance_id, "attr": attr})
        return protocol.decode_value(result["value"])

    def dmi_add_ref(self, entity: str, instance_id: str, ref: str,
                    target_entity: str, target_id: str) -> None:
        """Append one reference between two instances."""
        self.request("dmi.add_ref", {
            "entity": entity, "id": instance_id, "ref": ref,
            "target_entity": target_entity, "target_id": target_id})

    def dmi_delete(self, entity: str, instance_id: str) -> int:
        """Delete one instance; returns the triple count removed."""
        return self.request("dmi.delete", {
            "entity": entity, "id": instance_id})["removed"]

    def dmi_all(self, entity: str) -> List[str]:
        """Ids of every instance of *entity* for this tenant."""
        return self.request("dmi.all", {"entity": entity})["ids"]

    def pad_new(self, name: str) -> Dict[str, str]:
        """Create this tenant's SLIMPad (pad + root bundle ids)."""
        return self.request("pad.new", {"name": name})

    def pad_note(self, text: str, x: float = 0.0, y: float = 0.0) -> str:
        """Drop a scrap on the tenant's root bundle; returns its id."""
        return self.request("pad.note", {"text": text, "x": x,
                                         "y": y})["scrap"]

    # -- admin -----------------------------------------------------------------

    def admin_stats(self) -> Dict[str, Any]:
        """Server-wide registry and connection counters."""
        return self.request("admin.stats")

    def admin_evict(self, force: bool = False) -> List[str]:
        """Run an idle-eviction pass; ``force`` treats every refcount-0
        tenant as expired (test hook)."""
        return self.request("admin.evict",
                            {"force": force} if force else {})["evicted"]

"""The TRIM service wire protocol: newline-delimited JSON envelopes.

One request or response per line (NDJSON), UTF-8, ``\\n``-terminated.
Every frame is a *versioned envelope* so the format can evolve without
breaking deployed clients:

Request::

    {"v": 1, "id": "c3-17", "tenant": "ward-6", "op": "trim.create",
     "params": {"s": "slim:pat-4", "p": "slim:hr", "value": ["l", "integer", 88]}}

Success response::

    {"v": 1, "id": "c3-17", "ok": true, "result": {"added": true}}

Typed error frame::

    {"v": 1, "id": "c3-17", "ok": false,
     "error": {"code": "RETRY_AFTER", "message": "tenant ward-6 is past
               its high-water mark", "retry_after_ms": 50}}

``id`` is an opaque client-chosen string echoed verbatim, so clients may
pipeline requests and match responses by id (responses on one connection
always come back in request order).  ``tenant`` routes the operation to
one named pad; admin operations (``ping``, ``admin.stats``) omit it.

Triple slots travel as the same tagged arrays the replay bundles use
(:mod:`repro.replay.bundle`): ``["r", uri]`` for resources, ``["l",
type_name, value]`` for literals — so ``Literal(3)``, ``3.0`` and
``True`` survive JSON untouched.  Subjects and properties, which are
always resources, travel as bare URI strings.

Frames are bounded (:data:`MAX_FRAME_BYTES`) so one hostile line cannot
balloon server memory; oversized or malformed frames raise
:class:`~repro.errors.ProtocolError`, which the server answers with a
``BAD_REQUEST`` error frame rather than dropping the connection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import BundleError, ProtocolError
from repro.replay.bundle import decode_node, encode_node
from repro.triples.triple import Node, Triple

#: Protocol version this module speaks.  Requests carrying any other
#: version are answered with an ``UNSUPPORTED_VERSION`` error frame.
VERSION = 1

#: Upper bound on one encoded frame (request or response line), bytes.
MAX_FRAME_BYTES = 1 << 20

#: Error codes a version-1 error frame may carry.
ERROR_CODES = (
    "BAD_REQUEST",          # malformed envelope / params
    "UNSUPPORTED_VERSION",  # request "v" != VERSION
    "UNKNOWN_OP",           # "op" not in the dispatch table
    "TENANT_REQUIRED",      # tenant-scoped op without a "tenant" field
    "BAD_TENANT",           # tenant name fails validation
    "RETRY_AFTER",          # admission control: back off and retry
    "SHUTTING_DOWN",        # server (or tenant) is draining
    "OP_FAILED",            # the operation itself raised (typed message)
    "INTERNAL",             # unexpected server-side failure
)


def encode_value(value: Any) -> Any:
    """One operation argument as JSON-safe payload.

    Nodes use the tagged codec; coordinates (SLIMPad positions) encode
    as ``["c", x, y]``; plain JSON scalars pass through.
    """
    from repro.util.coordinates import Coordinate
    if isinstance(value, Node):
        return encode_node(value)
    if isinstance(value, Coordinate):
        return ["c", value.x, value.y]
    return value


def decode_value(payload: Any) -> Any:
    """Inverse of :func:`encode_value` (raises :class:`ProtocolError`)."""
    from repro.util.coordinates import Coordinate
    if isinstance(payload, list) and payload and payload[0] == "c":
        if len(payload) != 3 or not all(
                isinstance(c, (int, float)) and not isinstance(c, bool)
                for c in payload[1:]):
            raise ProtocolError(f"malformed coordinate payload: {payload!r}")
        return Coordinate(payload[1], payload[2])
    if isinstance(payload, list):
        try:
            return decode_node(payload)
        except BundleError as exc:
            raise ProtocolError(str(exc)) from None
    return payload


def encode_triple(statement: Triple) -> Dict[str, Any]:
    """One triple as the wire dict ``{"s": uri, "p": uri, "v": node}``."""
    return {"s": statement.subject.uri, "p": statement.property.uri,
            "v": encode_node(statement.value)}


def decode_triple(payload: Any) -> Tuple[str, str, Node]:
    """Inverse of :func:`encode_triple` -> ``(subject_uri, prop_uri, value)``."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"triple payload must be an object: {payload!r}")
    subject, prop = payload.get("s"), payload.get("p")
    if not isinstance(subject, str) or not isinstance(prop, str):
        raise ProtocolError(f"triple payload needs string s/p: {payload!r}")
    try:
        value = decode_node(payload.get("v"))
    except BundleError as exc:
        raise ProtocolError(str(exc)) from None
    return subject, prop, value


def request(op: str, request_id: str, tenant: Optional[str] = None,
            params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build a request envelope (not yet serialized)."""
    envelope: Dict[str, Any] = {"v": VERSION, "id": request_id, "op": op}
    if tenant is not None:
        envelope["tenant"] = tenant
    if params:
        envelope["params"] = params
    return envelope


def ok_response(request_id: Optional[str], result: Any) -> Dict[str, Any]:
    """Build a success envelope for *request_id*."""
    return {"v": VERSION, "id": request_id, "ok": True, "result": result}


def error_response(request_id: Optional[str], code: str, message: str,
                   retry_after_ms: Optional[int] = None) -> Dict[str, Any]:
    """Build a typed error envelope (``code`` from :data:`ERROR_CODES`)."""
    assert code in ERROR_CODES, code
    error: Dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    return {"v": VERSION, "id": request_id, "ok": False, "error": error}


def encode_frame(envelope: Dict[str, Any]) -> bytes:
    """Serialize one envelope to a ``\\n``-terminated UTF-8 line."""
    line = json.dumps(envelope, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8") + b"\n"
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}")
    return line


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into an envelope dict.

    Raises :class:`ProtocolError` on oversized, non-UTF-8, non-JSON, or
    non-object frames; envelope *fields* are validated separately by
    :func:`validate_request` so the server can still echo the id.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        envelope = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(envelope, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(envelope).__name__}")
    return envelope


def validate_request(envelope: Dict[str, Any]) -> Tuple[str, str]:
    """Check a request envelope's fixed fields; return ``(id, op)``.

    Raises :class:`ProtocolError` with a message naming the offending
    field.  Version mismatches raise too — the server maps that message
    onto an ``UNSUPPORTED_VERSION`` frame.
    """
    version = envelope.get("v")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version!r} "
                            f"(this server speaks {VERSION})")
    request_id = envelope.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request id must be a non-empty string")
    op = envelope.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request op must be a non-empty string")
    params = envelope.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("request params must be an object")
    tenant = envelope.get("tenant")
    if tenant is not None and not isinstance(tenant, str):
        raise ProtocolError("tenant must be a string")
    return request_id, op


def select_args(params: Dict[str, Any]) -> Dict[str, Any]:
    """Decode the optional ``s``/``p``/``value`` fields of a selection."""
    args: Dict[str, Any] = {}
    for field, key in (("s", "subject"), ("p", "prop")):
        uri = params.get(field)
        if uri is not None:
            if not isinstance(uri, str):
                raise ProtocolError(f"{field} must be a URI string")
            args[key] = uri
    value = params.get("value")
    if value is not None:
        args["value"] = decode_value(value)
    return args
